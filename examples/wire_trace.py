"""Figure 9, as seen on the wire — and as seen by the observability layer.

Attaches a protocol tracer to the network and prints the annotated
datagram trace of a complete login-and-use sequence — every cleartext
field visible, every sealed blob opaque, exactly what an eavesdropper
gets.  Then prints the same run from the inside: the span tree
correlated with the wire lines by request ID, and the metric counters
the run left behind.

Run:  python examples/wire_trace.py
"""

from repro.apps.kerberized import KerberizedChannel, Protection
from repro.netsim import Network
from repro.realm import Realm
from repro.trace import ProtocolTracer, correlated_report
from repro.apps.pop import PopClient, PopServer


def main() -> None:
    net = Network(latency=0.002)  # 2 ms per hop, for readable timestamps
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("jis", "jis-pw")
    pop_service, _ = realm.add_service("pop", "po10")
    pop_host = net.add_host("po10")
    pop = PopServer(pop_service, realm.srvtab_for(pop_service)).attach(pop_host)
    pop.deliver("jis", b"Subject: hello\r\n\r\nfrom the wire")

    tracer = ProtocolTracer(net)
    ws = realm.workstation()

    print("=== The trace of: kinit; read one mail message ===\n")
    with net.tracer.span("user.session", user="jis"):
        ws.client.kinit("jis", "jis-pw")
        client = PopClient(ws.client, pop_service, pop_host.address)
        client.retrieve(1)
        client.quit()

    print(tracer.format())
    print(f"\n{len(tracer)} datagrams total.")
    print("Note what is readable (names, realms, lifetimes) and what is")
    print("not (every ticket, authenticator, and mail body: 'sealed').")

    print("\n=== The same run, correlated: spans + wire, by request ID ===\n")
    print(correlated_report(tracer))

    print("\n=== What the metrics registry recorded ===\n")
    m = net.metrics
    for line in (
        f"datagrams on the wire:  {m.total('net.datagrams_total'):.0f}"
        f"  ({m.total('net.bytes_total'):.0f} bytes)",
        f"KDC requests:           AS={m.total('kdc.requests_total', kind='as'):.0f}"
        f"  TGS={m.total('kdc.requests_total', kind='tgs'):.0f}"
        f"  (all OK: {m.total('kdc.outcomes_total', code='OK'):.0f})",
        f"replay checks:          fresh={m.total('replay.checks_total', result='fresh'):.0f}",
        f"credential cache:       hit={m.total('credcache.lookups_total', result='hit'):.0f}"
        f"  miss={m.total('credcache.lookups_total', result='miss'):.0f}",
    ):
        print("  " + line)


if __name__ == "__main__":
    main()
