"""Figure 9, as seen on the wire.

Attaches a protocol tracer to the network and prints the annotated
datagram trace of a complete login-and-use sequence — every cleartext
field visible, every sealed blob opaque, exactly what an eavesdropper
gets.

Run:  python examples/wire_trace.py
"""

from repro.apps.kerberized import KerberizedChannel, Protection
from repro.netsim import Network
from repro.realm import Realm
from repro.trace import ProtocolTracer
from repro.apps.pop import PopClient, PopServer


def main() -> None:
    net = Network(latency=0.002)  # 2 ms per hop, for readable timestamps
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("jis", "jis-pw")
    pop_service, _ = realm.add_service("pop", "po10")
    pop_host = net.add_host("po10")
    pop = PopServer(pop_service, realm.srvtab_for(pop_service), pop_host)
    pop.deliver("jis", b"Subject: hello\r\n\r\nfrom the wire")

    tracer = ProtocolTracer(net)
    ws = realm.workstation()

    print("=== The trace of: kinit; read one mail message ===\n")
    ws.client.kinit("jis", "jis-pw")
    client = PopClient(ws.client, pop_service, pop_host.address)
    client.retrieve(1)
    client.quit()

    print(tracer.format())
    print(f"\n{len(tracer)} datagrams total.")
    print("Note what is readable (names, realms, lifetimes) and what is")
    print("not (every ticket, authenticator, and mail body: 'sealed').")


if __name__ == "__main__":
    main()
