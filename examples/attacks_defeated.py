"""The open-network threat model, attack by attack (paper Sections 1-2, 8).

Arms each attacker the paper designs against — eavesdropper, replayer,
masquerading server, ticket thief — and shows what happens.  Includes
the two residual risks the 1988 design accepts, because a reproduction
should show the edges too.

Run:  python examples/attacks_defeated.py
"""

from repro.core import ErrorCode, KerberosError, ReplayCache, krb_rd_req
from repro.crypto import string_to_key
from repro.netsim import Network
from repro.realm import Realm
from repro.threat import (
    Eavesdropper,
    MasqueradingServer,
    steal_credentials,
    use_stolen_credential,
)


def main() -> None:
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("jis", "Xq7#mottled-predicate")
    service, service_key = realm.add_service("rlogin", "priam")

    print("=== 1. The eavesdropper ===")
    eve = Eavesdropper(net)
    ws = realm.workstation()
    ws.client.kinit("jis", "Xq7#mottled-predicate")
    cred = ws.client.get_credential(service)
    print(f"Eve captured {len(eve.captured)} datagrams "
          f"({eve.total_bytes()} bytes).")
    print(f"  password on the wire?        "
          f"{eve.saw_bytes(b'Xq7#mottled-predicate')}")
    print(f"  password-derived key?        "
          f"{eve.saw_bytes(string_to_key('Xq7#mottled-predicate').key_bytes)}")
    print(f"  any session key?             "
          f"{eve.saw_bytes(cred.session_key.key_bytes)}")
    guessed = eve.offline_password_guess(
        eve.harvest_kdc_replies()[0],
        ["password", "athena", "123456", "kerberos"],
    )
    print(f"  dictionary attack on AS rep: recovered {guessed!r}")

    print("\n=== 2. The replayer ===")
    cache = ReplayCache()
    request, _, _ = ws.client.mk_req(service)
    krb_rd_req(request, service, service_key, ws.host.address,
               net.clock.now(), cache)
    print("Genuine request accepted.")
    try:
        krb_rd_req(request, service, service_key, ws.host.address,
                   net.clock.now(), cache)
    except KerberosError as exc:
        print(f"Byte-identical replay: {exc.code.name}")
    net.clock.advance(600)
    try:
        krb_rd_req(request, service, service_key, ws.host.address,
                   net.clock.now())
    except KerberosError as exc:
        print(f"Replay 10 minutes later (no cache even): {exc.code.name}")

    print("\n=== 3. The masquerading server ===")
    from repro.apps.kerberized import KerberizedChannel

    fake_host = net.add_host("fake-priam")
    MasqueradingServer(fake_host, 544)
    try:
        KerberizedChannel(ws.client, service, fake_host.address, 544,
                          mutual=True)
    except KerberosError as exc:
        print(f"Client demanded mutual auth: {exc.code.name} — impostor caught.")

    print("\n=== 4. The ticket thief ===")
    loot = steal_credentials(ws.client)
    print(f"Thief copied {len(loot)} credentials from the ticket file.")
    stolen = [s for s in loot if "rlogin" in str(s.credential.service)][0]
    thief_host = net.add_host("thief-machine")
    try:
        krb_rd_req(
            use_stolen_credential(stolen, thief_host),
            service, service_key, thief_host.address, net.clock.now(),
        )
    except KerberosError as exc:
        print(f"Used from the thief's machine: {exc.code.name}")

    print("\n=== 5. The residual risk the paper accepts (Section 8) ===")
    context = krb_rd_req(
        use_stolen_credential(stolen, ws.host),
        service, service_key, ws.host.address, net.clock.now(),
    )
    print(f"Used AT the victim's workstation: ACCEPTED as {context.client}")
    net.clock.advance(9 * 3600)
    try:
        krb_rd_req(
            use_stolen_credential(stolen, ws.host),
            service, service_key, ws.host.address, net.clock.now(),
        )
    except KerberosError as exc:
        print(f"Same attack after ticket expiry: {exc.code.name}")
    print('"no information exists that will allow someone else to '
          'impersonate the user beyond the life of the ticket."')


if __name__ == "__main__":
    main()
