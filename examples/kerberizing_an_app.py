"""Kerberizing a program — the programmer's viewpoint (paper Section 6.2).

The paper: *"A programmer writing a Kerberos application will often be
adding authentication to an already existing network application
consisting of a client and server side.  We call this process
'Kerberizing' a program."*

This script does exactly that, before/after style, with a toy "fortune"
service: first the pre-Kerberos version (trusts whatever name the client
claims), then the Kerberized version (three lines of change on each
side), then proof that the old identity-spoofing trick died in the
process.

Run:  python examples/kerberizing_an_app.py
"""

from repro.apps.kerberized import KerberizedChannel, KerberizedServer, Protection
from repro.core import KerberosError
from repro.encode import Decoder, Encoder
from repro.netsim import Network
from repro.realm import Realm

FORTUNES = {
    "jis": "You will administer great systems.",
    "bcn": "A naming service is in your future.",
    "default": "Your tickets will always be fresh.",
}


# --------------------------------------------------------------------------
# BEFORE: the classic network app.  The request carries a *claimed* user.
# --------------------------------------------------------------------------

def legacy_fortune_server(datagram):
    dec = Decoder(datagram.payload)
    claimed_user = dec.string()
    fortune = FORTUNES.get(claimed_user, FORTUNES["default"])
    return Encoder().string(f"{claimed_user}: {fortune}").getvalue()


def legacy_fortune_client(host, server_addr, username):
    raw = host.rpc(server_addr, 1717, Encoder().string(username).getvalue())
    return Decoder(raw).string()


# --------------------------------------------------------------------------
# AFTER: the Kerberized version.  krb_mk_req / krb_rd_req via the framework;
# the server uses the AUTHENTICATED name and ignores any claims.
# --------------------------------------------------------------------------

class KerberizedFortuneServer(KerberizedServer):
    def handle(self, session, data: bytes) -> bytes:
        user = session.client.name            # authenticated, not claimed
        fortune = FORTUNES.get(user, FORTUNES["default"])
        return f"{user}: {fortune}".encode()


def main() -> None:
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("jis", "jis-pw")
    realm.add_user("bcn", "bcn-pw")
    server_host = net.add_host("fortunehost")

    print("=== BEFORE: the un-Kerberized fortune service ===")
    server_host.bind(1717, legacy_fortune_server)
    ws = realm.workstation()
    print(" bcn asks politely:  ", legacy_fortune_client(ws.host, server_host.address, "bcn"))
    print(" bcn claims to be jis:", legacy_fortune_client(ws.host, server_host.address, "jis"))
    print(" (nothing stopped the lie — Section 1's 'do nothing' approach)\n")

    print("=== Kerberizing it (Section 6.2) ===")
    # The administrator registers the service and installs its srvtab...
    service, _ = realm.add_service("fortune", "fortunehost")
    srvtab = realm.srvtab_for(service)
    # ...and the programmer swaps the handler for a KerberizedServer.
    KerberizedFortuneServer(service, srvtab, port=1718).attach(server_host)
    print("Registered fortune.fortunehost, extracted srvtab, server up.\n")

    print("=== AFTER ===")
    ws.client.kinit("bcn", "bcn-pw")
    channel = KerberizedChannel(ws.client, service, server_host.address, 1718,
                                protection=Protection.NONE, mutual=True)
    print(" bcn connects:       ", channel.call(b"fortune please").decode())
    print(" (the name came from the ticket — there is nothing to lie about)")

    print("\n=== And without tickets? ===")
    stranger = realm.workstation()
    try:
        KerberizedChannel(stranger.client, service, server_host.address, 1718)
    except KerberosError as exc:
        print(f" stranger refused: {exc.code.name}")


if __name__ == "__main__":
    main()
