"""The full Athena public-workstation experience (paper appendix).

A user walks up to a public workstation and logs in.  Behind the
scenes: Kerberos verifies the password (Figure 5), Hesiod locates the
home directory, the modified NFS mount daemon installs a kernel
credential mapping after a Kerberos handshake, and the home directory
appears.  At logout everything is torn down — and the next user (or an
address forger) can see none of it.

Run:  python examples/athena_workstation.py
"""

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsServer
from repro.apps.nfs.client import NfsClient, NfsClientError
from repro.apps.workstation import AthenaWorkstation
from repro.netsim import Network
from repro.realm import Realm
from repro.user.login import LoginError


def build_athena():
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("jis", "jis-password")
    realm.add_user("bcn", "bcn-password")

    hesiod_host = net.add_host("hesiod")
    hesiod = HesiodServer().attach(hesiod_host)
    hesiod.add_user("jis", 1001, [100], "helios", "/u/jis", "Jeff Schiller")
    hesiod.add_user("bcn", 1002, [100], "helios", "/u/bcn", "Cliff Neuman")

    fs_host = net.add_host("helios")   # a VAX 11/750 fileserver
    nfs_service, _ = realm.add_service("nfs", "helios")
    mount_service, _ = realm.add_service("mountd", "helios")
    srvtab = realm.srvtab_for(nfs_service, mount_service)
    nfs = NfsServer(mode=AuthMode.MAPPED, service=nfs_service, srvtab=srvtab).attach(fs_host)
    nfs.passwd.add("jis", 1001, [100])
    nfs.passwd.add("bcn", 1002, [100])
    MountDaemon(nfs, mount_service, srvtab).attach(fs_host)
    nfs.fs.install_home("jis", 1001, 100)
    nfs.fs.install_home("bcn", 1002, 100)
    return net, realm, hesiod_host, fs_host, nfs, mount_service


def main() -> None:
    net, realm, hesiod_host, fs_host, nfs, mount_service = build_athena()

    ws = realm.workstation("e40-pc-1")
    athena = AthenaWorkstation(
        ws.host, ws.client, hesiod_host.address,
        {"helios": fs_host.address}, {"helios": mount_service},
    )

    print("=== jis sits down at public workstation e40-pc-1 ===")
    try:
        athena.login("jis", "wrong-guess")
    except LoginError as exc:
        print(f"First attempt: {exc}")

    home = athena.login("jis", "jis-password")
    print(f"Logged in; home {home.home_path} mounted from helios.")
    print(f"passwd entry: {athena.passwd_file['jis']}")

    home.nfs.create(f"{home.home_path}/diary")
    home.nfs.write(f"{home.home_path}/diary", b"private thoughts of jis")
    print(f"Wrote {home.home_path}/diary "
          f"({len(home.nfs.read(home.home_path + '/diary'))} bytes back).")
    print(f"Kernel credential mappings on helios: {len(nfs.credmap)}")

    print("\n=== jis logs out ===")
    athena.logout()
    print(f"Mappings after logout: {len(nfs.credmap)}; "
          f"tickets left: {len(ws.client.klist())}")

    print("\n=== bcn uses the same workstation ===")
    home2 = athena.login("bcn", "bcn-password")
    try:
        home2.nfs.read("/u/jis/diary")
    except NfsClientError as exc:
        print(f"bcn reading jis's diary: DENIED ({exc})")
    athena.logout()

    print("\n=== An attacker forges jis's address while jis is logged out ===")
    forger = NfsClient(ws.host, fs_host.address, uid_on_client=1001)
    try:
        forger.read("/u/jis/diary")
    except NfsClientError as exc:
        print(f"Forged read: DENIED ({exc})")
    print('\n"When a user is not logged in, no amount of IP address '
          'forgery will permit unauthorized access to her/his files."')


if __name__ == "__main__":
    main()
