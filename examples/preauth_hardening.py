"""Hardening a realm with preauthentication (extension beyond the paper).

Demonstrates the attack that motivated preauthentication — harvesting
offline-guessing material for any user just by asking the KDC — and the
fix, which this library implements as an opt-in extension
(`ATTR_REQUIRE_PREAUTH`), off by default for 1988 fidelity.

Run:  python examples/preauth_hardening.py
"""

from repro.database.schema import ATTR_REQUIRE_PREAUTH
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.threat import Eavesdropper, active_as_probe


def main() -> None:
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU")
    realm.add_user("open-user", "password")   # 1988 defaults, weak password
    realm.db.add_principal(
        Principal("hardened-user", "", realm.name),
        password="password",                  # same weak password
        attributes=ATTR_REQUIRE_PREAUTH,
    )

    attacker = net.add_host("harvester")
    eve = Eavesdropper(net)

    print("=== The attack the 1988 AS permits ===")
    reply = active_as_probe(
        attacker, realm.master_host.address,
        Principal("open-user", "", realm.name), realm.name,
    )
    print(f"Attacker asked the KDC for open-user's initial ticket: "
          f"{'GOT material' if reply else 'refused'}")
    guessed = eve.offline_password_guess(
        reply, ["123456", "qwerty", "password", "athena"]
    )
    print(f"Offline dictionary against the harvested reply: "
          f"recovered password = {guessed!r}\n")

    print("=== The same attack against the hardened user ===")
    reply = active_as_probe(
        attacker, realm.master_host.address,
        Principal("hardened-user", "", realm.name), realm.name,
    )
    print(f"Attacker asked for hardened-user's ticket: "
          f"{'GOT material' if reply else 'REFUSED (preauth required)'}\n")

    print("=== The legitimate user barely notices ===")
    ws = realm.workstation()
    net.reset_stats()
    ws.client.kinit("hardened-user", "password")
    print(f"kinit succeeded; KDC round trips: {net.stats['port:750']} "
          f"(the extra one is the preauth negotiation)")

    print("\n=== The honest limit ===")
    eve2 = Eavesdropper(net)
    ws2 = realm.workstation()
    ws2.client.kinit("hardened-user", "password")
    captured = eve2.harvest_kdc_replies()
    guessed = eve2.offline_password_guess(
        captured[-1], ["123456", "password"]
    )
    print(f"A passive wiretap on a real login still cracks weak "
          f"passwords: recovered = {guessed!r}")
    print("Preauth closes the active probe, not the wiretap; strong")
    print("passwords remain the real defense (then and now).")


if __name__ == "__main__":
    main()
