"""Quickstart: a complete Kerberos realm in 60 lines.

Walks the full Figure 9 protocol: a user logs in (AS exchange), obtains
a service ticket (TGS exchange), and authenticates to a Kerberized
service with mutual authentication (AP exchange) — then inspects and
destroys their tickets.

Run:  python examples/quickstart.py
"""

from repro.core import ReplayCache, krb_mk_rep, krb_rd_req
from repro.netsim import Network
from repro.realm import Realm
from repro.user import kdestroy, kinit, klist


def main() -> None:
    # --- The administrator's setup (paper Section 6.3) -------------------
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=1)
    realm.add_user("jis", "jis-password")
    rlogin, rlogin_key = realm.add_service("rlogin", "priam")
    srvtab = realm.srvtab_for(rlogin)      # installed on priam

    # --- Phase 1: the initial ticket (Figure 5) ---------------------------
    ws = realm.workstation("jis-workstation")
    print(kinit(ws.client, "jis", "jis-password"))

    # --- Phase 2: a ticket for the rlogin service (Figure 8) --------------
    # (Happens implicitly inside mk_req; no password needed again.)
    request, cred, sent_at = ws.client.mk_req(rlogin, mutual=True)
    print(f"\nObtained a ticket for {cred.service} "
          f"(lifetime {cred.life / 3600:.0f} h)")

    # --- Phase 3: presenting credentials (Figures 6 and 7) ----------------
    replay_cache = ReplayCache()
    context = krb_rd_req(
        request,
        service=rlogin,
        service_key_or_srvtab=srvtab,
        packet_address=ws.host.address,
        now=net.clock.now(),
        replay_cache=replay_cache,
    )
    print(f"priam's rlogin server authenticated the request: "
          f"client is {context.client}")

    # Mutual authentication: the server proves itself back.
    ws.client.rd_rep(krb_mk_rep(context), sent_at, cred)
    print("Mutual authentication succeeded: the server is genuine.\n")

    # --- The user's view (Section 6.1) -------------------------------------
    print(klist(ws.client))
    print()
    print(kdestroy(ws.client))


if __name__ == "__main__":
    main()
