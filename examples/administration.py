"""Running a realm: administration, replication, failure (Sections 5-6).

The administrator's whole job in one script: initialize the realm, add
users and slaves, watch propagation, change passwords over the network
via the KDBM, and survive a master failure (authentication continues,
administration does not — Figures 10 and 11).

Run:  python examples/administration.py
"""

from repro.core import KerberosError, Principal
from repro.kdbm import KdbmClient
from repro.netsim import Network, Unreachable
from repro.realm import Realm
from repro.user import kadmin_add_principal, kinit, kpasswd


def main() -> None:
    net = Network()

    print("=== kdb_init + essential principals + two slaves ===")
    realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=2)
    realm.add_admin("jis", "jis-admin-pw")
    realm.add_user("jis", "jis-pw")
    realm.schedule_propagation()  # hourly, per the paper
    print(f"Master: {realm.master_host.name}; "
          f"slaves: {[s.host.name for s in realm.slaves]}")

    ws = realm.workstation()
    kdbm = KdbmClient(ws.client, realm.master_host.address)

    print("\n=== kadmin: register a new user over the network ===")
    print(kadmin_add_principal(kdbm, "jis", "jis-admin-pw", "bcn", "welcome"))

    print("\n=== The new user exists on the master, not yet on slaves ===")
    bcn = Principal("bcn", "", realm.name)
    print(f"  master has bcn: {realm.db.exists(bcn)}")
    print(f"  slave-1 has bcn: {realm.slaves[0].db.exists(bcn)}")
    print("  ... one simulated hour later (kprop fires) ...")
    net.clock.advance(3600)
    print(f"  slave-1 has bcn: {realm.slaves[0].db.exists(bcn)}")

    print("\n=== kpasswd: the user changes their own password ===")
    print(f"  {kpasswd(kdbm, 'bcn', 'welcome', 'my-own-secret')}")

    print("\n=== The audit log (all requests, permitted or denied) ===")
    # bcn authenticates fine but tries to change *jis's* password: the
    # KDBM's self-or-ACL rule denies it, and the denial is logged.
    from repro.kdbm.messages import AdminOperation, AdminRequestBody
    from repro.principal import kdbm_principal

    cred = ws.client.as_exchange(bcn, "my-own-secret", kdbm_principal(realm.name))
    reply = kdbm._roundtrip(
        cred, bcn,
        AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=Principal("jis", "", realm.name),
            new_password="evil",
            max_life=0.0,
        ),
    )
    print(f"  (bcn tried to reset jis's password: ok={reply.ok})")
    for entry in realm.kdbm.log:
        status = "PERMITTED" if entry.permitted else "DENIED   "
        print(f"  t={entry.time:>7.0f}  {status} {entry.operation:<16} "
              f"{entry.requester} -> {entry.target}")

    print("\n=== Master machine goes down (Figures 10 and 11) ===")
    # The paper's consistency window: a change made since the last hourly
    # dump exists only on the master.  Wait one propagation interval so
    # the slaves know bcn's new password before the master dies.
    net.clock.advance(3600)
    net.set_down(realm.master_host.name)
    print(f"  {kinit(ws.client, 'bcn', 'my-own-secret')}")
    print("  (authentication served by a slave)")
    try:
        kpasswd(kdbm, "bcn", "my-own-secret", "another")
    except Unreachable:
        print("  kpasswd: master unreachable — administration requests "
              "cannot be serviced")
    net.set_up(realm.master_host.name)
    print("  Master restored.")


if __name__ == "__main__":
    main()
