"""Cross-realm authentication (paper Section 7.2).

The paper's own scenario: "the relation between the Project Athena
Kerberos and the Kerberos running at MIT's Laboratory for Computer
Science."  A user registered at ATHENA.MIT.EDU uses a service at
LCS.MIT.EDU on the strength of their home-realm authentication; the
service sees exactly which realm vouched for them.

Run:  python examples/cross_realm.py
"""

from repro.core import KerberosError, StaticLocator, krb_rd_req, unseal_ticket
from repro.netsim import Network
from repro.realm import Realm, link


def main() -> None:
    net = Network()

    print("=== Two administrative domains stand up their own Kerberi ===")
    athena = Realm(net, "ATHENA.MIT.EDU", seed=b"athena")
    lcs = Realm(net, "LCS.MIT.EDU", seed=b"lcs")
    athena.add_user("jis", "jis-password")
    rlogin_lcs, rlogin_key = lcs.add_service("rlogin", "ptt")

    print("=== The administrators exchange an inter-realm key ===")
    link(athena, lcs)

    ws = athena.workstation("jis-ws")
    ws.client.set_locator("LCS.MIT.EDU", StaticLocator([lcs.master_host.address]))

    print("\njis logs in at home (ATHENA) ...")
    ws.client.kinit("jis", "jis-password")

    print("... and asks for rlogin.ptt@LCS.MIT.EDU.")
    cred = ws.client.get_credential(rlogin_lcs)
    print("Tickets now held:")
    for c in ws.client.klist():
        print(f"  {c.service}")

    print("\nThe LCS service authenticates the request:")
    request, _, _ = ws.client.mk_req(rlogin_lcs)
    context = krb_rd_req(
        request, rlogin_lcs, rlogin_key, ws.host.address, net.clock.now()
    )
    print(f"  client = {context.client}")
    print('  ("the realm field for the client contains the name of the')
    print('   realm in which the client was originally authenticated")')

    ticket = unseal_ticket(cred.ticket, rlogin_key)
    assert str(ticket.client) == "jis@ATHENA.MIT.EDU"

    print("\n=== An unlinked realm gets nothing ===")
    uw = Realm(net, "CS.WASHINGTON.EDU", seed=b"uw")
    uw_service, _ = uw.add_service("rlogin", "june")
    ws.client.set_locator(
        "CS.WASHINGTON.EDU", StaticLocator([uw.master_host.address])
    )
    try:
        ws.client.get_credential(uw_service)
    except KerberosError as exc:
        print(f"jis -> CS.WASHINGTON.EDU: {exc}")
    print("(no inter-realm key was ever exchanged with that realm)")


if __name__ == "__main__":
    main()
