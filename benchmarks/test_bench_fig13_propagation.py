"""Exp F13 — Figure 13: database propagation.

Times a full kprop round (dump + master-key checksum + transfer +
verify + load on every slave) at a few database sizes, and regenerates
the figure's guarantees: tampered transfers rejected, slaves converge,
staleness bounded by the hourly interval.
"""

from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm

from benchmarks.bench_util import REALM


def build_realm_with_users(n_users: int, n_slaves: int = 2) -> Realm:
    net = Network()
    realm = Realm(net, REALM, seed=b"fig13", n_slaves=n_slaves)
    for i in range(n_users):
        realm.add_user(f"user{i:04d}", f"pw{i}")
    return realm


def test_bench_fig13_propagation_round(benchmark):
    realm = build_realm_with_users(100)

    result = benchmark(realm.propagate)
    assert result.all_ok

    dump_size = len(realm.db.dump())
    print(f"\nFigure 13 — full-database propagation "
          f"({len(realm.db)} principals, {dump_size} byte dump, 2 slaves)")

    # Convergence: slaves byte-identical to the master.
    for slave in realm.slaves:
        assert list(slave.db.store.items()) == list(realm.db.store.items())
    print("  slaves converged to byte-identical contents")

    # Tamper rejection.
    def flip(datagram):
        if datagram.dst_port == 754:
            payload = bytearray(datagram.payload)
            payload[len(payload) // 2] ^= 0x01
            return type(datagram)(
                src=datagram.src, src_port=datagram.src_port,
                dst=datagram.dst, dst_port=datagram.dst_port,
                payload=bytes(payload),
            )
        return datagram

    realm.add_user("canary", "pw")
    realm.net.add_interceptor(flip)
    tampered = realm.propagate()
    realm.net.remove_interceptor(flip)
    assert not tampered.all_ok
    assert all(
        not s.db.exists(Principal("canary", "", REALM)) for s in realm.slaves
    )
    print("  tampered transfer: rejected by all slaves "
          "(master-key checksum mismatch)")

    # Staleness bound under the hourly schedule.
    realm.schedule_propagation()
    realm.net.clock.advance(3 * 3600.0)
    worst = max(s.kpropd.staleness(realm.net.clock.now()) for s in realm.slaves)
    print(f"  worst slave staleness under hourly schedule: {worst:.0f}s "
          f"(bound: 3600s)")
    assert worst <= 3600.0


def test_bench_fig13_dump_scales_linearly(benchmark):
    """Dump cost grows with database size (it is a full dump — the
    paper's 'very simple method')."""
    realm = build_realm_with_users(500, n_slaves=0)

    dump = benchmark(realm.db.dump)
    small = build_realm_with_users(50, n_slaves=0).db.dump()
    print(f"\n  dump sizes: 50 users = {len(small)} B, "
          f"500 users = {len(dump)} B")
    assert len(dump) > 5 * len(small)
