"""Exp F10 — Figure 10: authentication requests go to master OR slaves.

Regenerates the figure's two claims:

* availability — authentication still succeeds with the master down
  (the client fails over to a slave);
* load spreading — "the ability to perform authentication on any one of
  several machines reduces the probability of a bottleneck": with N
  KDCs and clients spread across them, per-KDC load drops ~N-fold.
"""

from repro.core import KerberosClient, StaticLocator

from benchmarks.bench_util import REALM, small_realm


def test_bench_fig10_failover_login(benchmark):
    realm = small_realm(n_slaves=2)
    realm.net.set_down(realm.master_host.name)
    ws = realm.workstation()

    def login_via_slave():
        ws.client.kdestroy()
        return ws.client.kinit("jis", "jis-pw")

    tgt = benchmark(login_via_slave)
    assert tgt is not None
    print("\nFigure 10 — master down: logins served by slaves")
    realm.net.set_up(realm.master_host.name)


def test_bench_fig10_load_spreading(benchmark):
    realm = small_realm(n_slaves=2, seed=b"fig10-load")
    kdcs = [realm.kdc] + [s.kdc for s in realm.slaves]
    addresses = realm.kdc_addresses()

    # 30 workstations, each preferring a different KDC (round-robin), as
    # a client population spread across replicas would.
    stations = []
    for i in range(30):
        ws = realm.workstation()
        preferred = addresses[i % len(addresses)]
        others = [a for a in addresses if a != preferred]
        ws.client.set_locator(REALM, StaticLocator([preferred] + others))
        stations.append(ws)

    def login_storm():
        for ws in stations:
            ws.client.kdestroy()
            ws.client.kinit("jis", "jis-pw")

    benchmark.pedantic(login_storm, rounds=3, iterations=1)

    loads = [k.as_requests for k in kdcs]
    total = sum(loads)
    print("\nFigure 10 — AS request distribution across 1 master + 2 slaves:")
    for name, load in zip(["master", "slave-1", "slave-2"], loads):
        print(f"  {name:<8} {load:>5} requests ({100 * load / total:.0f}%)")
    # Shape: no single machine serves everything; the spread is near-even.
    assert max(loads) < total
    assert max(loads) <= 2 * min(loads)
