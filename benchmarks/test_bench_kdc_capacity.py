"""Exp S9 (supplement) — could one KDC really carry all of Athena?

Section 9 reports a single master (plus slaves) serving 5,000 users on
650 workstations as the *sole* authentication mechanism.  This bench
answers the implied capacity question with measured numbers: time the
KDC's actual per-request service cost (this implementation's software
DES), model the deployment's busiest hour, and compute utilization.

Shape to hold: even on interpreted-Python DES, a single KDC sits far
below saturation at Athena's scale — consistent with the paper running
the realm on one VAX-class master.
"""

import time

from benchmarks.bench_util import (
    logged_in_workstation,
    rlogin_principal,
    small_realm,
)

# The busiest plausible hour at 1988 Athena: every workstation turns
# over once (650 logins) and each session touches services generously.
LOGINS_PER_HOUR = 650
TGS_PER_SESSION = 10
HOUR = 3600.0


def measure_service_time(n: int, fn) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


def test_bench_kdc_capacity(benchmark):
    realm = small_realm(seed=b"capacity")
    ws = logged_in_workstation(realm)
    service = rlogin_principal()

    def as_exchange():
        ws.client.kdestroy()
        ws.client.kinit("jis", "jis-pw")

    def tgs_exchange():
        ws.client.cache._creds.pop(str(service), None)
        ws.client.get_credential(service)

    # Warm up, then measure each exchange's full client+KDC cost; the
    # KDC's share is bounded above by the whole round trip.
    as_exchange()
    tgs_exchange()
    as_time = measure_service_time(50, as_exchange)
    tgs_time = measure_service_time(50, tgs_exchange)

    benchmark.pedantic(as_exchange, rounds=10, iterations=1)

    offered_per_hour = (
        LOGINS_PER_HOUR * as_time
        + LOGINS_PER_HOUR * TGS_PER_SESSION * tgs_time
    )
    utilization = offered_per_hour / HOUR

    print("\nSection 9 capacity check (measured on this implementation):")
    print(f"  AS exchange  : {as_time * 1e3:6.2f} ms")
    print(f"  TGS exchange : {tgs_time * 1e3:6.2f} ms")
    print(f"  busiest hour : {LOGINS_PER_HOUR} logins + "
          f"{LOGINS_PER_HOUR * TGS_PER_SESSION} TGS requests")
    print(f"  KDC busy time: {offered_per_hour:,.1f} s of {HOUR:,.0f} s "
          f"-> utilization {100 * utilization:.2f}%")
    headroom = 1 / utilization if utilization else float("inf")
    print(f"  headroom     : ~{headroom:,.0f}x the offered load")

    benchmark.extra_info.update(
        as_ms=round(as_time * 1e3, 2),
        tgs_ms=round(tgs_time * 1e3, 2),
        utilization_pct=round(100 * utilization, 2),
    )
    # The paper's single-master deployment is comfortably feasible: even
    # our pure-Python KDC stays under 10% busy in the busiest hour.
    assert utilization < 0.10, utilization
