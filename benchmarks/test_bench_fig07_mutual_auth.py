"""Exp F7 — Figure 7: mutual authentication.

Times the full mutual AP exchange (client request, server validation,
{ts+1} proof, client verification) and shows the proof catching a
masquerading server.
"""

import pytest

from repro.core import KerberosError, krb_mk_rep, krb_rd_rep, krb_rd_req
from repro.core.messages import ApReply
from repro.crypto import KeyGenerator

from benchmarks.bench_util import (
    logged_in_workstation,
    rlogin_principal,
    small_realm,
)


def test_bench_fig7_mutual_exchange(benchmark):
    realm = small_realm()
    service = rlogin_principal()
    key = realm.service_key(service)
    ws = logged_in_workstation(realm)
    now = realm.net.clock.now()

    def mutual_exchange():
        request, cred, sent = ws.client.mk_req(service, mutual=True)
        context = krb_rd_req(request, service, key, ws.host.address, now)
        reply = krb_mk_rep(context)
        krb_rd_rep(reply, sent, cred.session_key)
        return context

    context = benchmark(mutual_exchange)
    assert context.client.name == "jis"
    print("\nFigure 7 — server proved knowledge of K_c,s via {ts+1}K_c,s")

    # The negative: an impostor's reply (sealed with a made-up key) is
    # rejected by the client.
    request, cred, sent = ws.client.mk_req(service, mutual=True)
    impostor_key = KeyGenerator(seed=b"impostor").session_key()
    fake_reply = ApReply.build(sent, impostor_key)
    with pytest.raises(KerberosError):
        krb_rd_rep(fake_reply, sent, cred.session_key)
    print("  impostor's reply (wrong key): rejected by the client")

    # And a correct-key reply for the wrong timestamp is also rejected
    # (replayed mutual-auth proof).
    context = krb_rd_req(request, service, key, ws.host.address, now)
    genuine = krb_mk_rep(context)
    with pytest.raises(KerberosError):
        krb_rd_rep(genuine, sent + 10.0, cred.session_key)
    print("  replayed proof for a different request: rejected")
