"""Exp S9 — Section 9: Kerberos at Project Athena's deployment scale.

*"Since January of 1987, Kerberos has been Project Athena's sole means
of authenticating its 5,000 users, 650 workstations, and 65 servers."*

The benchmark stands up a realm at that registered scale (full 5,000
user + 65 service database, master + 2 slaves) and drives a busy-hour
sample of activity through :class:`repro.workload.AthenaWorkload`.
Shape to hold: the system sustains deployment-scale state and load, and
ticket caching keeps KDC traffic well below one request per service use.

The busy-hour run also exports its full metrics registry as
``BENCH_SEC9_METRICS.json`` (see ``docs/OBSERVABILITY.md``) — per-port
datagram counts, AS/TGS outcomes by error code, replay-cache results,
and the AS-exchange latency histogram, all off the simulated clock.
"""

from pathlib import Path

from repro.netsim import Network
from repro.realm import Realm
from repro.workload import AthenaWorkload

from benchmarks.bench_util import REALM, write_bench_artifact

METRICS_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_SEC9_METRICS.json"

N_USERS = 5_000
N_SERVERS = 65
# A sampled busy-hour slice of the 650 workstations.
N_ACTIVE_WORKSTATIONS = 65
USES_PER_SESSION = 6


def build_athena_scale() -> AthenaWorkload:
    net = Network()
    realm = Realm(net, REALM, seed=b"sec9", n_slaves=2)
    return AthenaWorkload(realm, n_users=N_USERS, n_services=N_SERVERS, seed=1988)


def test_bench_sec9_busy_hour(benchmark):
    workload = build_athena_scale()
    realm = workload.realm
    print(f"\nSection 9 — registered: {len(realm.db)} principals "
          f"({N_USERS} users + {N_SERVERS} services + infrastructure)")

    stats = benchmark.pedantic(
        lambda: workload.busy_hour(
            n_stations=N_ACTIVE_WORKSTATIONS,
            uses_per_session=USES_PER_SESSION,
        ),
        rounds=2,
        iterations=1,
    )

    print(f"  busy-hour sample: {stats.logins} logins, "
          f"{stats.service_uses} service uses")
    print(f"  KDC messages this hour: {stats.kdc_messages}")
    print(f"  KDC requests per service use: "
          f"{stats.kdc_requests_per_use:.2f} (ticket reuse amortizes the TGS)")

    assert stats.logins == N_ACTIVE_WORKSTATIONS
    assert stats.service_uses == N_ACTIVE_WORKSTATIONS * USES_PER_SESSION
    # Shape: caching means fewer KDC exchanges than service uses.
    assert stats.kdc_messages < stats.service_uses

    # Export the registry as the run's metrics artifact (with history).
    net = realm.net
    snap = write_bench_artifact(
        net.metrics,
        METRICS_ARTIFACT,
        now=net.clock.now(),
        seed=b"sec9",
        extra={
            "experiment": "S9",
            "logins": stats.logins,
            "service_uses": stats.service_uses,
            "kdc_messages": stats.kdc_messages,
            "kdc_requests_per_use": stats.kdc_requests_per_use,
        },
    )
    counter_names = {e["name"] for e in snap["counters"]}
    assert {"net.datagrams_total", "kdc.outcomes_total",
            "replay.checks_total"} <= counter_names
    assert any(
        e["name"] == "client.exchange_seconds"
        and e["labels"].get("type") == "as"
        for e in snap["histograms"]
    )
    print(f"  metrics snapshot: {METRICS_ARTIFACT.name}")


def test_bench_sec9_kdc_lookup_cost_at_scale(benchmark):
    """A single login against the full 5,000-user database — per-request
    cost must not degrade with registered scale (hash-backed store)."""
    workload = build_athena_scale()
    ws = workload.realm.workstation()

    def login():
        ws.client.kdestroy()
        return ws.client.kinit("user04999", "password-4999")

    tgt = benchmark(login)
    assert tgt is not None
