"""Exp C1 — Section 2.2: CBC vs PCBC error propagation (ablation).

*"In CBC, an error is propagated only through the current block of the
cipher, whereas in PCBC, the error is propagated throughout the
message."*

Measures both the semantic difference (blocks damaged per single-bit
ciphertext error, swept across error positions) and the cost difference
(PCBC's extra chaining work per block), plus the consequence for sealed
messages: PCBC detects every mid-message tamper; CBC misses them.
"""

from repro.crypto import (
    DesKey,
    IntegrityError,
    Mode,
    cbc_decrypt,
    cbc_encrypt,
    pcbc_decrypt,
    pcbc_encrypt,
    seal,
    unseal,
)

KEY = DesKey(bytes.fromhex("133457799BBCDFF1"))
IV = bytes.fromhex("FEDCBA9876543210")
N_BLOCKS = 16
DATA = bytes(range(256))[: N_BLOCKS * 8] * 1


def damaged_blocks(mode_encrypt, mode_decrypt, error_block: int) -> int:
    cipher = bytearray(mode_encrypt(KEY, DATA, IV))
    cipher[error_block * 8] ^= 0x01
    plain = mode_decrypt(KEY, bytes(cipher), IV)
    return sum(
        1
        for i in range(N_BLOCKS)
        if plain[i * 8 : (i + 1) * 8] != DATA[i * 8 : (i + 1) * 8]
    )


def test_bench_pcbc_encrypt_cost(benchmark):
    """PCBC's throughput (its cost side of the tradeoff)."""
    benchmark(lambda: pcbc_encrypt(KEY, DATA, IV))


def test_bench_cbc_encrypt_cost(benchmark):
    """CBC baseline throughput."""
    benchmark(lambda: cbc_encrypt(KEY, DATA, IV))


def test_bench_pcbc_error_propagation(benchmark):
    """The Section 2.2 claim, swept across every error position."""

    def sweep():
        return [
            (
                damaged_blocks(cbc_encrypt, cbc_decrypt, i),
                damaged_blocks(pcbc_encrypt, pcbc_decrypt, i),
            )
            for i in range(N_BLOCKS)
        ]

    results = benchmark.pedantic(sweep, rounds=1)

    print(f"\nSection 2.2 — blocks damaged by a 1-bit error "
          f"({N_BLOCKS}-block message):")
    print("  error at block:   " + " ".join(f"{i:>2}" for i in range(N_BLOCKS)))
    print("  CBC damaged:      " + " ".join(f"{c:>2}" for c, _ in results))
    print("  PCBC damaged:     " + " ".join(f"{p:>2}" for _, p in results))
    for i, (cbc_dmg, pcbc_dmg) in enumerate(results):
        assert cbc_dmg <= 2                       # CBC: current + next block
        assert pcbc_dmg == N_BLOCKS - i           # PCBC: everything after

    # The consequence for sealed messages: tamper anywhere, PCBC notices;
    # CBC misses mid-message damage.
    pcbc_caught = cbc_caught = 0
    for mode, counter in ((Mode.PCBC, "pcbc"), (Mode.CBC, "cbc")):
        blob = bytearray(seal(KEY, DATA, mode=mode))
        for i in range(1, len(blob) // 8 - 1):    # skip header/trailer blocks
            tampered = bytearray(blob)
            tampered[i * 8] ^= 0x01
            try:
                unseal(KEY, bytes(tampered), mode=mode)
            except IntegrityError:
                if mode == Mode.PCBC:
                    pcbc_caught += 1
                else:
                    cbc_caught += 1
    positions = len(blob) // 8 - 2
    print(f"  sealed-message tampers caught: PCBC {pcbc_caught}/{positions}, "
          f"CBC {cbc_caught}/{positions}")
    assert pcbc_caught == positions
    assert cbc_caught < positions
