"""Exp F9 — Figure 9: the complete authentication protocol summary.

Times the full login-to-authenticated-service path (all three phases)
and regenerates the figure's structure: three exchanges, six messages,
and the exact key-usage chain.
"""

import pytest

from repro.core import (
    KerberosError,
    krb_mk_rep,
    krb_rd_rep,
    krb_rd_req,
    tgs_principal,
    unseal_ticket,
)
from repro.crypto import string_to_key

from benchmarks.bench_util import rlogin_principal, small_realm


def test_bench_fig9_full_protocol(benchmark):
    realm = small_realm()
    service = rlogin_principal()
    key = realm.service_key(service)
    ws = realm.workstation()
    now = realm.net.clock.now()

    def full_protocol():
        ws.client.kdestroy()
        ws.client.kinit("jis", "jis-pw")                      # phase 1 (AS)
        request, cred, sent = ws.client.mk_req(service, mutual=True)  # phase 2 (TGS)
        context = krb_rd_req(request, service, key, ws.host.address, now)  # phase 3
        krb_rd_rep(krb_mk_rep(context), sent, cred.session_key)
        return context

    context = benchmark(full_protocol)
    assert context.client.name == "jis"

    # Message accounting: 2 KDC round trips = 4 datagrams on the wire
    # (the AP exchange above runs in-process at the service).
    realm.net.reset_stats()
    full_protocol()
    print(f"\nFigure 9 — KDC messages for login + first service: "
          f"{realm.net.stats['messages']} (2 exchanges x 2)")
    assert realm.net.stats["port:750"] == 2

    # The key chain: password key opens only the AS reply; TGS key opens
    # only the TGT; service key opens only the service ticket.
    tgt_cred = ws.client.cache.tgt(realm.name)
    svc_cred = ws.client.cache.get(service)
    tgs_key = realm.db.principal_key(tgs_principal(realm.name))
    tgt = unseal_ticket(tgt_cred.ticket, tgs_key)
    svc_ticket = unseal_ticket(svc_cred.ticket, key)
    assert tgt.session_key != svc_ticket.session_key
    with pytest.raises(KerberosError):
        unseal_ticket(tgt_cred.ticket, string_to_key("jis-pw"))
    with pytest.raises(KerberosError):
        unseal_ticket(svc_cred.ticket, tgs_key)
    print("  key-usage chain verified: K_c -> K_tgs -> K_s, no crossovers")
