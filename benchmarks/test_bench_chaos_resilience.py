"""Exp CH — resilience sweep: login success vs KDC-port loss rate.

Not a figure from the paper, but its operational premise (Section 1:
"open network" = unreliable network) quantified: how many retransmission
attempts does the retry policy spend, and how many logins still succeed,
as the loss rate on the Kerberos port climbs.  Shape to hold: with a
bounded retry budget, success stays at 100% through double-digit loss
rates, degrading only as loss approaches the retry budget's ceiling.

Exports ``BENCH_CHAOS_METRICS.json`` with the sweep summary plus the
full metrics registry of the harshest surviving configuration.
"""

from pathlib import Path

from repro.core import RetryPolicy
from repro.netsim import Duplicate, Loss, Match, Network, Unreachable
from repro.netsim.ports import KERBEROS_PORT
from repro.realm import Realm

from benchmarks.bench_util import REALM, write_bench_artifact

METRICS_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_CHAOS_METRICS.json"

LOSS_RATES = [0.0, 0.10, 0.25]
DUPLICATE_RATE = 0.25
N_LOGINS = 40
POLICY = RetryPolicy(max_attempts=8, base_delay=0.05, jitter=0.5)


def run_login_storm(loss_rate, seed=1988):
    """N_LOGINS fresh logins + service tickets over a faulty KDC port;
    returns (net, successes, attempts)."""
    net = Network(seed=seed)
    realm = Realm(net, REALM, n_slaves=1)
    realm.add_user("jis", "jis-pw")
    service, _ = realm.add_service("rlogin", "priam")
    realm.propagate()
    if loss_rate:
        net.faults.add(Loss(loss_rate, Match.build(port=KERBEROS_PORT)))
        net.faults.add(Duplicate(DUPLICATE_RATE, Match.build(port=KERBEROS_PORT)))

    successes = 0
    for _ in range(N_LOGINS):
        ws = realm.workstation(retry_policy=POLICY)
        try:
            ws.client.kinit("jis", "jis-pw")
            if ws.client.get_credential(service) is not None:
                successes += 1
        except Unreachable:
            pass
    # Only the login-path ops — propagation (op="kprop") retries too and
    # would muddy the per-login arithmetic.
    attempts = net.metrics.total("retry.attempts_total", op="as") \
        + net.metrics.total("retry.attempts_total", op="tgs")
    return net, successes, attempts


def test_bench_chaos_login_sweep(benchmark):
    rows = []
    last_net = None
    for rate in LOSS_RATES:
        net, ok, attempts = run_login_storm(rate)
        rows.append({
            "loss_rate": rate,
            "duplicate_rate": DUPLICATE_RATE if rate else 0.0,
            "logins": N_LOGINS,
            "successes": ok,
            "retry_attempts": attempts,
            "attempts_per_login": attempts / N_LOGINS,
            "drops": net.metrics.total("net.drops_total", reason="loss"),
            "duplicates": net.metrics.total("net.duplicates_total"),
            "replays_absorbed": net.metrics.total(
                "replay.checks_total", result="replay"
            ),
        })
        last_net = net

    # Time the harshest configuration as the benchmark payload.
    benchmark.pedantic(
        lambda: run_login_storm(LOSS_RATES[-1], seed=7), rounds=2, iterations=1
    )

    print("\nExp CH — login resilience vs KDC-port loss "
          f"(retry budget: {POLICY.max_attempts} attempts):")
    print(f"  {'loss':>6} {'ok':>5} {'attempts/login':>15} {'replays':>8}")
    for row in rows:
        print(f"  {row['loss_rate']:>6.0%} {row['successes']:>3}/{N_LOGINS}"
              f" {row['attempts_per_login']:>15.2f}"
              f" {row['replays_absorbed']:>8.0f}")

    # Shape: clean network is all-success at exactly 2 attempts per login
    # (one AS + one TGS); faults cost extra attempts, not logins.
    assert rows[0]["successes"] == N_LOGINS
    assert rows[0]["attempts_per_login"] == 2.0
    for row in rows[1:]:
        assert row["successes"] >= 0.95 * N_LOGINS
        assert row["retry_attempts"] > 2 * N_LOGINS
    # The sweep is monotone in effort: more loss, more retransmission.
    efforts = [row["attempts_per_login"] for row in rows]
    assert efforts == sorted(efforts)

    write_bench_artifact(
        last_net.metrics,
        METRICS_ARTIFACT,
        now=last_net.clock.now(),
        seed=1988,
        extra={"experiment": "CH", "sweep": rows},
    )
