"""Exp F12 — Figure 12: the Kerberos administration protocol.

Times a complete kpasswd round trip (AS exchange for a KDBM ticket +
private-message operation) and regenerates the protocol's invariants:
KDBM tickets come only from the authentication service, passwords
travel only inside private messages, and every request is logged.
"""

import pytest

from repro.core import ErrorCode, KerberosError, kdbm_principal
from repro.kdbm import KdbmClient
from repro.principal import Principal

from benchmarks.bench_util import REALM, small_realm


def test_bench_fig12_kpasswd_roundtrip(benchmark):
    realm = small_realm()
    ws = realm.workstation()
    kdbm = KdbmClient(ws.client, realm.master_host.address)
    jis = Principal("jis", "", REALM)

    state = {"current": "jis-pw", "flip": "other-pw"}

    def kpasswd_roundtrip():
        old, new = state["current"], state["flip"]
        result = kdbm.change_password(jis, old, new)
        state["current"], state["flip"] = new, old
        return result

    result = benchmark(kpasswd_roundtrip)
    assert "password changed" in result

    print("\nFigure 12 — administration protocol invariants:")
    # KDBM tickets only via the AS: the TGS refuses.  (Clear the KDBM
    # credential the benchmark loop cached first.)
    ws.client.kdestroy()
    ws.client.kinit("jis", state["current"])
    with pytest.raises(KerberosError) as err:
        ws.client.get_credential(kdbm_principal(REALM))
    assert err.value.code == ErrorCode.KDC_PR_NOTGT
    print("  TGS refuses KDBM tickets (password entry is forced)")

    # The new password travels only inside a private message.
    captured = []
    realm.net.add_tap(lambda d: captured.append(d.payload))
    kdbm.change_password(jis, state["current"], "well-hidden-secret")
    assert not any(b"well-hidden-secret" in p for p in captured)
    print("  new password: never in cleartext on the wire")

    # Every request is in the audit log.
    permitted = sum(1 for e in realm.kdbm.log if e.permitted)
    print(f"  audit log: {len(realm.kdbm.log)} entries "
          f"({permitted} permitted)")
    assert len(realm.kdbm.log) > 0
