"""Exp HP — the hot-path performance gate.

Every exchange in Figures 5-13 bottoms out in DES/PCBC ``seal``/``unseal``,
and the NFS appendix's whole argument is per-transaction encryption cost —
so this suite measures the three levels of the hot path and *gates* on
them, so a regression fails CI instead of silently eroding the "as fast
as the hardware allows" goal (ROADMAP):

1. bulk PCBC ``seal``/``unseal`` throughput (the cipher + framing layer);
2. the Figure 5→6 login + service-use end-to-end flow (client, KDC,
   database, netsim — the full stack);
3. KDC requests/second (AS + TGS service rate).

Each is measured twice in the same run: once on the optimized path and
once under :func:`repro.crypto.reference.reference_kernels`, which swaps
the pre-optimization byte-path mode kernels back in and disables every
key-schedule cache.  The before/after ratios are asserted against the
acceptance floors and appended (with commit + seed) to the
``BENCH_PERF_HOTPATH.json`` history, so the artifact records the
trajectory across commits.

Methodology and how to read the artifact: ``docs/PERFORMANCE.md``.
"""

import time
from pathlib import Path

import pytest

from repro.core import krb_mk_req, krb_rd_req
from repro.crypto import DesKey, keycache, seal, unseal
from repro.crypto.reference import reference_kernels

from benchmarks.bench_util import (
    rlogin_principal,
    small_realm,
    write_bench_artifact,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_PERF_HOTPATH.json"

#: Acceptance floors (ISSUE 3): optimized-vs-reference speedup ratios.
PCBC_GATE = 2.0
E2E_GATE = 1.5

BULK_BYTES = 4096
BULK_ITERS = 30
E2E_ITERS = 30
ROUNDS = 5
SEED = b"perf-hotpath"


def _ab_times(run, rounds=ROUNDS):
    """(after_s, before_s): minimum over ``rounds`` *interleaved* A/B
    rounds.  Interleaving means CPU-frequency drift and background load
    hit both legs alike, so the ratio is far more stable than timing the
    legs back to back; the min-of-rounds damps scheduler noise."""
    after, before = [], []
    for _ in range(rounds):
        after.append(run())
        with reference_kernels():
            before.append(run())
    return min(after), min(before)


# -- level 1: bulk PCBC seal/unseal ------------------------------------------


def _run_bulk(key, payload, iters=BULK_ITERS):
    def run():
        t0 = time.perf_counter()
        for _ in range(iters):
            unseal(key, seal(key, payload))
        return time.perf_counter() - t0

    return run


# -- levels 2+3: the Figure 5→6 flow and KDC service rate --------------------


def _build_world():
    realm = small_realm(seed=SEED)
    ws = realm.workstation()
    service = rlogin_principal()
    service_key = realm.service_key(service)
    return realm, ws, service, service_key


def _login_and_use(realm, ws, service, service_key):
    """One Fig 5→6 cycle: fresh login, TGS exchange, AP request served."""
    ws.client.kdestroy()
    ws.client.kinit("jis", "jis-pw")
    cred = ws.client.get_credential(service)
    now = realm.net.clock.now()
    request = krb_mk_req(
        cred.ticket, cred.session_key, ws.client.principal,
        ws.host.address, now=now,
    )
    return krb_rd_req(request, service, service_key, ws.host.address, now)


def _run_e2e(iters=E2E_ITERS):
    """A timed runner over one long-lived world, plus that world (so the
    caller can export its metrics registry)."""
    realm, ws, service, service_key = _build_world()
    _login_and_use(realm, ws, service, service_key)  # warm-up

    def run():
        t0 = time.perf_counter()
        for _ in range(iters):
            _login_and_use(realm, ws, service, service_key)
        return time.perf_counter() - t0

    return run, realm


@pytest.mark.perf
def test_bench_perf_hotpath_gate():
    key = DesKey.from_bytes(bytes.fromhex("133457799BBCDFF1"))
    payload = bytes(range(256)) * (BULK_BYTES // 256)

    # -- A/B measurement, legs interleaved within the same run ----------
    run_bulk = _run_bulk(key, payload)
    run_e2e, realm = _run_e2e()
    bulk_after, bulk_before = _ab_times(run_bulk)
    e2e_after, e2e_before = _ab_times(run_e2e)

    # A perf gate on a shared machine needs one escalation step: if a
    # ratio looks below its floor, re-measure that layer with more
    # rounds before declaring a regression.
    if bulk_before / bulk_after < PCBC_GATE:
        bulk_after, bulk_before = _ab_times(run_bulk, rounds=2 * ROUNDS)
    if e2e_before / e2e_after < E2E_GATE:
        e2e_after, e2e_before = _ab_times(run_e2e, rounds=2 * ROUNDS)

    bulk_ratio = bulk_before / bulk_after
    e2e_ratio = e2e_before / e2e_after
    # Requests/sec: each flow is one AS + one TGS exchange.
    kdc_rps_after = 2 * E2E_ITERS / e2e_after
    kdc_rps_before = 2 * E2E_ITERS / e2e_before
    mb = BULK_BYTES * BULK_ITERS / 1e6

    print(f"\nPerf hot path (before → after, min of {ROUNDS} rounds):")
    print(f"  bulk PCBC seal+unseal {BULK_BYTES}B: "
          f"{mb / bulk_before:.2f} → {mb / bulk_after:.2f} MB/s  "
          f"({bulk_ratio:.2f}x, gate ≥{PCBC_GATE}x)")
    print(f"  Fig 5→6 login+service flow: "
          f"{e2e_before / E2E_ITERS * 1e3:.2f} → "
          f"{e2e_after / E2E_ITERS * 1e3:.2f} ms  "
          f"({e2e_ratio:.2f}x, gate ≥{E2E_GATE}x)")
    print(f"  KDC requests/sec: {kdc_rps_before:.0f} → {kdc_rps_after:.0f}")

    hits = keycache.stats()["hit"]
    snap = write_bench_artifact(
        realm.net.metrics,
        ARTIFACT,
        now=realm.net.clock.now(),
        seed=SEED,
        extra={
            "experiment": "HP",
            "gates": {"pcbc_min": PCBC_GATE, "e2e_min": E2E_GATE},
            "pcbc": {
                "payload_bytes": BULK_BYTES,
                "iterations": BULK_ITERS,
                "before_s": bulk_before,
                "after_s": bulk_after,
                "ratio": round(bulk_ratio, 3),
                "after_mb_per_s": round(mb / bulk_after, 3),
            },
            "e2e_fig5_6": {
                "iterations": E2E_ITERS,
                "before_s": e2e_before,
                "after_s": e2e_after,
                "ratio": round(e2e_ratio, 3),
                "after_ms_per_flow": round(e2e_after / E2E_ITERS * 1e3, 3),
            },
            "kdc": {
                "before_req_per_s": round(kdc_rps_before, 1),
                "after_req_per_s": round(kdc_rps_after, 1),
            },
        },
    )
    print(f"  artifact: {ARTIFACT.name} "
          f"({len(snap['history'])} run(s) in history)")

    # The gate: regressions to either layer fail the suite.
    assert bulk_ratio >= PCBC_GATE, (
        f"bulk PCBC speedup {bulk_ratio:.2f}x fell below the "
        f"{PCBC_GATE}x acceptance floor"
    )
    assert e2e_ratio >= E2E_GATE, (
        f"Fig 5→6 end-to-end speedup {e2e_ratio:.2f}x fell below the "
        f"{E2E_GATE}x acceptance floor"
    )
    # The artifact is a trajectory, and the cache layer actually ran.
    assert snap["history"][-1]["summary"]["experiment"] == "HP"
    assert hits > 0, "key-schedule cache recorded no hits during the flows"
    assert any(
        e["name"] == "crypto.keyschedule_total"
        and e["labels"].get("result") == "hit"
        for e in snap["counters"]
    )


def test_bench_perf_seal_unseal_ticket_sized(benchmark):
    """The pytest-benchmark view of the per-message primitive: a
    ticket-sized (104 B) seal+unseal round trip on the optimized path."""
    key = DesKey.from_bytes(bytes.fromhex("0123456789ABCDEF"), allow_weak=True)
    payload = bytes(range(104))
    result = benchmark(lambda: unseal(key, seal(key, payload)))
    assert result == payload
