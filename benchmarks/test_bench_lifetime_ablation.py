"""Exp L1 — Section 8's ticket-lifetime tradeoff, quantified (ablation).

*"The ticket lifetime problem is a matter of choosing the proper
tradeoff between security and convenience.  If the life of a ticket is
long, then if a ticket and its associated session key are stolen or
misplaced, they can be used for a longer period of time. ...  The
problem with giving a ticket a short lifetime, however, is that when it
expires, the user will have to obtain a new one which requires the user
to enter the password again."*

The sweep: for lifetimes from 30 minutes to 24 hours, simulate a
12-hour working day with periodic service use and a credential theft
mid-day.  Measured: password prompts per day (the convenience cost) and
the stolen ticket's usable window (the security cost).  Shape: the two
move in opposite directions — the paper's tradeoff.
"""

from repro.core import KerberosError, krb_rd_req
from repro.threat import steal_credentials, use_stolen_credential

from benchmarks.bench_util import rlogin_principal, small_realm

DAY = 12 * 3600.0
USE_INTERVAL = 15 * 60.0      # the user touches a service every 15 min
THEFT_TIME = 2 * 3600.0       # credentials stolen 2 h into the day
LIFETIMES = [0.5, 1, 2, 4, 8, 24]  # hours


def simulate_day(lifetime_hours: float):
    """Returns (password_prompts, stolen_window_seconds)."""
    from repro.netsim import Network
    from repro.realm import Realm

    life = lifetime_hours * 3600.0
    # Policy caps lifted to 30 h so the sweep variable is the *requested*
    # lifetime, not the realm's default 8 h policy.
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU", seed=b"l1-%d" % int(lifetime_hours * 60))
    realm.add_user("jis", "jis-pw", max_life=30 * 3600.0)
    service, key = realm.add_service("rlogin", "priam", max_life=30 * 3600.0)
    # The TGT itself is capped by the TGS principal's max_life; lift it so
    # the sweep variable is the requested lifetime alone.
    from repro.principal import tgs_principal

    realm.db.set_max_life(tgs_principal(realm.name), 30 * 3600.0)
    ws = realm.workstation()

    prompts = 0
    stolen = None
    stolen_at = None
    stolen_window = 0.0

    t = 0.0
    while t <= DAY:
        # The user needs the service now; kinit again if the TGT is gone.
        if ws.client.cache.tgt(realm.name, now=ws.host.clock.now()) is None:
            ws.client.kinit("jis", "jis-pw", life=life)
            prompts += 1
        # The service ticket is requested with the same lifetime policy.
        ws.client.get_credential(service, life=life)
        ws.client.mk_req(service, checksum=0)

        # Mid-day theft: the attacker copies the ticket file once.
        if stolen is None and net.clock.now() >= THEFT_TIME:
            loot = [s for s in steal_credentials(ws.client)
                    if "rlogin" in str(s.credential.service)]
            if loot:
                stolen = loot[0]
                stolen_at = net.clock.now()

        net.clock.advance(USE_INTERVAL)
        t = net.clock.now()

    # How long does the stolen credential keep working (from the victim's
    # own workstation, the Section 8 scenario)?
    if stolen is not None:
        probe = stolen_at
        while probe < stolen_at + 30 * 3600.0:
            try:
                krb_rd_req(
                    use_stolen_credential(stolen, ws.host, now=probe),
                    service, key, ws.host.address, probe,
                )
                stolen_window = probe - stolen_at + USE_INTERVAL
            except KerberosError:
                break
            probe += USE_INTERVAL
    return prompts, stolen_window


def test_bench_lifetime_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: [(h, *simulate_day(h)) for h in LIFETIMES], rounds=1
    )

    print("\nSection 8 — ticket lifetime tradeoff over a 12 h day "
          "(theft at t+2h):")
    print(f"  {'lifetime':>9}  {'password prompts':>17}  "
          f"{'stolen-ticket window':>21}")
    for hours, prompts, window in rows:
        print(f"  {hours:>7.1f} h  {prompts:>17d}  "
              f"{window / 3600.0:>19.2f} h")

    prompts = [p for _, p, _ in rows]
    windows = [w for _, _, w in rows]
    # The tradeoff's shape: convenience improves (fewer prompts) and
    # security worsens (longer exposure) monotonically with lifetime.
    assert all(a >= b for a, b in zip(prompts, prompts[1:]))
    assert all(a <= b for a, b in zip(windows, windows[1:]))
    # Extremes: a 30-min ticket means many prompts but tiny exposure;
    # a 24-h ticket means one prompt but day-long exposure.
    assert prompts[0] >= 10 and windows[0] <= 3600.0
    assert prompts[-1] == 1 and windows[-1] >= 8 * 3600.0
