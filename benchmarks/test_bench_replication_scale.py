"""Exp RS — incremental propagation at scale: delta vs. full dump.

The paper propagates "the database ... in its entirety" every hour; at
Athena's scale (Section 9: thousands of principals) that is megabytes
per slave per round regardless of how little changed.  The update
journal + delta protocol send only what changed.  This benchmark sweeps
database size (1k / 10k / 50k principals) and churn (low / high) and
gates the claim:

* **bytes**: at 50k principals and low churn, a delta round moves at
  least 10x fewer bytes over the wire than a full-dump round;
* **convergence**: after every round, every slave's store digest equals
  the master's — cheaper must not mean approximate;
* **determinism**: the same seed reproduces the same digests and the
  same byte counts exactly.

Writes ``BENCH_REPL_SCALE.json`` (snapshot + per-run history).
"""

import hashlib
from pathlib import Path

from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm

from benchmarks.bench_util import REALM, write_bench_artifact

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_REPL_SCALE.json"

SIZES = [1_000, 10_000, 50_000]
N_SLAVES = 2
SEED = 1988
#: Principals touched per low-churn round — a realistic trickle of
#: password changes between rounds.
LOW_CHURN = 10
#: Fraction of the database touched per high-churn round.
HIGH_CHURN_FRACTION = 0.02
#: The headline gate: delta moves >= 10x fewer bytes at low churn.
BYTES_GATE = 10.0


def build_realm(n_users: int, seed: int = SEED) -> Realm:
    net = Network(seed=seed)
    realm = Realm(net, REALM, seed=b"repl-scale", n_slaves=N_SLAVES)
    for i in range(n_users):
        realm.add_user(f"user{i:05d}", f"pw{i}")
    return realm


def store_digest(db) -> str:
    h = hashlib.sha256()
    for key, value in db.store.items():
        h.update(key.encode())
        h.update(value)
    return h.hexdigest()


def assert_converged(realm: Realm) -> str:
    digest = store_digest(realm.db)
    for slave in realm.slaves:
        assert store_digest(slave.db) == digest
    return digest


def wire_bytes(realm: Realm) -> float:
    return realm.net.metrics.total("kprop.bytes_total")


def churn(realm: Realm, n_users: int, count: int, round_no: int) -> None:
    """Touch ``count`` distinct principals (password changes — the
    dominant real mutation)."""
    for i in range(count):
        idx = (round_no * count + i) % n_users
        realm.db.change_key(
            Principal(f"user{idx:05d}", "", REALM),
            new_password=f"new-{round_no}-{i}",
        )


def measure_size(n_users: int, seed: int = SEED) -> dict:
    realm = build_realm(n_users, seed=seed)

    # Baseline: one forced full-dump round (the paper's only mode).
    before = wire_bytes(realm)
    full_result = realm.propagate(full=True)
    assert full_result.all_ok and full_result.fulls == N_SLAVES
    full_bytes = wire_bytes(realm) - before
    assert_converged(realm)

    # Low churn: a trickle of changes, then a delta round.
    churn(realm, n_users, LOW_CHURN, round_no=1)
    before = wire_bytes(realm)
    low_result = realm.propagate()
    assert low_result.all_ok and low_result.deltas == N_SLAVES
    low_bytes = wire_bytes(realm) - before
    digest = assert_converged(realm)

    # High churn: a mass change (e.g. semester password resets).
    high_count = max(LOW_CHURN, int(n_users * HIGH_CHURN_FRACTION))
    churn(realm, n_users, high_count, round_no=2)
    before = wire_bytes(realm)
    high_result = realm.propagate()
    assert high_result.all_ok and high_result.deltas == N_SLAVES
    high_bytes = wire_bytes(realm) - before
    assert_converged(realm)

    return {
        "principals": n_users,
        "slaves": N_SLAVES,
        "full_bytes": int(full_bytes),
        "low_churn_changes": LOW_CHURN,
        "low_churn_delta_bytes": int(low_bytes),
        "low_churn_ratio": round(full_bytes / low_bytes, 1),
        "high_churn_changes": high_count,
        "high_churn_delta_bytes": int(high_bytes),
        "high_churn_ratio": round(full_bytes / high_bytes, 1),
        "digest": digest,
    }


def test_bench_replication_scale():
    rows = [measure_size(n) for n in SIZES]

    print("\nExp RS — delta vs. full-dump propagation "
          f"({N_SLAVES} slaves, gate >= {BYTES_GATE:.0f}x at low churn)")
    print(f"  {'principals':>10}  {'full':>12}  {'delta(low)':>12}  "
          f"{'ratio':>8}  {'delta(high)':>12}  {'ratio':>8}")
    for row in rows:
        print(f"  {row['principals']:>10}  {row['full_bytes']:>12}  "
              f"{row['low_churn_delta_bytes']:>12}  "
              f"{row['low_churn_ratio']:>7.1f}x  "
              f"{row['high_churn_delta_bytes']:>12}  "
              f"{row['high_churn_ratio']:>7.1f}x")

    # The headline gate, at the largest size and at every other one.
    for row in rows:
        assert row["low_churn_ratio"] >= BYTES_GATE, (
            f"{row['principals']} principals: delta moved only "
            f"{row['low_churn_ratio']}x fewer bytes (gate {BYTES_GATE}x)"
        )
    # Even a mass change never costs more than the dump it replaces.
    for row in rows:
        assert row["high_churn_delta_bytes"] <= row["full_bytes"]

    # Same-seed determinism: identical digests and byte counts.
    rerun = measure_size(SIZES[0])
    assert rerun == rows[0], "same seed must reproduce the same run exactly"
    print("  same-seed rerun at "
          f"{SIZES[0]} principals: digests and byte counts identical")

    realm = build_realm(SIZES[0])  # fresh registry for the artifact snapshot
    realm.propagate()
    write_bench_artifact(
        realm.net.metrics,
        ARTIFACT,
        now=realm.net.clock.now(),
        seed=SEED,
        extra={
            "experiment": "RS",
            "gates": {"low_churn_bytes_min_ratio": BYTES_GATE},
            "sweep": rows,
        },
    )
    print(f"  artifact: {ARTIFACT.name}")
