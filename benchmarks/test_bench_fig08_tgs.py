"""Exp F8 — Figure 8: getting a server ticket (the TGS exchange).

Times one TGS exchange and regenerates the figure's rules: no password
re-entry, and the new ticket's lifetime is min(remaining TGT life,
service default).
"""

from repro.crypto import string_to_key

from benchmarks.bench_util import (
    logged_in_workstation,
    rlogin_principal,
    small_realm,
)


def test_bench_fig8_tgs_exchange(benchmark):
    realm = small_realm()
    service = rlogin_principal()
    ws = logged_in_workstation(realm)
    tgt = ws.client.cache.tgt(realm.name)

    def tgs_exchange():
        return ws.client._tgs_exchange(realm.name, tgt, service, None)

    cred = benchmark(tgs_exchange)
    assert cred.service == service

    # No password material in any TGS traffic.
    captured = []
    realm.net.add_tap(lambda d: captured.append(d.payload))
    ws.client._tgs_exchange(realm.name, tgt, service, None)
    user_key = string_to_key("jis-pw").key_bytes
    assert not any(user_key in p for p in captured)
    print("\nFigure 8 — TGS exchange: no password re-entry "
          "(reply sealed in the TGT session key)")

    # The lifetime rule, swept across TGT ages.
    print("  lifetime = min(remaining TGT life, service default):")
    realm2 = small_realm(seed=b"fig8-sweep")
    ws2 = logged_in_workstation(realm2)
    last = 0.0
    for target_hours in (1, 4, 7):
        realm2.net.clock.advance((target_hours - last) * 3600.0)
        last = target_hours
        ws2.client.cache._creds.pop(str(rlogin_principal()), None)
        cred = ws2.client.get_credential(rlogin_principal(), life=9 * 3600.0)
        remaining_tgt = 8.0 - target_hours
        print(f"    TGT age {target_hours} h -> service ticket life "
              f"{cred.life / 3600:.1f} h (expected {remaining_tgt:.1f})")
        assert abs(cred.life - remaining_tgt * 3600.0) < 1.0
