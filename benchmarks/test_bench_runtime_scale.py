"""Exp RT — the event runtime at scale: KDC worker-pool scaling.

Section 9's deployment question, asked of the new runtime: when 9 AM
hits a cluster and every workstation fires its AS request into a
fraction of a second, how does KDC throughput scale with the service
loop's worker pool?  The sweep drives an open-loop
:meth:`repro.workload.AthenaWorkload.login_burst` (arrivals outpace
service — queueing, batching, and admission-control shedding are all in
play) across workstation counts and worker counts.

Shape to hold: growing the pool 1 → 4 workers buys at least 1.5x
completed-login throughput at every burst size, and one seed reproduces
the same burst — same outcomes, same completion instants — bit for bit
(the ``digest`` equality).

Results land in ``BENCH_RUNTIME_SCALE.json`` (with run history).
"""

from pathlib import Path

from repro.netsim import Network
from repro.realm import Realm
from repro.runtime import WorkQueueConfig
from repro.workload import AthenaWorkload

from benchmarks.bench_util import REALM, write_bench_artifact

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_RUNTIME_SCALE.json"

SEED = 1988
N_USERS = 256
#: Burst sizes: a cluster and a whole building (sampled Section 9 scale).
STATION_COUNTS = (64, 128)
WORKER_COUNTS = (1, 2, 4)
#: All arrivals land inside this window (seconds) — far faster than one
#: worker can serve them, so the queue genuinely builds.
BURST_WINDOW = 0.05


def run_burst(n_stations: int, workers: int):
    """One fresh world per configuration; returns the BurstResult and
    the network (for the artifact's metrics snapshot)."""
    net = Network(seed=SEED)
    realm = Realm(
        net, REALM, seed=b"runtime-scale",
        kdc_queue=WorkQueueConfig(workers=workers),
    )
    workload = AthenaWorkload(realm, n_users=N_USERS, n_services=0, seed=SEED)
    stations = workload.workstations(n_stations, spread_kdcs=False)
    result = workload.login_burst(stations, window=BURST_WINDOW)
    return result, net


def test_bench_runtime_worker_scaling(benchmark):
    sweep = {}
    last_net = None
    print("\nExp RT — login-burst throughput (completed logins / sim-second):")
    for n_stations in STATION_COUNTS:
        for workers in WORKER_COUNTS:
            result, net = run_burst(n_stations, workers)
            sweep[(n_stations, workers)] = result
            last_net = net
            print(
                f"  {n_stations:4d} stations x {workers} worker(s): "
                f"{result.completed:4d} completed, "
                f"{result.overloaded:3d} shed, "
                f"makespan {result.makespan * 1e3:7.2f} ms, "
                f"throughput {result.throughput:8.1f}/s"
            )

    # Every posted request is accounted for, whatever its fate.
    for (n_stations, _), result in sweep.items():
        assert result.posted == n_stations
        assert (
            result.completed + result.overloaded + result.failed
            == result.posted
        )
        assert result.completed > 0

    # The tentpole acceptance gate: 1 -> 4 workers buys >= 1.5x
    # throughput at every burst size.
    speedups = {}
    for n_stations in STATION_COUNTS:
        base = sweep[(n_stations, 1)].throughput
        quad = sweep[(n_stations, 4)].throughput
        speedups[n_stations] = quad / base
        print(f"  {n_stations:4d} stations: 1->4 worker speedup "
              f"{speedups[n_stations]:.2f}x")
        assert quad >= 1.5 * base, (
            f"{n_stations} stations: 4 workers gave only "
            f"{quad / base:.2f}x over 1 worker"
        )

    # Timing hook (wall-clock cost of one mid-size configuration).
    benchmark.pedantic(
        lambda: run_burst(STATION_COUNTS[0], 2), rounds=2, iterations=1
    )

    snap = write_bench_artifact(
        last_net.metrics,
        ARTIFACT,
        now=last_net.clock.now(),
        seed=SEED,
        extra={
            "experiment": "RT",
            "burst_window_s": BURST_WINDOW,
            "results": {
                f"{n}x{w}": {
                    "completed": r.completed,
                    "overloaded": r.overloaded,
                    "failed": r.failed,
                    "makespan_s": round(r.makespan, 6),
                    "throughput_per_s": round(r.throughput, 1),
                    "digest": r.digest,
                }
                for (n, w), r in sweep.items()
            },
            "speedup_1_to_4": {
                str(n): round(s, 3) for n, s in speedups.items()
            },
        },
    )
    counter_names = {e["name"] for e in snap["counters"]}
    assert {"kdc.queue.batches_total", "runtime.events_run_total"} <= counter_names
    print(f"  artifact: {ARTIFACT.name}")


def test_bench_runtime_same_seed_bit_identical():
    """Determinism gate: repeating one configuration with one seed
    reproduces the burst exactly — outcome counts and the
    completion-instant digest both match."""
    a, _ = run_burst(STATION_COUNTS[-1], 4)
    b, _ = run_burst(STATION_COUNTS[-1], 4)
    assert a.digest == b.digest
    assert (a.completed, a.overloaded, a.failed) == (
        b.completed, b.overloaded, b.failed
    )
    assert a.makespan == b.makespan
