"""Exp F3 — Figure 3: the ticket {s, c, addr, timestamp, life, K_s,c}K_s.

Times the seal/unseal cycle (the KDC's and end-server's per-request
crypto work) and re-verifies the figure's security content: only the
named server's key opens a ticket, and no tampering survives.
"""

import pytest

from repro.core import KerberosError, Principal, Ticket, seal_ticket, unseal_ticket
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

GEN = KeyGenerator(seed=b"fig3")
SERVER_KEY = GEN.session_key()
SESSION_KEY = GEN.session_key()

TICKET = Ticket(
    server=Principal("rlogin", "priam", "ATHENA.MIT.EDU"),
    client=Principal("jis", "", "ATHENA.MIT.EDU"),
    address=IPAddress("18.72.0.100").as_int,
    timestamp=1000.0,
    life=8 * 3600.0,
    session_key=SESSION_KEY.key_bytes,
)


def test_bench_fig3_seal_unseal(benchmark):
    def cycle():
        blob = seal_ticket(TICKET, SERVER_KEY)
        return unseal_ticket(blob, SERVER_KEY)

    opened = benchmark(cycle)
    assert opened == TICKET

    blob = seal_ticket(TICKET, SERVER_KEY)
    print(f"\nFigure 3 — sealed ticket is {len(blob)} bytes on the wire")

    # Only the holder of K_s can open it.
    with pytest.raises(KerberosError):
        unseal_ticket(blob, GEN.session_key())
    # Any modification is detected (PCBC propagation + framing).
    for i in range(0, len(blob), 8):
        tampered = bytearray(blob)
        tampered[i] ^= 1
        with pytest.raises(KerberosError):
            unseal_ticket(bytes(tampered), SERVER_KEY)
    print("  wrong-key open: rejected;  all single-bit tampers: rejected")
