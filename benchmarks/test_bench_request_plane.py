"""Exp RP — the batched request plane throughput gate.

ISSUE 8 vectorizes the KDC pipeline from datagram to DES: batch frame
decode (zero-copy views), one memoized database pass, interleaved
two-lane DES over independent seals, skeleton-cached ticket prefixes,
and in-place batch encoding.  This benchmark gates the result: the
batch plane must serve KDC requests at ≥``RP_GATE``× the rate of the
classic one-datagram-at-a-time plane, measured open-loop in the same
run (A/B interleaved, min of rounds — the BENCH_PERF_HOTPATH
methodology).

The baseline leg drives the same Fig 5→6 flow the HP artifact records
(whose req/s figure — 547.3 on the recording machine — is the
cross-artifact anchor); the batch leg drives pre-framed AS_REQ buffers
straight into :meth:`KerberosServer.process_request_buffer`.  Both
figures are requests/second on one simulated core: the netsim world is
single-threaded, so multiply by core count for a fleet estimate.

Before any timing, the suite asserts the two planes are bit-identical
with *every cache disabled* — the speedup must come from the pipeline,
never from answers drifting.

Methodology and how to read the artifact: ``docs/PERFORMANCE.md``.
"""

import time
from pathlib import Path

import pytest

from repro.core import krb_mk_req, krb_rd_req
from repro.core.messages import AsRequest, MessageType, encode_message
from repro.crypto import keycache
from repro.crypto.modes import interleaved_blocks
from repro.encode import pack_frames
from repro.principal import Principal, tgs_principal

from benchmarks.bench_util import (
    REALM,
    rlogin_principal,
    small_realm,
    write_bench_artifact,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_REQUEST_PLANE.json"

#: Acceptance floor (ISSUE 8): batch-plane vs single-plane KDC req/s.
RP_GATE = 5.0

BATCH = 128         #: AS requests per framed buffer (wide-lane DES)
BATCH_ITERS = 4     #: buffers served per timed round
E2E_ITERS = 12      #: Fig 5→6 flows per baseline round (2 KDC reqs each)
ROUNDS = 5
SEED = b"request-plane"


def _as_wires(n, realm):
    return [
        encode_message(MessageType.AS_REQ, AsRequest(
            client=Principal("jis", "", REALM),
            service=tgs_principal(REALM),
            requested_life=3600.0,
            timestamp=float(i),
        ))
        for i in range(n)
    ]


class _Datagram:
    def __init__(self, payload, src):
        self.payload = payload
        self.src = src
        self.trace = None


def _min_of(run, rounds):
    return min(run() for _ in range(rounds))


# -- correctness pre-flight --------------------------------------------------


def _assert_planes_bit_identical():
    """Cache-off A/B: same-seed realms, same wires, byte-equal replies."""
    realm_a = small_realm(seed=SEED)
    realm_b = small_realm(seed=SEED)
    src_a = realm_a.workstation().host.address
    src_b = realm_b.workstation().host.address
    wires = _as_wires(8, realm_a)
    with keycache.caches_disabled():
        singles = [
            realm_a.kdc._serve(_Datagram(w, src_a)) for w in wires
        ]
        batched = realm_b.kdc.process_request_buffer(
            pack_frames(wires), src_b
        )
    assert [bytes(r) for r in batched] == singles, (
        "batch plane diverged from single plane with caches disabled"
    )


# -- the two legs ------------------------------------------------------------


def _baseline_runner():
    """The HP e2e flow: kinit + TGS + AP per iteration (2 KDC requests)."""
    realm = small_realm(seed=SEED)
    ws = realm.workstation()
    service = rlogin_principal()
    service_key = realm.service_key(service)

    def flow():
        ws.client.kdestroy()
        ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(service)
        now = realm.net.clock.now()
        request = krb_mk_req(
            cred.ticket, cred.session_key, ws.client.principal,
            ws.host.address, now=now,
        )
        krb_rd_req(request, service, service_key, ws.host.address, now)

    flow()  # warm-up

    def run():
        t0 = time.perf_counter()
        for _ in range(E2E_ITERS):
            flow()
        return time.perf_counter() - t0

    return run


def _batch_runner():
    """Pre-framed AS_REQ buffers straight into the batch plane."""
    realm = small_realm(seed=SEED)
    src = realm.workstation().host.address
    buffer = pack_frames(_as_wires(BATCH, realm))
    realm.kdc.process_request_buffer(buffer, src)  # warm skeletons

    def run():
        t0 = time.perf_counter()
        for _ in range(BATCH_ITERS):
            realm.kdc.process_request_buffer(buffer, src)
        return time.perf_counter() - t0

    return run, realm


@pytest.mark.perf
def test_bench_request_plane_gate():
    _assert_planes_bit_identical()

    run_base = _baseline_runner()
    run_batch, realm = _batch_runner()

    # Interleave the legs so machine drift hits both alike.
    base_times, batch_times = [], []
    for _ in range(ROUNDS):
        base_times.append(run_base())
        batch_times.append(run_batch())
    base_s, batch_s = min(base_times), min(batch_times)

    base_rps = 2 * E2E_ITERS / base_s
    batch_rps = BATCH * BATCH_ITERS / batch_s
    ratio = batch_rps / base_rps

    # One escalation step on a shared machine: re-measure with doubled
    # rounds before declaring a regression.
    if ratio < RP_GATE:
        base_s = min(base_s, _min_of(run_base, 2 * ROUNDS))
        batch_s = min(batch_s, _min_of(run_batch, 2 * ROUNDS))
        base_rps = 2 * E2E_ITERS / base_s
        batch_rps = BATCH * BATCH_ITERS / batch_s
        ratio = batch_rps / base_rps

    print(f"\nRequest plane (min of {ROUNDS} interleaved rounds, "
          f"1 simulated core):")
    print(f"  single plane (Fig 5→6 flows): {base_rps:.0f} req/s")
    print(f"  batch plane ({BATCH}-req buffers): {batch_rps:.0f} req/s")
    print(f"  ratio: {ratio:.2f}x  (gate ≥{RP_GATE}x)")

    skel = keycache.skeleton_stats()
    snap = write_bench_artifact(
        realm.net.metrics,
        ARTIFACT,
        now=realm.net.clock.now(),
        seed=SEED,
        extra={
            "experiment": "RP",
            "gates": {"batch_vs_single_min": RP_GATE},
            "hp_artifact_baseline_req_per_s": 547.3,
            "single_plane": {
                "flows": E2E_ITERS,
                "min_s": base_s,
                "req_per_s": round(base_rps, 1),
            },
            "batch_plane": {
                "batch_size": BATCH,
                "buffers_per_round": BATCH_ITERS,
                "min_s": batch_s,
                "req_per_s": round(batch_rps, 1),
            },
            "ratio": round(ratio, 3),
            "skeleton_cache": {"hit": skel["hit"], "miss": skel["miss"]},
        },
    )
    print(f"  artifact: {ARTIFACT.name} "
          f"({len(snap['history'])} run(s) in history)")

    assert ratio >= RP_GATE, (
        f"batch-plane speedup {ratio:.2f}x fell below the "
        f"{RP_GATE}x acceptance floor "
        f"({base_rps:.0f} → {batch_rps:.0f} req/s)"
    )
    # The pipeline actually engaged: interleaved lanes and skeletons.
    assert interleaved_blocks() > 0
    assert skel["hit"] > 0
    assert snap["history"][-1]["summary"]["experiment"] == "RP"
