"""Exp P1 — preauthentication ablation (extension beyond the paper).

The 1988 AS answers anyone's request for anyone's initial ticket — which
lets an attacker *actively harvest* offline-guessing material for every
user in the realm.  Preauthentication (the post-paper fix, implemented
here as an opt-in extension) makes the KDC refuse such probes.

Measured: the harvest rate of an active probing attacker against a realm
with preauth off vs on, and the honest cost — one extra KDC round trip
on the first login.
"""

from repro.database.schema import ATTR_REQUIRE_PREAUTH
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.threat import active_as_probe

from benchmarks.bench_util import REALM

N_USERS = 30


def build_realm(preauth: bool, seed: bytes) -> Realm:
    net = Network()
    realm = Realm(net, REALM, seed=seed)
    attributes = ATTR_REQUIRE_PREAUTH if preauth else 0
    for i in range(N_USERS):
        realm.db.add_principal(
            Principal(f"user{i:02d}", "", REALM),
            password=f"pw-{i}",
            attributes=attributes,
        )
    return realm


def harvest(realm: Realm) -> int:
    """The attacker probes every user; returns replies harvested."""
    attacker = realm.net.add_host("harvester")
    got = 0
    for i in range(N_USERS):
        reply = active_as_probe(
            attacker, realm.master_host.address,
            Principal(f"user{i:02d}", "", REALM), REALM,
        )
        if reply is not None:
            got += 1
    return got


def test_bench_preauth_harvest_rates(benchmark):
    open_realm = build_realm(preauth=False, seed=b"p1-open")
    hard_realm = build_realm(preauth=True, seed=b"p1-hard")

    results = benchmark.pedantic(
        lambda: (harvest(open_realm), harvest(hard_realm)), rounds=1
    )
    open_harvest, hard_harvest = results

    print(f"\nPreauth ablation — active probe against {N_USERS} users:")
    print(f"  1988 design (no preauth): {open_harvest}/{N_USERS} "
          f"guessing targets harvested")
    print(f"  preauth required        : {hard_harvest}/{N_USERS}")
    assert open_harvest == N_USERS
    assert hard_harvest == 0


def test_bench_preauth_login_cost(benchmark):
    """What hardening costs the legitimate user: one extra round trip on
    the first (unnegotiated) login."""
    realm = build_realm(preauth=True, seed=b"p1-cost")
    ws = realm.workstation()

    def login():
        ws.client.kdestroy()
        return ws.client.kinit("user00", "pw-0")

    tgt = benchmark(login)
    assert tgt is not None

    realm.net.reset_stats()
    ws.client.kdestroy()
    ws.client.kinit("user00", "pw-0")
    print(f"\n  KDC round trips per preauth login: "
          f"{realm.net.stats['port:750']} (vs 1 without)")
    assert realm.net.stats["port:750"] == 2
