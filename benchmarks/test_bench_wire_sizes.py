"""Exp F9 (supplement) — bytes on the wire per protocol message.

The paper ran over a campus network of diskless-ish workstations and
VAXes; message sizes mattered.  This bench regenerates the size table
for every exchange in Figure 9 and times the encode path.
"""

from repro.core import (
    ApRequest,
    AsRequest,
    KdcReply,
    KdcReplyBody,
    MessageType,
    Principal,
    TgsRequest,
    Ticket,
    encode_message,
    seal_ticket,
    tgs_principal,
)
from repro.core.authenticator import build_authenticator
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

REALM = "ATHENA.MIT.EDU"
GEN = KeyGenerator(seed=b"sizes")
SESSION = GEN.session_key()
SERVER = GEN.session_key()
USERKEY = GEN.session_key()

CLIENT = Principal("jis", "", REALM)
SERVICE = Principal("rlogin", "priam", REALM)
ADDR = IPAddress("18.72.0.100")


def build_all():
    ticket = seal_ticket(
        Ticket(server=SERVICE, client=CLIENT, address=ADDR.as_int,
               timestamp=0.0, life=28800.0, session_key=SESSION.key_bytes),
        SERVER,
    )
    auth = build_authenticator(CLIENT, ADDR, 0.0, SESSION)
    body = KdcReplyBody(
        session_key=SESSION.key_bytes, server=SERVICE, issue_time=0.0,
        life=28800.0, kvno=1, request_timestamp=0.0, ticket=ticket,
    )
    messages = {
        "AS_REQ  (Fig 5 ->)": encode_message(
            MessageType.AS_REQ,
            AsRequest(client=CLIENT, service=tgs_principal(REALM),
                      requested_life=28800.0, timestamp=0.0),
        ),
        "AS_REP  (Fig 5 <-)": encode_message(
            MessageType.AS_REP, KdcReply.build(CLIENT, body, USERKEY)
        ),
        "TGS_REQ (Fig 8 ->)": encode_message(
            MessageType.TGS_REQ,
            TgsRequest(service=SERVICE, requested_life=28800.0, timestamp=0.0,
                       tgt_realm=REALM, tgt=ticket, authenticator=auth),
        ),
        "TGS_REP (Fig 8 <-)": encode_message(
            MessageType.TGS_REP, KdcReply.build(CLIENT, body, SESSION)
        ),
        "AP_REQ  (Fig 6 ->)": encode_message(
            MessageType.AP_REQ,
            ApRequest(ticket=ticket, authenticator=auth, mutual=True, kvno=1),
        ),
    }
    return messages, ticket, auth


def test_bench_wire_sizes(benchmark):
    messages, ticket, auth = benchmark(build_all)

    print("\nBytes on the wire, per Figure 9 message:")
    print(f"  {'sealed ticket':<20} {len(ticket):>5} B")
    print(f"  {'authenticator':<20} {len(auth):>5} B")
    total = 0
    for name, wire in messages.items():
        print(f"  {name:<20} {len(wire):>5} B")
        total += len(wire)
    print(f"  {'full login+service':<20} {total:>5} B total")

    # Everything fits comfortably in single 1500-byte datagrams — a
    # design property of the original protocol.
    assert all(len(w) < 1500 for w in messages.values())
