"""Exp F2 — Figure 2: Kerberos names.

Regenerates the figure: the four example names must parse into their
components and round-trip; the benchmark times the parser on the
figure's own corpus (naming is on every request's hot path).
"""

from repro.principal import Principal

FIGURE_2 = [
    ("bcn", ("bcn", "", "")),
    ("treese.root", ("treese", "root", "")),
    ("jis@LCS.MIT.EDU", ("jis", "", "LCS.MIT.EDU")),
    ("rlogin.priam@ATHENA.MIT.EDU", ("rlogin", "priam", "ATHENA.MIT.EDU")),
]


def test_bench_fig2_name_parsing(benchmark):
    def parse_figure_corpus():
        return [Principal.parse(text) for text, _ in FIGURE_2]

    parsed = benchmark(parse_figure_corpus)

    # The figure's rows, regenerated and checked.
    print("\nFigure 2 — Kerberos Names")
    for principal, (text, parts) in zip(parsed, FIGURE_2):
        print(f"  {text:<32} -> name={principal.name!r} "
              f"instance={principal.instance!r} realm={principal.realm!r}")
        assert (principal.name, principal.instance, principal.realm) == parts
        assert str(principal) == text  # round-trips exactly
