"""Shared builders for the benchmark harness.

Each experiment benchmark (one file per figure/claim in DESIGN.md's
per-experiment index) builds its world through these helpers so the
configurations stay comparable across experiments.

:func:`write_bench_artifact` is the standard way to emit a
``BENCH_*.json`` file: the current metrics snapshot plus an append-only
``history`` list (commit, seed, summary numbers per run), so artifacts
record a trajectory across commits instead of a single overwritten
snapshot.
"""

import json
import subprocess
from pathlib import Path

from repro.core import KerberosClient, Principal
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"

#: Runs kept in a BENCH artifact's history list.
HISTORY_LIMIT = 200

_REPO_ROOT = Path(__file__).resolve().parents[1]


def git_commit() -> str:
    """Short hash of the checked-out commit, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def load_history(path) -> list:
    """The ``history`` list of an existing artifact ([] if absent/corrupt)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    history = data.get("history", [])
    return history if isinstance(history, list) else []


def write_bench_artifact(
    registry, path, now, extra=None, seed=None
) -> dict:
    """Write a ``BENCH_*.json`` artifact with run history appended.

    Same format as :func:`repro.obs.write_json_snapshot` (metrics
    snapshot + ``bench`` summary), plus a ``history`` list carrying one
    entry per recorded run: the commit, the seed, and the run's summary
    numbers.  History from the existing file is preserved (bounded at
    ``HISTORY_LIMIT`` entries), making the artifact a trajectory.
    """
    history = load_history(path)
    history.append({
        "commit": git_commit(),
        "seed": repr(seed) if isinstance(seed, bytes) else seed,
        "clock": now,
        "summary": dict(extra or {}),
    })
    history = history[-HISTORY_LIMIT:]
    snap = registry.snapshot(now=now)
    if extra:
        snap["bench"] = dict(extra)
    snap["history"] = history
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snap


def small_realm(n_slaves: int = 0, seed: bytes = b"bench") -> Realm:
    """A realm with one user (jis) and one service (rlogin.priam)."""
    net = Network()
    realm = Realm(net, REALM, seed=seed, n_slaves=n_slaves)
    realm.add_user("jis", "jis-pw")
    realm.add_service("rlogin", "priam")
    if n_slaves:
        realm.propagate()
    return realm


def logged_in_workstation(realm: Realm):
    ws = realm.workstation()
    ws.client.kinit("jis", "jis-pw")
    return ws


def rlogin_principal() -> Principal:
    return Principal("rlogin", "priam", REALM)
