"""Shared builders for the benchmark harness.

Each experiment benchmark (one file per figure/claim in DESIGN.md's
per-experiment index) builds its world through these helpers so the
configurations stay comparable across experiments.
"""

from repro.core import KerberosClient, Principal
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


def small_realm(n_slaves: int = 0, seed: bytes = b"bench") -> Realm:
    """A realm with one user (jis) and one service (rlogin.priam)."""
    net = Network()
    realm = Realm(net, REALM, seed=seed, n_slaves=n_slaves)
    realm.add_user("jis", "jis-pw")
    realm.add_service("rlogin", "priam")
    if n_slaves:
        realm.propagate()
    return realm


def logged_in_workstation(realm: Realm):
    ws = realm.workstation()
    ws.client.kinit("jis", "jis-pw")
    return ws


def rlogin_principal() -> Principal:
    return Principal("rlogin", "priam", REALM)
