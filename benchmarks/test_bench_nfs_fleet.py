"""Exp NF — the appendix's performance argument at fleet scale.

The appendix's envelope calculation compared one fileserver under the
shipped mount-time mapping against the rejected per-RPC Kerberos
design.  The fleet PR re-runs that comparison at Athena scale: a
4-server :class:`~repro.realm.nfs_fleet.NfsFleet` under one declarative
config, every server doing real work, with two gates:

* **the appendix's verdict holds fleet-wide**: the same operation
  battery costs strictly more wall-clock under ``KERBEROS_RPC`` (full
  software-DES ``krb_mk_req``/``krb_rd_req`` per transaction) than
  under ``MAPPED`` (one handshake per mount, then a hash lookup);
* **determinism**: the same seed reproduces the same outcome digest
  byte for byte — outcomes, bytes served, and sim timestamps are a
  pure function of ``(seed, config)``; only wall-clock may differ.

Writes ``BENCH_NFS_FLEET.json`` (snapshot + per-run history).
"""

import hashlib
import time
from pathlib import Path

import pytest

from repro.apps.nfs import AuthMode, NfsCredential, NfsExportConfig
from repro.netsim import Network
from repro.realm import NfsFleet, NfsUserSpec, Realm

from benchmarks.bench_util import REALM, write_bench_artifact

pytestmark = [pytest.mark.perf, pytest.mark.nfs]

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_NFS_FLEET.json"

#: The ISSUE's floor: the comparison must run at fleet scale.
N_SERVERS = 4
#: Two stations per server keeps every kernel map busy.
N_STATIONS = 8
#: Operations per station per run (reads dominate, as on Athena).
N_OPS = 40
SEED = 1988

_cells = {}


def build_cell(mode: AuthMode, seed: int = SEED):
    """A fresh fleet world: N_SERVERS servers, one station per user,
    everyone's private 1 KiB file seeded on their assigned server."""
    net = Network(seed=seed, latency=0.01)
    realm = Realm(net, REALM, seed=seed.to_bytes(8, "big"))
    specs = []
    for i in range(N_STATIONS):
        realm.add_user(f"user{i}", f"pw-{i}")
        specs.append(NfsUserSpec(f"user{i}", 1000 + i))
    fleet = NfsFleet(
        realm,
        n_servers=N_SERVERS,
        config=NfsExportConfig(auth_mode=mode),
        users=specs,
    )
    stations = []
    for i, spec in enumerate(specs):
        site = fleet[i % N_SERVERS]
        cred = NfsCredential(uid=spec.uid, gids=spec.gids)
        site.server.fs.create(f"/u/{spec.username}/data", cred)
        site.server.fs.write(f"/u/{spec.username}/data", b"x" * 1024, cred)
        ws = realm.workstation()
        ws.client.kinit(spec.username, f"pw-{i}")
        client = fleet.client(ws, i % N_SERVERS, uid_on_client=spec.uid)
        if mode == AuthMode.MAPPED:
            client.kerberos_mount(ws.client, site.mount_service)
        elif mode == AuthMode.KERBEROS_RPC:
            client.enable_per_rpc_kerberos(ws.client, site.nfs_service)
        stations.append((client, spec.username))
    return net, fleet, stations


def cell(mode: AuthMode):
    if mode not in _cells:
        _cells[mode] = build_cell(mode)
    return _cells[mode]


def run_workload(net, stations, n_ops: int = N_OPS):
    """The battery, round-robin across stations; returns (wall-clock
    seconds, sha256 outcome digest).  The digest folds in station, op,
    served bytes, and the sim clock — everything seed-determined — and
    deliberately excludes wall time."""
    fingerprint = hashlib.sha256()
    t0 = time.perf_counter()
    for i in range(n_ops):
        for client, username in stations:
            data = client.read(f"/u/{username}/data")
            fingerprint.update(
                f"{username}:read:{len(data)}:{net.clock.now()!r};".encode()
            )
            if i % 10 == 0:
                written = client.write(f"/u/{username}/data", data)
                fingerprint.update(
                    f"{username}:write:{written}:{net.clock.now()!r};".encode()
                )
    return time.perf_counter() - t0, fingerprint.hexdigest()


def test_bench_fleet_mapped_vs_per_rpc():
    """The headline: the rejected design is strictly slower, fleet-wide."""
    results, digests, lookups = {}, {}, {}
    for mode in (AuthMode.MAPPED, AuthMode.KERBEROS_RPC):
        net, fleet, stations = cell(mode)
        run_workload(net, stations, n_ops=5)  # warm up
        results[mode], digests[mode] = run_workload(net, stations)
        # Every server in the fleet did real work.
        for site in fleet.servers:
            assert site.server.ops["READ"] > 0, (
                f"{site.name} served no reads under {mode.value}"
            )
        lookups[mode] = sum(
            site.server.credmap.lookups for site in fleet.servers
        )
    mapped, per_rpc = results[AuthMode.MAPPED], results[AuthMode.KERBEROS_RPC]
    _, fleet_m, _ = cell(AuthMode.MAPPED)
    verifications = sum(
        site.server.kerberos_verifications
        for site in cell(AuthMode.KERBEROS_RPC)[1].servers
    )
    print(f"\nExp NF — {N_STATIONS * N_OPS} ops across {N_SERVERS} servers:")
    print(f"  mount-time mapping : {1e3 * mapped:8.1f} ms wall "
          f"({lookups[AuthMode.MAPPED]} kernel-map lookups)")
    print(f"  per-RPC Kerberos   : {1e3 * per_rpc:8.1f} ms wall "
          f"({verifications} DES verifications)")
    print(f"  slowdown           : {per_rpc / mapped:6.1f}x")
    assert per_rpc > mapped, (
        "per-RPC Kerberos must cost more than the mapping design "
        f"(got {per_rpc:.4f}s vs {mapped:.4f}s)"
    )
    test_bench_fleet_mapped_vs_per_rpc.result = (results, digests)


def test_bench_same_seed_byte_identical():
    """Two fresh same-seed cells per mode: identical digests."""
    reproduced = {}
    for mode in (AuthMode.MAPPED, AuthMode.KERBEROS_RPC):
        net_a, _fleet_a, stations_a = build_cell(mode)
        net_b, _fleet_b, stations_b = build_cell(mode)
        _, digest_a = run_workload(net_a, stations_a, n_ops=10)
        _, digest_b = run_workload(net_b, stations_b, n_ops=10)
        assert digest_a == digest_b, (
            f"same seed, different digests under {mode.value}"
        )
        reproduced[mode.value] = digest_a
    print("\nExp NF — determinism: "
          + ", ".join(f"{m} {d[:16]}…" for m, d in reproduced.items()))
    test_bench_same_seed_byte_identical.result = reproduced


def test_bench_write_artifact():
    results, digests = getattr(
        test_bench_fleet_mapped_vs_per_rpc, "result", ({}, {})
    )
    reproduced = getattr(test_bench_same_seed_byte_identical, "result", {})
    mapped = results.get(AuthMode.MAPPED, 0.0)
    per_rpc = results.get(AuthMode.KERBEROS_RPC, 0.0)
    net, _fleet, _stations = cell(AuthMode.MAPPED)
    summary = {
        "n_servers": N_SERVERS,
        "n_stations": N_STATIONS,
        "ops_per_station": N_OPS,
        "mapped_wall_s": round(mapped, 4),
        "per_rpc_wall_s": round(per_rpc, 4),
        "per_rpc_slowdown": (
            round(per_rpc / mapped, 1) if mapped else 0.0
        ),
        "workload_digests": {
            mode.value: digest for mode, digest in digests.items()
        },
        "same_seed_digests": reproduced,
    }
    write_bench_artifact(
        net.metrics, ARTIFACT, now=net.clock.now(), extra=summary,
        seed=SEED,
    )
    print(f"\nwrote {ARTIFACT.name}: {summary}")
