"""Exp F11 — Figure 11: administration requests reach the master only.

Regenerates the figure's asymmetry: with the master down, password
changes fail while authentication continues; the KDBM cannot even be
started against a slave's read-only copy.
"""

import pytest

from repro.database import ReadOnlyDatabase
from repro.kdbm import KdbmClient, KdbmServer
from repro.netsim import Unreachable
from repro.principal import Principal

from benchmarks.bench_util import REALM, small_realm


def test_bench_fig11_admin_roundtrip(benchmark):
    realm = small_realm(n_slaves=1)
    realm.add_admin("jis", "jis-admin-pw")
    realm.propagate()
    ws = realm.workstation()
    kdbm = KdbmClient(ws.client, realm.master_host.address)
    admin = Principal("jis", "admin", REALM)

    names = iter(range(10**9))

    def add_principal_via_kdbm():
        return kdbm.add_principal(
            admin, "jis-admin-pw", Principal(f"u{next(names)}", "", REALM), "pw"
        )

    result = benchmark(add_principal_via_kdbm)
    assert "added" in result

    print("\nFigure 11 — master-only administration:")
    with pytest.raises(ReadOnlyDatabase):
        KdbmServer(realm.slaves[0].db, realm.acl, port=9999).attach(realm.slaves[0].host)
    print("  KDBM refuses to start on a slave (read-only copy)")

    realm.net.set_down(realm.master_host.name)
    with pytest.raises(Unreachable):
        kdbm.change_password(Principal("jis", "", REALM), "jis-pw", "x")
    print("  master down: kpasswd unreachable")

    ws2 = realm.workstation()
    assert ws2.client.kinit("jis", "jis-pw") is not None
    print("  master down: authentication still succeeds (slave)")
    realm.net.set_up(realm.master_host.name)
