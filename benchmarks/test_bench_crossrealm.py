"""Exp X1 — Section 7.2: cross-realm authentication.

Times a full cross-realm acquisition (local TGS -> remote TGT -> remote
TGS -> service ticket) and regenerates the section's invariants: the
remote TGS honors the foreign TGT via the exchanged key, the client's
original realm is preserved, and chaining beyond one hop is refused.
"""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    StaticLocator,
    krb_rd_req,
    tgs_principal,
    unseal_ticket,
)
from repro.netsim import Network
from repro.realm import Realm, link

ATHENA = "ATHENA.MIT.EDU"
LCS = "LCS.MIT.EDU"


def build_two_realms():
    net = Network()
    athena = Realm(net, ATHENA, seed=b"x1-athena")
    lcs = Realm(net, LCS, seed=b"x1-lcs")
    athena.add_user("jis", "jis-pw")
    service, key = lcs.add_service("rlogin", "ptt")
    link(athena, lcs)
    ws = athena.workstation()
    ws.client.set_locator(LCS, StaticLocator([lcs.master_host.address]))
    ws.client.kinit("jis", "jis-pw")
    return net, athena, lcs, ws, service, key


def test_bench_crossrealm_acquisition(benchmark):
    net, athena, lcs, ws, service, key = build_two_realms()

    def acquire_cross_realm():
        # Force the full two-exchange path each round.
        ws.client.cache._creds.pop(str(service), None)
        ws.client.cache._creds.pop(str(tgs_principal(ATHENA, LCS)), None)
        return ws.client.get_credential(service)

    cred = benchmark(acquire_cross_realm)

    print("\nSection 7.2 — cross-realm authentication:")
    # The LCS service opens the ticket with its own key; the client's
    # realm field shows where they were originally authenticated.
    ticket = unseal_ticket(cred.ticket, key)
    print(f"  ticket client: {ticket.client} (authenticated by {ATHENA})")
    assert str(ticket.client) == f"jis@{ATHENA}"

    request, _, _ = ws.client.mk_req(service)
    context = krb_rd_req(request, service, key, ws.host.address, net.clock.now())
    assert context.client.realm == ATHENA
    print("  LCS service accepted the Athena-vouched client")

    # Message cost: 2 extra KDC exchanges vs. a local ticket.
    net.reset_stats()
    ws.client.cache._creds.pop(str(service), None)
    ws.client.cache._creds.pop(str(tgs_principal(ATHENA, LCS)), None)
    ws.client.get_credential(service)
    print(f"  KDC round trips for first cross-realm ticket: "
          f"{net.stats['port:750']}")
    assert net.stats["port:750"] == 2

    # Chaining to a third realm is refused (the paper's stated limit).
    uw = Realm(net, "CS.WASHINGTON.EDU", seed=b"x1-uw")
    link(lcs, uw)
    ws.client.set_locator(
        "CS.WASHINGTON.EDU", StaticLocator([uw.master_host.address])
    )
    remote_tgt = ws.client.cache.remote_tgt(ATHENA, LCS)
    with pytest.raises(KerberosError) as err:
        ws.client._tgs_exchange(
            LCS, remote_tgt, tgs_principal(LCS, "CS.WASHINGTON.EDU"), None
        )
    assert err.value.code == ErrorCode.KDC_NO_CROSS_REALM
    print("  second-hop chaining: refused (only the initial realm is "
          "recorded)")
