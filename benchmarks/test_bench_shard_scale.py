"""Exp SH — sharding the principal database: does the realm scale out?

The paper sizes a realm at Athena's thousands of users on one master;
the ROADMAP asks for a million behind the same realm name.  This
benchmark populates a sharded realm at the 100k-principal floor and
gates the three claims of the sharding design (PR 9):

* **scale-out**: open-loop AS throughput (simulated req/s, worker-pool
  cost model) grows ≥ ``SCALE_GATE``× linear from 1 shard to 4 — the
  ring must actually spread the load, not serialize it;
* **live rebalance**: a ``move_range`` streaming records mid-storm
  keeps login p99 within ``P99_GATE``× the steady-state p99, and no
  login fails — double-serve plus referral repair, measured;
* **determinism**: the same seed reproduces the same burst digest
  byte-for-byte on the same topology — the ring is a pure function.

Throughput is simulated-time throughput: the KDC worker pools charge
their cost model on the event clock, so N shards genuinely overlap in
sim time while the harness stays single-threaded.

Writes ``BENCH_SHARD_SCALE.json`` (snapshot + per-run history).
"""

from pathlib import Path

import pytest

from repro.netsim import Network
from repro.realm import ShardedRealm
from repro.realm.sharding import hash_point
from repro.workload import AthenaWorkload

from benchmarks.bench_util import REALM, write_bench_artifact

pytestmark = [pytest.mark.perf, pytest.mark.shard]

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_SHARD_SCALE.json"

#: Registered principals per cell — the ISSUE's floor (scale the cell
#: to 1M by raising this; the harness is O(N) in it).
N_PRINCIPALS = 100_000
#: Login-driving users/stations (sampled; the rest are database bulk).
N_DRIVE = 1_000
#: Shard counts swept for the scale-out curve.
CELLS = (1, 2, 4)
#: Worker pool per shard KDC — the unit of per-shard capacity (2
#: workers × batch cost model ≈ 800 req/s per shard).
KDC_WORKERS = 2
#: Burst arrival window (sim s): everyone arrives (nearly) at once, so
#: makespan is service-limited — that is what the scaling curve rates.
BURST_WINDOW = 0.1
#: 4-shard throughput must be ≥ this fraction of linear (4×) scaling.
SCALE_GATE = 0.7
#: Rebalance p99 must stay within this factor of steady-state p99.
P99_GATE = 2.0
SEED = 1988

_cells = {}


def build_cell(shards: int, seed: int = SEED):
    """One topology cell: N_PRINCIPALS registered, N_DRIVE drivable."""
    from repro.runtime.workqueue import WorkQueueConfig

    net = Network(seed=seed, latency=0.01)
    # An explicit queue config: enough queue depth that the burst is
    # never shed — the scaling curve measures service rate, not
    # admission control (that story is BENCH_REQUEST_PLANE's).
    realm = ShardedRealm(
        net, REALM, shards=shards,
        kdc_queue=WorkQueueConfig(
            workers=KDC_WORKERS, queue_limit=2 * N_DRIVE,
        ),
        seed=b"shard-scale",
    )
    workload = AthenaWorkload(
        realm, n_users=N_DRIVE, n_services=2, seed=seed
    )
    for i in range(N_PRINCIPALS - N_DRIVE):
        realm.add_user(f"filler{i:06d}", f"pw{i}")
    return net, realm, workload


def cell(shards: int):
    if shards not in _cells:
        _cells[shards] = build_cell(shards)
    return _cells[shards]


def burst_throughput(net, realm, workload):
    stations = workload.workstations(N_DRIVE)
    burst = workload.login_burst(stations, window=BURST_WINDOW)
    assert burst.completed == burst.posted, (
        f"{burst.posted - burst.completed} logins lost in the burst"
    )
    return burst.completed / burst.makespan, burst.digest


def paced_login_p99(net, realm, workload, n: int, tag: str, mover=None):
    """Closed-loop kinit latencies for ``n`` stations paced over a
    window, optionally with a live ``move_range`` scheduled mid-way;
    returns (p99, failures)."""
    from repro.scenarios.engine import percentile

    stations = [realm.workstation(f"ws-{tag}{i}") for i in range(n)]
    latencies, failures = [], []
    start = net.clock.now()
    window = 10.0

    def login(ws, username, password):
        def job():
            begun = net.clock.now()
            try:
                ws.client.kdestroy()
                ws.client.kinit(username, password)
                latencies.append(net.clock.now() - begun)
            except Exception as exc:
                failures.append(exc)
        return job

    for i, ws in enumerate(stations):
        username, password = workload.random_user()
        net.runtime.at(
            start + (i / n) * window, login(ws, username, password),
            label="bench.login",
        )
    if mover is not None:
        net.runtime.at(start + window / 3, mover, label="bench.rebalance")
    net.runtime.run_until_idle()
    return percentile(latencies, 0.99), failures


def half_of_shard0(realm, workload):
    """The range holding ~half of shard 0's driving users."""
    points = sorted(
        hash_point(username)
        for username, _pw in workload.users
        if realm.shard_for_key(username) == 0
    )
    return points[0], points[len(points) // 2] + 1


def test_bench_shard_scale_out():
    throughputs = {}
    digests = {}
    for shards in CELLS:
        net, realm, workload = cell(shards)
        throughputs[shards], digests[shards] = burst_throughput(
            net, realm, workload
        )
    scale_x = throughputs[4] / throughputs[1]
    print("\nExp SH — shard scale-out (sim req/s):")
    for shards in CELLS:
        print(f"  {shards} shard(s): {throughputs[shards]:8.1f} req/s")
    print(f"  1→4 scaling: {scale_x:.2f}x (gate: ≥{SCALE_GATE * 4:.1f}x)")
    assert scale_x >= SCALE_GATE * 4, (
        f"4-shard cell scaled only {scale_x:.2f}x over 1 shard "
        f"(need ≥ {SCALE_GATE * 4:.1f}x)"
    )
    test_bench_shard_scale_out.result = (throughputs, digests, scale_x)


def test_bench_rebalance_p99():
    net, realm, workload = cell(2)
    steady_p99, steady_failures = paced_login_p99(
        net, realm, workload, 200, tag="steady"
    )
    assert not steady_failures, steady_failures[:3]

    lo, hi = half_of_shard0(realm, workload)
    moved = {}

    def mover():
        moved["result"] = realm.move_range(lo, hi, 1)

    move_p99, move_failures = paced_login_p99(
        net, realm, workload, 200, tag="move", mover=mover
    )
    assert not move_failures, (
        f"{len(move_failures)} logins failed during the live rebalance: "
        f"{move_failures[:3]}"
    )
    assert moved["result"].moved >= 1, "the rebalance moved nothing"
    ratio = move_p99 / steady_p99 if steady_p99 else 1.0
    print("\nExp SH — live rebalance impact:")
    print(f"  steady-state login p99: {steady_p99 * 1000:7.1f} ms")
    print(f"  mid-rebalance    p99: {move_p99 * 1000:7.1f} ms "
          f"({ratio:.2f}x, gate ≤{P99_GATE}x)")
    print(f"  records streamed: {moved['result'].moved}, "
          f"epoch → {moved['result'].epoch}")
    assert move_p99 <= P99_GATE * steady_p99, (
        f"rebalance p99 {move_p99:.4f}s exceeds "
        f"{P99_GATE}x steady {steady_p99:.4f}s"
    )
    test_bench_rebalance_p99.result = (steady_p99, move_p99, ratio)


def test_bench_same_seed_byte_identical():
    """Two fresh same-seed 2-shard cells: identical ring record and
    identical burst digest, byte for byte."""
    net_a, realm_a, workload_a = build_cell(2)
    net_b, realm_b, workload_b = build_cell(2)
    assert realm_a.ring.to_record(REALM) == realm_b.ring.to_record(REALM)
    _thr_a, digest_a = burst_throughput(net_a, realm_a, workload_a)
    _thr_b, digest_b = burst_throughput(net_b, realm_b, workload_b)
    assert digest_a == digest_b, "same seed, different burst digests"
    print(f"\nExp SH — determinism: burst digest {digest_a[:16]}… "
          f"reproduced byte-identically")
    test_bench_same_seed_byte_identical.result = digest_a


def test_bench_write_artifact():
    throughputs, digests, scale_x = getattr(
        test_bench_shard_scale_out, "result", ({}, {}, 0.0)
    )
    steady_p99, move_p99, ratio = getattr(
        test_bench_rebalance_p99, "result", (0.0, 0.0, 0.0)
    )
    digest = getattr(test_bench_same_seed_byte_identical, "result", "")
    net, _realm, _workload = cell(max(CELLS))
    summary = {
        "principals": N_PRINCIPALS,
        "kdc_workers_per_shard": KDC_WORKERS,
        "throughput_req_s": {
            str(shards): round(thr, 1)
            for shards, thr in throughputs.items()
        },
        "scale_1_to_4": round(scale_x, 3),
        "scale_gate": SCALE_GATE * 4,
        "steady_p99_s": round(steady_p99, 6),
        "rebalance_p99_s": round(move_p99, 6),
        "p99_ratio": round(ratio, 3),
        "p99_gate": P99_GATE,
        "burst_digest": digest,
    }
    write_bench_artifact(
        net.metrics, ARTIFACT, now=net.clock.now(), extra=summary,
        seed=SEED,
    )
    print(f"\nwrote {ARTIFACT.name}: {summary}")
