"""Exp OBS — distributed tracing: storm completeness + overhead gate.

The tentpole acceptance for the tracing plane, measured on a Section 9
login storm against a queued KDC:

1. **Completeness** — every posted login is a trace: completed logins'
   trees contain the queue-wait and KDC handler spans plus both wire
   transit legs; shed logins are joined to an ``overload_shed`` audit
   event by trace ID.  Nothing is silently untraced.
2. **Overhead** — the same storm with ``net.tracer.enabled = False``
   (detached spans, no propagation, no transit spans) must not be more
   than 10% faster: tracing's wall-clock cost is gated, not hoped about.
3. **Determinism** — two same-seed traced runs export byte-identical
   Chrome trace-event JSON.

Results (with run history) land in ``BENCH_OBS_TRACE.json``.
"""

import hashlib
import time
from pathlib import Path

from repro.netsim import Network
from repro.obs import render_chrome_trace
from repro.realm import Realm
from repro.runtime import WorkQueueConfig
from repro.workload import AthenaWorkload

from benchmarks.bench_util import REALM, write_bench_artifact

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_OBS_TRACE.json"

SEED = 1988
N_USERS = 64
N_STATIONS = 128
#: Arrivals all land in this window — faster than two workers drain, so
#: queueing (and some shedding) genuinely happens.
BURST_WINDOW = 0.05
WORKERS = 2
ROUNDS = 5
#: Acceptance ceiling: traced wall time / untraced wall time.
OVERHEAD_GATE = 1.10


def _run_storm(traced: bool):
    """One fresh world + login burst; returns (wall_s, result, net)."""
    net = Network(seed=SEED)
    realm = Realm(
        net, REALM, seed=b"obs-trace",
        kdc_queue=WorkQueueConfig(workers=WORKERS),
    )
    net.tracer.enabled = traced
    workload = AthenaWorkload(realm, n_users=N_USERS, n_services=0, seed=SEED)
    stations = workload.workstations(N_STATIONS, spread_kdcs=False)
    t0 = time.perf_counter()
    result = workload.login_burst(stations, window=BURST_WINDOW)
    wall = time.perf_counter() - t0
    return wall, result, net


def _ab_times(rounds=ROUNDS):
    """Min-of-rounds wall time for traced and untraced storms, legs
    interleaved so machine noise hits both alike."""
    traced, untraced = [], []
    for _ in range(rounds):
        traced.append(_run_storm(traced=True)[0])
        untraced.append(_run_storm(traced=False)[0])
    return min(traced), min(untraced)


def test_bench_obs_trace_gate():
    # -- completeness over one traced storm ------------------------------
    _, result, net = _run_storm(traced=True)
    tracer, audit = net.tracer, net.audit

    rids = tracer.request_ids()
    names_by_rid = {
        rid: {s.name for s in tracer.by_request(rid)} for rid in rids
    }
    complete = [
        rid for rid, names in names_by_rid.items()
        if {"workload.login", "kdc.queue.wait", "kdc.as",
            "net.transit"} <= names
    ]
    shed_audits = audit.events("overload_shed")
    shed_rids = {e.trace_id for e in shed_audits}

    print("\nExp OBS — login-storm trace completeness "
          f"({N_STATIONS} stations, {WORKERS} workers):")
    print(f"  posted {result.posted}: {result.completed} completed, "
          f"{result.overloaded} shed, {result.failed} failed")
    print(f"  traces recorded: {len(rids)}; "
          f"full queue-wait/handler/transit trees: {len(complete)}; "
          f"shed joined to audit: {len(shed_rids & set(names_by_rid))}")

    # Every posted login rooted a trace; every completed login's trace
    # has the full breakdown; every shed login is audit-joined.
    assert len(rids) == result.posted
    assert len(complete) == result.completed
    assert result.overloaded > 0, "storm never shed — queue not stressed"
    assert len(shed_audits) == result.overloaded
    assert shed_rids <= set(names_by_rid)
    assert all(rid for rid in shed_rids), "shed audit lost its trace ID"

    # Per-span breakdown attrs actually populated on the handler spans.
    kdc_spans = [s for s in tracer.spans if s.name == "kdc.as"]
    assert kdc_spans
    assert all(
        "queue_wait" in s.attrs and "batch_size" in s.attrs
        and "service_time" in s.attrs and "crypto_ops" in s.attrs
        for s in kdc_spans
    )

    # -- same-seed determinism: byte-identical export --------------------
    export_a = render_chrome_trace(tracer)
    _, _, net_b = _run_storm(traced=True)
    export_b = render_chrome_trace(net_b.tracer)
    assert export_a == export_b, "same seed produced different trace export"
    export_sha = hashlib.sha256(export_a.encode()).hexdigest()

    # -- overhead gate, interleaved A/B ----------------------------------
    traced_s, untraced_s = _ab_times()
    if traced_s / untraced_s > OVERHEAD_GATE:
        # Shared-machine escalation: re-measure before failing.
        traced_s, untraced_s = _ab_times(rounds=2 * ROUNDS)
    ratio = traced_s / untraced_s
    print(f"  storm wall time: untraced {untraced_s * 1e3:.1f} ms, "
          f"traced {traced_s * 1e3:.1f} ms "
          f"({ratio:.3f}x, gate ≤{OVERHEAD_GATE}x)")

    snap = write_bench_artifact(
        net.metrics,
        ARTIFACT,
        now=net.clock.now(),
        seed=SEED,
        extra={
            "experiment": "OBS",
            "gates": {"overhead_max": OVERHEAD_GATE},
            "storm": {
                "stations": N_STATIONS,
                "workers": WORKERS,
                "window_s": BURST_WINDOW,
                "posted": result.posted,
                "completed": result.completed,
                "overloaded": result.overloaded,
                "failed": result.failed,
            },
            "completeness": {
                "traces": len(rids),
                "full_breakdown_trees": len(complete),
                "shed_audit_events": len(shed_audits),
            },
            "overhead": {
                "traced_s": traced_s,
                "untraced_s": untraced_s,
                "ratio": round(ratio, 4),
            },
            "export": {
                "bytes": len(export_a),
                "sha256": export_sha,
            },
        },
    )
    print(f"  artifact: {ARTIFACT.name} "
          f"({len(snap['history'])} run(s) in history)")

    assert ratio <= OVERHEAD_GATE, (
        f"tracing overhead {ratio:.3f}x exceeds the "
        f"{OVERHEAD_GATE}x acceptance ceiling"
    )
    assert snap["history"][-1]["summary"]["experiment"] == "OBS"
