"""Exp NFS — the appendix's performance argument, measured.

The appendix rejected per-transaction Kerberos authentication because it
"would add a fair number of full-blown encryptions (done in software)
per transaction and, according to our envelope calculations, would have
delivered unacceptable performance", choosing instead a mount-time
handshake plus a kernel mapping consulted per transaction.

The benchmark regenerates that envelope calculation on a real (software
DES) implementation of both designs, plus the unmodified-NFS baseline:

* ``TRUSTED``  — unmodified NFS, credential taken at face value;
* ``MAPPED``   — the shipped hybrid: one Kerberos handshake at mount,
  then a hash lookup per RPC;
* ``KERBEROS_RPC`` — the rejected design: full krb_mk_req/krb_rd_req
  per RPC.

Shape to hold: per-RPC Kerberos is dramatically slower than mapping;
mapping is within a small factor of unmodified NFS.
"""

import time

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsCredential, NfsServer
from repro.apps.nfs.client import NfsClient
from repro.netsim import Network
from repro.realm import Realm

from benchmarks.bench_util import REALM

N_OPS = 200


def build_fileserver(mode: AuthMode, seed: bytes):
    net = Network()
    realm = Realm(net, REALM, seed=seed)
    realm.add_user("jis", "jis-pw")
    host = net.add_host("helios")
    nfs_service, _ = realm.add_service("nfs", "helios")
    mount_service, _ = realm.add_service("mountd", "helios")
    srvtab = realm.srvtab_for(nfs_service, mount_service)
    server = NfsServer(mode=mode, service=nfs_service, srvtab=srvtab).attach(host)
    server.passwd.add("jis", 1001, [100])
    MountDaemon(server, mount_service, srvtab).attach(host)
    server.fs.install_home("jis", 1001, 100)
    server.fs.create("/u/jis/data", NfsCredential(uid=1001, gids=(100,)))
    server.fs.write("/u/jis/data", b"x" * 1024, NfsCredential(uid=1001))

    ws = realm.workstation()
    ws.client.kinit("jis", "jis-pw")
    client = NfsClient(ws.host, host.address, uid_on_client=1001, gids=[100])
    if mode == AuthMode.MAPPED:
        client.kerberos_mount(ws.client, mount_service)
    elif mode == AuthMode.KERBEROS_RPC:
        client.enable_per_rpc_kerberos(ws.client, nfs_service)
    return server, client


def run_workload(client: NfsClient, n_ops: int = N_OPS) -> float:
    """A read-heavy file workload; returns wall-clock seconds."""
    t0 = time.perf_counter()
    for i in range(n_ops):
        client.read("/u/jis/data")
        if i % 10 == 0:
            client.getattr("/u/jis/data")
    return time.perf_counter() - t0


def test_bench_nfs_mapped_design(benchmark):
    """Times the shipped design's per-RPC path (the headline number)."""
    server, client = build_fileserver(AuthMode.MAPPED, seed=b"nfs-mapped")

    benchmark(lambda: client.read("/u/jis/data"))
    assert server.credmap.lookups > 0


def test_bench_nfs_per_rpc_design(benchmark):
    """Times the rejected design's per-RPC path."""
    server, client = build_fileserver(AuthMode.KERBEROS_RPC, seed=b"nfs-rpc")

    benchmark(lambda: client.read("/u/jis/data"))
    assert server.kerberos_verifications > 0


def test_bench_nfs_appendix_comparison(benchmark):
    """The appendix's table, regenerated: all three designs side by side
    over the same workload."""
    results = {}
    servers = {}
    for mode, seed in [
        (AuthMode.TRUSTED, b"nfs-t"),
        (AuthMode.MAPPED, b"nfs-m"),
        (AuthMode.KERBEROS_RPC, b"nfs-k"),
    ]:
        server, client = build_fileserver(mode, seed=seed)
        run_workload(client, n_ops=20)  # warm up
        results[mode] = run_workload(client)
        servers[mode] = server

    benchmark.pedantic(lambda: None, rounds=1)  # comparison carried in extra_info
    trusted = results[AuthMode.TRUSTED]
    mapped = results[AuthMode.MAPPED]
    per_rpc = results[AuthMode.KERBEROS_RPC]
    benchmark.extra_info.update(
        trusted_s=round(trusted, 4),
        mapped_s=round(mapped, 4),
        per_rpc_s=round(per_rpc, 4),
        per_rpc_vs_mapped=round(per_rpc / mapped, 1),
    )

    print(f"\nAppendix — {N_OPS} NFS operations under each design:")
    print(f"  unmodified (trusted ws) : {1e3 * trusted:8.1f} ms  (baseline)")
    print(f"  mount-time mapping      : {1e3 * mapped:8.1f} ms  "
          f"({mapped / trusted:.2f}x baseline)")
    print(f"  per-RPC Kerberos        : {1e3 * per_rpc:8.1f} ms  "
          f"({per_rpc / mapped:.1f}x the mapping design)")
    print(f"  kernel-map lookups (mapped run): "
          f"{servers[AuthMode.MAPPED].credmap.lookups}")
    print(f"  DES verifications (per-RPC run): "
          f"{servers[AuthMode.KERBEROS_RPC].kerberos_verifications}")

    # The paper's claims, as assertions on shape:
    # 1. per-RPC crypto is dramatically more expensive than mapping.
    assert per_rpc > 3 * mapped, (per_rpc, mapped)
    # 2. the mapping design costs about the same as unmodified NFS.
    assert mapped < 2 * trusted, (mapped, trusted)
