"""Exp F4 — Figure 4: the authenticator {c, addr, timestamp}K_s,c.

Times authenticator construction (the client builds a fresh one per
request) and verification, and re-checks single-use enforcement via the
replay cache.
"""

import pytest

from repro.core import (
    KerberosError,
    Principal,
    ReplayCache,
    build_authenticator,
    unseal_authenticator,
)
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

GEN = KeyGenerator(seed=b"fig4")
SESSION_KEY = GEN.session_key()
CLIENT = Principal("jis", "", "ATHENA.MIT.EDU")
ADDR = IPAddress("18.72.0.100")


def test_bench_fig4_build_and_verify(benchmark):
    counter = iter(range(10**9))

    def cycle():
        now = float(next(counter))
        blob = build_authenticator(CLIENT, ADDR, now, SESSION_KEY)
        return unseal_authenticator(blob, SESSION_KEY)

    auth = benchmark(cycle)
    assert auth.client == CLIENT

    # Single-use: a second presentation of the same authenticator is
    # caught by the server's cache.
    cache = ReplayCache()
    blob = build_authenticator(CLIENT, ADDR, 500.0, SESSION_KEY)
    opened = unseal_authenticator(blob, SESSION_KEY)
    assert cache.check_and_store(str(opened.client), opened.address,
                                 opened.timestamp, now=500.0)
    assert not cache.check_and_store(str(opened.client), opened.address,
                                     opened.timestamp, now=500.0)
    print("\nFigure 4 — authenticator is single-use: replay caught by cache")

    # And unreadable/unforgeable without the session key.
    with pytest.raises(KerberosError):
        unseal_authenticator(blob, GEN.session_key())
