"""Exp T1 — the threat matrix (Sections 1, 2, 4.3, 8), measured.

Runs every attacker the paper designs against and prints the verdict
table; the benchmark times the server's rejection path (attacks must be
cheap to refuse — a server drowning in crypto while rejecting forgeries
would be a denial-of-service vector).
"""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    ReplayCache,
    krb_rd_req,
)
from repro.crypto import KeyGenerator, string_to_key
from repro.threat import (
    Eavesdropper,
    MasqueradingServer,
    steal_credentials,
    use_stolen_credential,
)

from benchmarks.bench_util import (
    logged_in_workstation,
    rlogin_principal,
    small_realm,
)


def test_bench_threat_rejection_cost(benchmark):
    """Time the server rejecting a stolen-ticket request (the hot attack
    path)."""
    realm = small_realm(seed=b"t1-cost")
    service = rlogin_principal()
    key = realm.service_key(service)
    victim = logged_in_workstation(realm)
    victim.client.get_credential(service)
    thief_host = realm.net.add_host("thief")
    loot = [s for s in steal_credentials(victim.client)
            if "rlogin" in str(s.credential.service)][0]
    request = use_stolen_credential(loot, thief_host)

    def reject():
        try:
            krb_rd_req(request, service, key, thief_host.address,
                       realm.net.clock.now())
            return False
        except KerberosError:
            return True

    assert benchmark(reject)


def test_bench_threat_matrix(benchmark):
    """The verdict table for every attacker."""
    realm = small_realm(seed=b"t1-matrix")
    realm.add_user("weakuser", "password")
    net = realm.net
    service = rlogin_principal()
    key = realm.service_key(service)
    verdicts = []

    def run_matrix():
        verdicts.clear()

        # 1. Eavesdropper harvesting key material.
        eve = Eavesdropper(net)
        ws = realm.workstation(hostname=f"wsm{len(net.hosts())}")
        ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(service)
        leaked = (
            eve.saw_bytes(b"jis-pw")
            or eve.saw_bytes(string_to_key("jis-pw").key_bytes)
            or eve.saw_bytes(cred.session_key.key_bytes)
        )
        verdicts.append(("eavesdrop for keys", "DEFEATED" if not leaked else "BROKEN"))

        # 2. Replay of a captured request.
        cache = ReplayCache()
        request, _, _ = ws.client.mk_req(service)
        krb_rd_req(request, service, key, ws.host.address, net.clock.now(), cache)
        try:
            krb_rd_req(request, service, key, ws.host.address,
                       net.clock.now(), cache)
            verdicts.append(("replay (cached)", "BROKEN"))
        except KerberosError:
            verdicts.append(("replay (cached)", "DEFEATED"))

        # 3. Masquerading server vs mutual auth.
        from repro.apps.kerberized import KerberizedChannel

        fake_host = net.add_host(f"fake{len(net.hosts())}")
        MasqueradingServer(fake_host, 544)
        try:
            KerberizedChannel(ws.client, service, fake_host.address, 544,
                              mutual=True)
            verdicts.append(("masquerading server", "BROKEN"))
        except KerberosError:
            verdicts.append(("masquerading server", "DEFEATED"))

        # 4. Stolen ticket from another machine.
        thief = net.add_host(f"thief{len(net.hosts())}")
        loot = [s for s in steal_credentials(ws.client)
                if "rlogin" in str(s.credential.service)][0]
        try:
            krb_rd_req(use_stolen_credential(loot, thief), service, key,
                       thief.address, net.clock.now())
            verdicts.append(("stolen ticket, other host", "BROKEN"))
        except KerberosError:
            verdicts.append(("stolen ticket, other host", "DEFEATED"))

        # 5. Stolen ticket at the victim's machine (Section 8's limit).
        try:
            krb_rd_req(use_stolen_credential(loot, ws.host), service, key,
                       ws.host.address, net.clock.now())
            verdicts.append(("stolen ticket, victim host", "SUCCEEDS until expiry"))
        except KerberosError:
            verdicts.append(("stolen ticket, victim host", "rejected"))

        # 6. Offline dictionary attack on a weak password.
        eve2 = Eavesdropper(net)
        ws2 = realm.workstation(hostname=f"wsw{len(net.hosts())}")
        ws2.client.kinit("weakuser", "password")
        guessed = eve2.offline_password_guess(
            eve2.harvest_kdc_replies()[0], ["123456", "password"]
        )
        verdicts.append((
            "offline dictionary (weak pw)",
            "SUCCEEDS (design edge)" if guessed else "resisted",
        ))
        eve.detach()
        eve2.detach()
        return verdicts

    benchmark.pedantic(run_matrix, rounds=1)

    print("\nThreat matrix (T1):")
    for attack, verdict in verdicts:
        print(f"  {attack:<30} {verdict}")
    expected = {
        "eavesdrop for keys": "DEFEATED",
        "replay (cached)": "DEFEATED",
        "masquerading server": "DEFEATED",
        "stolen ticket, other host": "DEFEATED",
        "stolen ticket, victim host": "SUCCEEDS until expiry",
        "offline dictionary (weak pw)": "SUCCEEDS (design edge)",
    }
    assert dict(verdicts) == expected
