"""Exp C1 (supplement) — the encryption library's cost table.

Section 2.2 offers "several methods of encryption ... with tradeoffs
between speed and security", and the appendix's whole NFS argument rests
on how expensive "full-blown encryptions (done in software)" are.  This
bench is that cost table for our software DES: the per-operation prices
every other number in EXPERIMENTS.md is built from.
"""

from repro.crypto import (
    DesKey,
    KeyGenerator,
    cbc_mac,
    quad_cksum,
    seal,
    string_to_key,
    unseal,
)

GEN = KeyGenerator(seed=b"crypto-bench")
KEY = GEN.session_key()
BLOCK = bytes(8)
KILOBYTE = bytes(1024)


def test_bench_des_block(benchmark):
    """One DES block encryption — the atom of every cost below."""
    benchmark(lambda: KEY.encrypt_block(BLOCK))


def test_bench_seal_small(benchmark):
    """Sealing a ticket-sized (~100 B) message."""
    data = bytes(100)
    benchmark(lambda: seal(KEY, data))


def test_bench_unseal_small(benchmark):
    blob = seal(KEY, bytes(100))
    benchmark(lambda: unseal(KEY, blob))


def test_bench_seal_kilobyte(benchmark):
    """A KB under PCBC — the private-message / kprop price per KB."""
    benchmark(lambda: seal(KEY, KILOBYTE))


def test_bench_string_to_key(benchmark):
    """Password-to-key derivation (once per login)."""
    benchmark(lambda: string_to_key("correct horse battery staple"))


def test_bench_cbc_mac_kilobyte(benchmark):
    """The kprop checksum per KB of database dump."""
    benchmark(lambda: cbc_mac(KEY, KILOBYTE))


def test_bench_quad_cksum_kilobyte(benchmark):
    """The safe-message checksum per KB — the paper's cheap option."""
    result = benchmark(lambda: quad_cksum(KILOBYTE, KEY.key_bytes))
    assert isinstance(result, int)


def test_bench_session_key_generation(benchmark):
    """One session key from the DRBG (per KDC exchange)."""
    gen = KeyGenerator(seed=b"kdc")
    benchmark(gen.session_key)
