"""Exp F5 — Figure 5: getting the initial ticket (the AS exchange).

Times a complete login (request + KDC work + reply decryption with the
password-derived key) and regenerates the figure's properties: exactly
one round trip, password never on the wire, wrong password fails
locally.
"""

import pytest

from repro.core import ErrorCode, KerberosError
from repro.crypto import string_to_key

from benchmarks.bench_util import small_realm


def test_bench_fig5_kinit(benchmark):
    realm = small_realm()
    ws = realm.workstation()

    def kinit():
        ws.client.kdestroy()
        return ws.client.kinit("jis", "jis-pw")

    tgt = benchmark(kinit)
    assert tgt.life == 8 * 3600.0

    # One round trip to port 750 per login.
    realm.net.reset_stats()
    ws.client.kdestroy()
    ws.client.kinit("jis", "jis-pw")
    print(f"\nFigure 5 — messages per login: {realm.net.stats['messages']} "
          f"(1 request + 1 reply)")
    assert realm.net.stats["port:750"] == 1
    assert realm.net.stats["messages"] == 2

    # The password and its derived key never travel.
    captured = []
    realm.net.add_tap(lambda d: captured.append(d.payload))
    ws.client.kdestroy()
    ws.client.kinit("jis", "jis-pw")
    assert not any(b"jis-pw" in p for p in captured)
    assert not any(string_to_key("jis-pw").key_bytes in p for p in captured)
    print("  password bytes on wire: none;  derived key on wire: none")

    # A wrong password is detected on the workstation, not by the KDC.
    with pytest.raises(KerberosError) as err:
        ws.client.kinit("jis", "wrong-password")
    assert err.value.code == ErrorCode.INTK_BADPW
    print("  wrong password: INTK_BADPW (reply failed to decrypt locally)")
