"""Exp SC — the chaos campaign sweep: SLO verdicts at fleet scale.

The scenario engine (:mod:`repro.scenarios`) turns the paper's
deployment story into named drills; this benchmark runs the full
library at its default parameters and records each campaign's verdict,
latency percentiles, and per-station outcome digest in
``BENCH_SCENARIOS.json`` (with run history).

Shapes to hold: every campaign passes all of its SLOs — including the
master assassination, which must recover through the supervisor with no
manual promotion — and a same-seed rerun reproduces every campaign's
serialized summary byte for byte.
"""

import json
from pathlib import Path

import repro.scenarios as scenarios
from repro.netsim import Network

from benchmarks.bench_util import write_bench_artifact

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_SCENARIOS.json"

SEED = 1988


def run_sweep() -> dict:
    """name -> summary dict for every registered campaign."""
    return {
        name: scenarios.run(name, seed=SEED).summary()
        for name in scenarios.names()
    }


def test_bench_scenario_campaigns(benchmark):
    summaries = run_sweep()
    assert len(summaries) >= 5          # the acceptance floor

    print("\nExp SC — chaos campaigns (seed %d):" % SEED)
    for name, summary in summaries.items():
        verdict = "PASS" if summary["passed"] else "FAIL"
        print(
            f"  [{verdict}] {name:24} makespan {summary['makespan']:7.1f}s  "
            f"p50 {summary['latency_p50']:6.3f}s  "
            f"p95 {summary['latency_p95']:6.3f}s  "
            f"outcomes {summary['outcomes']}"
        )
        assert summary["passed"], (
            f"{name} missed SLOs: "
            f"{[c for c in summary['checks'] if not c['passed']]}"
        )
        assert len(summary["digest"]) == 64
        assert summary["latency_p95"] >= summary["latency_p50"] >= 0.0

    # The self-healing acceptance gate: the assassination recovered via
    # exactly one supervisor-driven promotion, traced and audited.
    assassination = summaries["master_assassination"]
    checks = {c["name"]: c for c in assassination["checks"]}
    assert checks["promotions"]["observed"] == 1.0
    assert checks["audit_joined"]["observed"] >= 1.0
    assert checks["rejoined"]["observed"] >= 1.0
    assert assassination["notes"]["new_master"] != (
        assassination["notes"]["old_master"]
    )

    # Timing hook: wall-clock cost of the fastest drill.
    benchmark.pedantic(
        lambda: scenarios.run("morning_login_storm", seed=SEED),
        rounds=2, iterations=1,
    )

    # The artifact's metrics snapshot comes from a dedicated sentinel
    # network (campaigns each build their own world); the per-campaign
    # summaries are the payload.
    sentinel = Network(seed=SEED)
    snap = write_bench_artifact(
        sentinel.metrics,
        ARTIFACT,
        now=0.0,
        seed=SEED,
        extra={
            "experiment": "SC",
            "campaigns": summaries,
            "all_passed": all(s["passed"] for s in summaries.values()),
        },
    )
    assert len(snap["bench"]["campaigns"]) >= 5
    print(f"  artifact: {ARTIFACT.name}")


def test_bench_scenarios_same_seed_byte_identical():
    """Determinism gate: the serialized summary of every campaign is
    byte-identical across two same-seed sweeps."""
    first = json.dumps(run_sweep(), sort_keys=True)
    second = json.dumps(run_sweep(), sort_keys=True)
    assert first == second
