"""Exp F6 — Figure 6: requesting a service (the AP exchange).

Times the end-server's krb_rd_req validation — the per-connection cost
every Kerberized service pays — and regenerates the figure's checks:
replay rejected, skew window honored, address mismatch rejected.
"""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    ReplayCache,
    krb_mk_req,
    krb_rd_req,
)
from repro.core.replay import CLOCK_SKEW

from benchmarks.bench_util import (
    logged_in_workstation,
    rlogin_principal,
    small_realm,
)


def test_bench_fig6_rd_req(benchmark):
    realm = small_realm()
    service = rlogin_principal()
    key = realm.service_key(service)
    ws = logged_in_workstation(realm)
    cred = ws.client.get_credential(service)
    now = realm.net.clock.now()

    counter = iter(range(10**9))

    def serve_one_request():
        # Fresh authenticator each time (as a real client would build).
        request = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=cred.session_key,
            client=ws.client.principal,
            client_address=ws.host.address,
            now=now + next(counter) * 1e-6,
        )
        return krb_rd_req(request, service, key, ws.host.address, now)

    context = benchmark(serve_one_request)
    assert context.client.name == "jis"

    print("\nFigure 6 — server-side checks:")
    cache = ReplayCache()
    request, _, sent = ws.client.mk_req(service)
    krb_rd_req(request, service, key, ws.host.address, now, cache)
    with pytest.raises(KerberosError) as err:
        krb_rd_req(request, service, key, ws.host.address, now, cache)
    assert err.value.code == ErrorCode.RD_AP_REPEAT
    print("  exact replay:            RD_AP_REPEAT")

    stale = krb_mk_req(cred.ticket, cred.session_key, ws.client.principal,
                       ws.host.address, now=now)
    with pytest.raises(KerberosError) as err:
        krb_rd_req(stale, service, key, ws.host.address, now + CLOCK_SKEW + 1)
    assert err.value.code == ErrorCode.RD_AP_TIME
    print(f"  authenticator older than {CLOCK_SKEW:.0f}s: RD_AP_TIME")

    ok = krb_mk_req(cred.ticket, cred.session_key, ws.client.principal,
                    ws.host.address, now=now + 1)
    krb_rd_req(ok, service, key, ws.host.address, now + CLOCK_SKEW - 1)
    print("  within the skew window:  accepted")

    thief = realm.net.add_host("thief")
    moved = krb_mk_req(cred.ticket, cred.session_key, ws.client.principal,
                       thief.address, now=now + 2)
    with pytest.raises(KerberosError) as err:
        krb_rd_req(moved, service, key, thief.address, now + 2)
    assert err.value.code == ErrorCode.RD_AP_BADD
    print("  request from wrong host: RD_AP_BADD")
