"""Database propagation tests (paper Section 5.3, Figure 13) — exp F13."""

import pytest

from repro.core import Principal
from repro.crypto import string_to_key
from repro.netsim import Network
from repro.realm import Realm
from repro.replication.messages import (
    PropKind,
    PropReply,
    PropTransfer,
    encode_prop_message,
)

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def realm(net):
    r = Realm(net, REALM, n_slaves=2)
    r.add_user("jis", "jis-pw")
    return r


class TestPropagation:
    def test_full_dump_reaches_all_slaves(self, realm):
        result = realm.propagate()
        assert result.all_ok
        assert result.attempted == 2
        for slave in realm.slaves:
            assert slave.db.exists(Principal("jis", "", REALM))

    def test_entire_database_sent(self, realm):
        """"The database is sent, in its entirety" — slave contents equal
        master contents after one round."""
        realm.add_user("bcn", "b")
        realm.add_user("treese", "t")
        realm.propagate()
        master_items = list(realm.db.store.items())
        for slave in realm.slaves:
            assert list(slave.db.store.items()) == master_items

    def test_deletion_propagates(self, realm):
        realm.propagate()
        realm.db.delete_principal(Principal("jis", "", REALM))
        realm.propagate()
        for slave in realm.slaves:
            assert not slave.db.exists(Principal("jis", "", REALM))

    def test_password_change_propagates(self, realm):
        realm.propagate()
        realm.db.change_key(Principal("jis", "", REALM), new_password="new")
        realm.propagate()
        for slave in realm.slaves:
            assert slave.db.principal_key(
                Principal("jis", "", REALM)
            ) == string_to_key("new")

    def test_hourly_schedule(self, realm, net):
        realm.schedule_propagation()
        realm.add_user("late", "pw")
        slave = realm.slaves[0]
        assert not slave.db.exists(Principal("late", "", REALM))
        net.clock.advance(3600.0)
        assert slave.db.exists(Principal("late", "", REALM))
        assert slave.kpropd.updates_applied >= 1

    def test_staleness_window(self, realm, net):
        """A slave is at most one interval stale — the consistency window
        the paper accepts."""
        realm.schedule_propagation()
        net.clock.advance(3 * 3600.0 + 10)
        slave = realm.slaves[0]
        assert slave.kpropd.staleness(net.clock.now()) <= 3600.0 + 10

    def test_staleness_infinite_before_first_update(self, net):
        fresh = Realm(net, "FRESH.REALM", n_slaves=0)
        slave = fresh.add_slave("fresh-slave")
        assert slave.kpropd.staleness(net.clock.now()) == float("inf")


class TestTamperRejection:
    def test_tampered_dump_rejected(self, realm, net):
        """The Figure 13 checksum check: flip one byte in transit and the
        slave must keep its old database."""
        realm.propagate()
        realm.add_user("victim", "pw")

        def flip(datagram):
            if datagram.dst_port == 754 and len(datagram.payload) > 100:
                payload = bytearray(datagram.payload)
                payload[-10] ^= 0x01
                return type(datagram)(
                    src=datagram.src,
                    src_port=datagram.src_port,
                    dst=datagram.dst,
                    dst_port=datagram.dst_port,
                    payload=bytes(payload),
                )
            return datagram

        net.add_interceptor(flip)
        result = realm.propagate()
        net.remove_interceptor(flip)

        assert not result.all_ok
        for slave in realm.slaves:
            assert slave.kpropd.updates_rejected >= 1
            assert not slave.db.exists(Principal("victim", "", REALM))

    def test_imposter_master_rejected(self, realm, net):
        """Without the master key the checksum cannot be forged: "it is
        essential that only information from the master host be accepted
        by the slaves"."""
        from repro.crypto import KeyGenerator, cbc_mac

        imposter = net.add_host("imposter")
        fake_dump = realm.db.dump()  # even a byte-perfect dump...
        wrong_key = KeyGenerator(seed=b"imposter").session_key()
        transfer = PropTransfer(
            checksum=cbc_mac(wrong_key, fake_dump),  # ...with a forged MAC
            dump=fake_dump,
        )
        slave = realm.slaves[0]
        raw = imposter.rpc(
            slave.host.address, 754, encode_prop_message(PropKind.FULL, transfer)
        )
        reply = PropReply.from_bytes(raw)
        assert not reply.ok
        assert "checksum" in reply.text

    def test_garbage_transfer_rejected(self, realm):
        slave = realm.slaves[0]
        raw = realm.master_host.rpc(slave.host.address, 754, b"not a transfer")
        assert not PropReply.from_bytes(raw).ok
        assert slave.kpropd.rejection_log

    def test_dump_useless_to_eavesdropper(self, realm, net):
        """"the information passed from master to slave over the network
        is not useful to an eavesdropper" — no cleartext keys inside."""
        captured = []
        net.add_tap(lambda d: captured.append(d.payload))
        realm.propagate(full=True)
        jis_key = string_to_key("jis-pw").key_bytes
        assert any(len(p) > 200 for p in captured)  # the dump did travel
        for payload in captured:
            assert jis_key not in payload


class TestFailureHandling:
    def test_dead_slave_does_not_block_others(self, realm, net):
        net.set_down(realm.slaves[0].host.name)
        realm.add_user("while-down", "pw")
        result = realm.propagate()
        assert result.succeeded == 1
        assert len(result.failures) == 1
        assert realm.slaves[1].db.exists(Principal("while-down", "", REALM))

    def test_recovered_slave_catches_up(self, realm, net):
        net.set_down(realm.slaves[0].host.name)
        realm.add_user("while-down", "pw")
        realm.propagate()
        net.set_up(realm.slaves[0].host.name)
        realm.propagate()
        assert realm.slaves[0].db.exists(Principal("while-down", "", REALM))

    def test_history_recorded(self, realm):
        realm.propagate()
        realm.propagate()
        # Bootstrap with n_slaves ran one initial round already.
        assert len(realm.kprop.history) == 3


class TestConstruction:
    def test_kprop_requires_master(self, realm):
        from repro.replication import Kprop

        slave = realm.slaves[0]
        with pytest.raises(ValueError):
            Kprop(slave.db, slave.host, [])

    def test_kpropd_requires_replica(self, realm, net):
        from repro.replication import Kpropd

        host = net.add_host("wrong")
        with pytest.raises(ValueError):
            Kpropd(realm.db).attach(host)
