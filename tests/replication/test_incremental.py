"""Incremental propagation: delta kprop, catch-up, and fallback paths.

The update journal + delta protocol shrink the Figure 13 consistency
window from "up to an hour" to the incremental cadence — but only if
every degraded path (crash-restart, partition, gap, epoch change,
tampering) falls back to the full dump correctly.  These scenarios
exercise each one and pin same-seed determinism of the whole plane.
"""

import hashlib

import pytest

from repro.crypto import string_to_key
from repro.database.journal import default_epoch
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm

pytestmark = pytest.mark.replication

REALM_NAME = "ATHENA.MIT.EDU"


def build_realm(seed=77, n_slaves=2, **kwargs):
    net = Network(seed=seed)
    realm = Realm(net, REALM_NAME, n_slaves=n_slaves, **kwargs)
    realm.add_user("jis", "jis-pw")
    realm.propagate()  # everyone synced; high-water marks established
    return net, realm


def store_digest(db) -> str:
    h = hashlib.sha256()
    for key, value in db.store.items():
        h.update(key.encode())
        h.update(value)
    return h.hexdigest()


class TestDeltaRounds:
    def test_steady_state_rounds_are_deltas(self):
        net, realm = build_realm()
        realm.db.change_key(
            Principal("jis", "", REALM_NAME), new_password="new-pw"
        )
        result = realm.propagate()
        assert result.all_ok
        assert set(result.modes.values()) == {"delta"}
        for slave in realm.slaves:
            assert slave.db.principal_key(
                Principal("jis", "", REALM_NAME)
            ) == string_to_key("new-pw")
            assert store_digest(slave.db) == store_digest(realm.db)

    def test_empty_delta_is_a_heartbeat(self):
        """No changes → a zero-entry delta still confirms freshness."""
        net, realm = build_realm()
        before = realm.slaves[0].kpropd.staleness(net.clock.now())
        net.clock.advance(120.0)
        result = realm.propagate()
        assert result.all_ok and result.deltas == 2
        assert realm.slaves[0].kpropd.staleness(net.clock.now()) < before + 120.0
        assert realm.slaves[0].kpropd.applied_seq == realm.db.journal.last_seq

    def test_delta_moves_fewer_bytes_than_full(self):
        net, realm = build_realm()
        for i in range(200):
            realm.add_user(f"bulk{i:03d}", "pw")
        realm.propagate()  # delta carrying the 200 adds
        realm.db.change_key(Principal("jis", "", REALM_NAME), new_password="x")
        base = net.metrics.total("repl.delta_bytes_total")
        realm.propagate()
        delta_bytes = net.metrics.total("repl.delta_bytes_total") - base
        full_bytes = len(realm.db.dump())
        assert delta_bytes > 0
        assert delta_bytes * 10 < full_bytes * 2  # one change, two slaves

    def test_incremental_cadence_shrinks_staleness(self):
        net, realm = build_realm()
        realm.schedule_incremental(interval=30.0)
        realm.add_user("late", "pw")
        net.clock.advance(31.0)
        for slave in realm.slaves:
            assert slave.db.exists(Principal("late", "", REALM_NAME))
            assert slave.kpropd.staleness(net.clock.now()) <= 31.0


class TestCatchUpAndFallback:
    def test_crash_restarted_slave_falls_back_to_full_dump(self):
        """A crash loses kpropd's applied position; the next delta is
        answered NEED_FULL and the master ships a full dump in the same
        round."""
        net, realm = build_realm()
        victim = realm.slaves[0]
        net.crash_host(victim.host.name)
        realm.add_user("while-down", "pw")
        mid = realm.propagate()  # victim unreachable, peer gets the delta
        assert str(victim.host.address) in mid.failures
        net.restart_host(victim.host.name)
        realm.add_user("after-restart", "pw")
        result = realm.propagate()
        assert result.all_ok
        assert result.modes[str(victim.host.address)] == "delta+full"
        assert result.modes[str(realm.slaves[1].host.address)] == "delta"
        assert store_digest(victim.db) == store_digest(realm.db)
        assert net.metrics.total("repl.delta_fallbacks_total") >= 1

    def test_partition_then_heal_converges_by_delta(self):
        """A partitioned slave misses rounds but keeps its position, so
        healing catches it up with a delta, not a full dump."""
        net, realm = build_realm()
        victim = realm.slaves[0]
        cut = net.partition([victim.host.name])
        realm.add_user("p1", "pw")
        realm.propagate()
        realm.add_user("p2", "pw")
        mid = realm.propagate()
        assert str(victim.host.address) in mid.failures
        assert not victim.db.exists(Principal("p1", "", REALM_NAME))
        net.heal(cut)
        result = realm.propagate()
        assert result.all_ok
        assert result.modes[str(victim.host.address)] == "delta"
        assert store_digest(victim.db) == store_digest(realm.db)

    def test_journal_compaction_gap_forces_full_dump(self):
        """A slave so far behind that the journal compacted past its
        position gets a full dump — chosen master-side, no round trip."""
        net, realm = build_realm()
        realm.db.journal.limit = 8
        victim = realm.slaves[0]
        cut = net.partition([victim.host.name])
        for i in range(20):  # > journal limit while partitioned
            realm.add_user(f"burst{i:02d}", "pw")
        realm.propagate()
        net.heal(cut)
        result = realm.propagate()
        assert result.all_ok
        assert result.modes[str(victim.host.address)] == "full"
        assert store_digest(victim.db) == store_digest(realm.db)

    def test_epoch_change_forces_full_dump(self):
        """A rebuilt master journal (new epoch) invalidates every
        high-water mark — next round is full dumps everywhere."""
        net, realm = build_realm()
        realm.db.journal.bump_epoch()
        realm.add_user("fresh-epoch", "pw")
        result = realm.propagate()
        assert result.all_ok
        assert set(result.modes.values()) == {"full"}
        for slave in realm.slaves:
            assert store_digest(slave.db) == store_digest(realm.db)

    def test_slave_side_epoch_mismatch_answers_need_full(self):
        """If the master's mark is somehow stale-valid but the slave's
        epoch differs (restored from an old backup), the slave refuses
        the delta and the round falls back."""
        net, realm = build_realm()
        victim = realm.slaves[0]
        victim.kpropd.applied_epoch = default_epoch(REALM_NAME, 99)
        realm.add_user("post-restore", "pw")
        result = realm.propagate()
        assert result.all_ok
        assert result.modes[str(victim.host.address)] == "delta+full"
        assert store_digest(victim.db) == store_digest(realm.db)

    def test_promoted_master_resyncs_survivors_with_full_dumps(self):
        """Slave promotion starts a new journal epoch; the surviving
        slave is resynced by full dump, then rides deltas again."""
        net, realm = build_realm()
        net.set_down(realm.master_host.name)
        realm.promote_slave(0)
        realm.add_user("after-promotion", "pw")
        result = realm.propagate()
        assert result.all_ok
        survivor = realm.slaves[0]
        assert result.modes[str(survivor.host.address)] == "full"
        assert store_digest(survivor.db) == store_digest(realm.db)
        realm.add_user("steady-again", "pw")
        again = realm.propagate()
        assert again.all_ok
        assert again.modes[str(survivor.host.address)] == "delta"


class TestDeltaIntegrity:
    def test_tampered_delta_rejected_by_checksum(self):
        """The Figure 13 trust model is unchanged for deltas: flip one
        byte in transit and the slave keeps its old database."""
        net, realm = build_realm()
        realm.add_user("victim", "pw")

        def flip(datagram):
            if datagram.dst_port == 754 and len(datagram.payload) > 40:
                payload = bytearray(datagram.payload)
                payload[-5] ^= 0x01
                return type(datagram)(
                    src=datagram.src, src_port=datagram.src_port,
                    dst=datagram.dst, dst_port=datagram.dst_port,
                    payload=bytes(payload),
                )
            return datagram

        net.add_interceptor(flip)
        result = realm.propagate()
        net.remove_interceptor(flip)
        assert not result.all_ok
        for slave in realm.slaves:
            assert slave.kpropd.updates_rejected >= 1
            assert not slave.db.exists(Principal("victim", "", REALM_NAME))
        # The marks were not advanced; a clean round heals by delta.
        clean = realm.propagate()
        assert clean.all_ok
        assert set(clean.modes.values()) == {"delta"}
        for slave in realm.slaves:
            assert store_digest(slave.db) == store_digest(realm.db)


class TestStalenessAccounting:
    def test_master_gauge_agrees_with_kpropd_staleness(self):
        """One definition, two observers: ``repl.slave_lag_seconds`` is
        computed from the slave's own applied_time report, so gauge and
        :meth:`Kpropd.staleness` agree exactly at round time."""
        net, realm = build_realm()
        realm.propagate()
        victim = realm.slaves[0]
        net.set_down(victim.host.name)
        net.clock.advance(500.0)
        realm.propagate()  # victim misses this round; gauge updates anyway
        now = net.clock.now()
        gauge = net.metrics.get(
            "repl.slave_lag_seconds",
            {"master": realm.master_host.name, "slave": str(victim.host.address)},
        )
        assert gauge is not None
        assert gauge.value == pytest.approx(victim.kpropd.staleness(now))
        # And a rejected transfer must NOT reset either clock: only an
        # applied update counts.
        assert victim.kpropd.staleness(now) >= 500.0

    def test_gauge_resets_after_applied_update(self):
        net, realm = build_realm()
        net.clock.advance(300.0)
        realm.propagate()
        gauge = net.metrics.get(
            "repl.slave_lag_seconds",
            {
                "master": realm.master_host.name,
                "slave": str(realm.slaves[0].host.address),
            },
        )
        assert gauge.value == pytest.approx(
            realm.slaves[0].kpropd.staleness(net.clock.now())
        )
        assert gauge.value < 1.0


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        """The whole incremental plane — journal, deltas, crash fallback
        — is deterministic under the seeded simulation."""

        def run(seed):
            net, realm = build_realm(seed=seed)
            realm.schedule_incremental(interval=30.0)
            realm.add_user("a", "pw-a")
            net.clock.advance(35.0)
            net.crash_host(realm.slaves[0].host.name, downtime=40.0)
            realm.add_user("b", "pw-b")
            net.clock.advance(90.0)
            realm.db.change_key(Principal("a", "", REALM_NAME), new_password="z")
            net.clock.advance(60.0)
            return [store_digest(realm.db)] + [
                store_digest(s.db) for s in realm.slaves
            ]

        first, second = run(1234), run(1234)
        assert first == second
        assert len(set(first)) == 1  # and everyone converged

    def test_different_history_different_digest(self):
        net, realm = build_realm()
        before = store_digest(realm.db)
        realm.add_user("x", "pw")
        assert store_digest(realm.db) != before
