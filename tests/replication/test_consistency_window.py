"""The consistency window of hourly full-dump replication (Section 5.3).

*"Keeping multiple copies of the database introduces the problem of data
consistency.  We have found that very simple methods suffice for dealing
with inconsistency."*  These tests pin down exactly what "simple" costs:
between a change on the master and the next hourly dump, slaves serve
the old data — observable as old passwords still working (and new ones
not) on slaves.
"""

import pytest

from repro.core import ErrorCode, KerberosClient, KerberosError
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM, n_slaves=1)
    realm.add_user("jis", "old-pw")
    realm.propagate()
    realm.schedule_propagation()
    return net, realm


def client_pinned_to(host_address, ws):
    return KerberosClient(ws.host, REALM, [host_address])


class TestConsistencyWindow:
    def test_old_password_lives_on_at_the_slave(self, world):
        """Inside the window: master says new, slave says old."""
        net, realm = world
        realm.db.change_key(Principal("jis", "", REALM), new_password="new-pw")

        ws = realm.workstation()
        at_master = client_pinned_to(realm.master_host.address, ws)
        at_slave = client_pinned_to(realm.slaves[0].host.address, ws)

        # Master: only the new password works.
        assert at_master.kinit("jis", "new-pw") is not None
        with pytest.raises(KerberosError):
            at_master.kinit("jis", "old-pw")
        # Slave: only the OLD one does — the window, made visible.
        assert at_slave.kinit("jis", "old-pw") is not None
        with pytest.raises(KerberosError):
            at_slave.kinit("jis", "new-pw")

    def test_window_closes_at_the_next_dump(self, world):
        net, realm = world
        realm.db.change_key(Principal("jis", "", REALM), new_password="new-pw")
        net.clock.advance(3600.0)

        ws = realm.workstation()
        at_slave = client_pinned_to(realm.slaves[0].host.address, ws)
        assert at_slave.kinit("jis", "new-pw") is not None
        with pytest.raises(KerberosError):
            at_slave.kinit("jis", "old-pw")

    def test_new_user_invisible_at_slave_until_dump(self, world):
        net, realm = world
        realm.add_user("fresh", "pw")
        ws = realm.workstation()
        at_slave = client_pinned_to(realm.slaves[0].host.address, ws)
        with pytest.raises(KerberosError) as err:
            at_slave.kinit("fresh", "pw")
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN
        net.clock.advance(3600.0)
        assert at_slave.kinit("fresh", "pw") is not None

    def test_deleted_user_lingers_at_slave_until_dump(self, world):
        """The window also delays lockout — a deleted account can still
        authenticate via a stale slave for up to an hour.  (Together with
        ticket lifetimes, this bounds how fast removal takes effect.)"""
        net, realm = world
        realm.db.delete_principal(Principal("jis", "", REALM))
        ws = realm.workstation()
        at_slave = client_pinned_to(realm.slaves[0].host.address, ws)
        assert at_slave.kinit("jis", "old-pw") is not None  # still in!
        net.clock.advance(3600.0)
        with pytest.raises(KerberosError):
            at_slave.kinit("jis", "old-pw")

    def test_failover_client_sees_master_first(self, world):
        """The default client (master first in its list) never observes
        the window while the master is up — only slave-pinned or
        failed-over clients do."""
        net, realm = world
        realm.db.change_key(Principal("jis", "", REALM), new_password="new-pw")
        ws = realm.workstation()
        assert ws.client.kinit("jis", "new-pw") is not None
