"""Kerberos database library tests (paper Section 5)."""

import pytest

from repro.crypto import DesKey, KeyGenerator, string_to_key
from repro.database import (
    DatabaseError,
    KerberosDatabase,
    MasterKey,
    MemoryStore,
    NoSuchPrincipal,
    PrincipalExists,
    ReadOnlyDatabase,
)
from repro.database.schema import ATTR_DISABLED, ATTR_NO_TGT, DEFAULT_MAX_LIFE
from repro.principal import Principal

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def master():
    return MasterKey.from_password("master-password")


@pytest.fixture
def db(master):
    return KerberosDatabase(REALM, master)


@pytest.fixture
def keygen():
    return KeyGenerator(seed=b"db-tests")


def jis():
    return Principal("jis", "", REALM)


class TestRegistration:
    def test_add_with_password(self, db):
        record = db.add_principal(jis(), password="secret")
        assert record.name == "jis"
        assert db.principal_key(jis()) == string_to_key("secret")

    def test_add_with_key(self, db, keygen):
        key = keygen.session_key()
        db.add_principal(Principal("rlogin", "priam", REALM), key=key)
        assert db.principal_key(Principal("rlogin", "priam", REALM)) == key

    def test_duplicate_rejected(self, db):
        db.add_principal(jis(), password="a")
        with pytest.raises(PrincipalExists):
            db.add_principal(jis(), password="b")

    def test_key_xor_password_required(self, db, keygen):
        with pytest.raises(ValueError):
            db.add_principal(jis())
        with pytest.raises(ValueError):
            db.add_principal(jis(), key=keygen.session_key(), password="x")

    def test_default_expiration_years_out(self, db):
        record = db.add_principal(jis(), password="x", now=1000.0)
        assert record.expiration > 1000.0 + 4 * 365 * 24 * 3600

    def test_km_reserved(self, db):
        with pytest.raises(ValueError):
            db.add_principal(Principal("K", "M", REALM), password="x")

    def test_foreign_realm_rejected(self, db):
        with pytest.raises(NoSuchPrincipal):
            db.add_principal(Principal("bcn", "", "LCS.MIT.EDU"), password="x")

    def test_empty_realm_treated_as_local(self, db):
        db.add_principal(Principal("jis"), password="x")
        assert db.exists(Principal("jis", "", REALM))

    def test_default_max_life_is_8_hours(self, db):
        record = db.add_principal(jis(), password="x")
        assert record.max_life == DEFAULT_MAX_LIFE == 8 * 3600


class TestLookup:
    def test_missing_principal(self, db):
        with pytest.raises(NoSuchPrincipal):
            db.get_record(jis())

    def test_exists(self, db):
        assert not db.exists(jis())
        db.add_principal(jis(), password="x")
        assert db.exists(jis())

    def test_keys_sealed_at_rest(self, db, master):
        """The stored bytes must not contain the raw key (Section 5.3)."""
        db.add_principal(jis(), password="secret")
        raw_key = string_to_key("secret").key_bytes
        stored = db.store.get("jis")
        assert raw_key not in stored

    def test_list_excludes_km(self, db):
        db.add_principal(jis(), password="x")
        assert db.list_principals() == ["jis"]
        assert len(db) == 1

    def test_instances_are_distinct_principals(self, db):
        db.add_principal(Principal("treese", "", REALM), password="a")
        db.add_principal(Principal("treese", "root", REALM), password="b")
        assert db.principal_key(
            Principal("treese", "", REALM)
        ) != db.principal_key(Principal("treese", "root", REALM))


class TestMutation:
    def test_change_key_by_password(self, db):
        db.add_principal(jis(), password="old")
        updated = db.change_key(jis(), new_password="new", now=50.0)
        assert updated.key_version == 2
        assert db.principal_key(jis()) == string_to_key("new")

    def test_change_key_audit_fields(self, db):
        db.add_principal(jis(), password="old")
        updated = db.change_key(
            jis(), new_password="new", now=50.0, mod_by="jis.admin"
        )
        assert updated.mod_time == 50.0
        assert updated.mod_by == "jis.admin"

    def test_change_key_missing_principal(self, db):
        with pytest.raises(NoSuchPrincipal):
            db.change_key(jis(), new_password="x")

    def test_set_attributes(self, db):
        db.add_principal(jis(), password="x")
        record = db.set_attributes(jis(), ATTR_DISABLED)
        assert record.disabled
        assert record.tgt_allowed

    def test_attr_no_tgt(self, db):
        db.add_principal(jis(), password="x")
        record = db.set_attributes(jis(), ATTR_NO_TGT)
        assert not record.tgt_allowed

    def test_delete(self, db):
        db.add_principal(jis(), password="x")
        db.delete_principal(jis())
        assert not db.exists(jis())
        with pytest.raises(NoSuchPrincipal):
            db.delete_principal(jis())


class TestReadOnly:
    def test_slave_rejects_all_mutations(self, db):
        db.add_principal(jis(), password="x")
        slave = db.replica()
        slave.load_dump(db.dump())
        with pytest.raises(ReadOnlyDatabase):
            slave.add_principal(Principal("new", "", REALM), password="p")
        with pytest.raises(ReadOnlyDatabase):
            slave.change_key(jis(), new_password="p")
        with pytest.raises(ReadOnlyDatabase):
            slave.delete_principal(jis())
        with pytest.raises(ReadOnlyDatabase):
            slave.set_attributes(jis(), 0)

    def test_slave_can_read(self, db):
        db.add_principal(jis(), password="x")
        slave = db.replica()
        slave.load_dump(db.dump())
        assert slave.principal_key(jis()) == db.principal_key(jis())


class TestMasterKeyVerification:
    def test_wrong_master_key_rejected_on_open(self, db):
        db.add_principal(jis(), password="x")
        with pytest.raises(DatabaseError):
            KerberosDatabase(
                REALM, MasterKey.from_password("wrong"), store=db.store
            )

    def test_right_master_key_accepted_on_open(self, db, master):
        db.add_principal(jis(), password="x")
        reopened = KerberosDatabase(REALM, master, store=db.store)
        assert reopened.exists(jis())

    def test_missing_km_record(self, master):
        store = MemoryStore()
        store.put("orphan", b"junk")
        with pytest.raises(DatabaseError):
            KerberosDatabase(REALM, master, store=store)


class TestDumpLoad:
    def test_round_trip(self, db):
        db.add_principal(jis(), password="x")
        db.add_principal(Principal("bcn", "", REALM), password="y")
        slave = db.replica()
        count = slave.load_dump(db.dump(now=123.0))
        assert count == len(db.store)
        assert slave.dump_time == 123.0
        assert sorted(slave.list_principals()) == sorted(db.list_principals())

    def test_dump_carries_no_cleartext_keys(self, db):
        db.add_principal(jis(), password="hunter2")
        assert string_to_key("hunter2").key_bytes not in db.dump()

    def test_wrong_realm_dump_rejected(self, db, master):
        other = KerberosDatabase("LCS.MIT.EDU", master)
        with pytest.raises(DatabaseError):
            other.replica().load_dump(db.dump())

    def test_not_a_dump_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.replica().load_dump(b"random bytes here!")

    def test_truncated_dump_rejected(self, db):
        db.add_principal(jis(), password="x")
        blob = db.dump()
        with pytest.raises(DatabaseError):
            db.replica().load_dump(blob[:-5])

    def test_load_replaces_existing_contents(self, db):
        db.add_principal(jis(), password="x")
        slave = db.replica()
        slave.load_dump(db.dump())
        db.add_principal(Principal("bcn", "", REALM), password="y")
        db.delete_principal(jis())
        slave.load_dump(db.dump())
        assert not slave.exists(jis())
        assert slave.exists(Principal("bcn", "", REALM))

    def test_empty_realm_name_rejected(self, master):
        with pytest.raises(ValueError):
            KerberosDatabase("", master)
