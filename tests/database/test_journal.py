"""Unit tests for the update journal (the delta-propagation substrate)."""

import pytest

from repro.database import KerberosDatabase, MasterKey
from repro.database.journal import (
    OP_DELETE,
    OP_PUT,
    JournalEntry,
    UpdateJournal,
    default_epoch,
)
from repro.principal import Principal

REALM = "ATHENA.MIT.EDU"


class TestUpdateJournal:
    def test_append_assigns_contiguous_seqs(self):
        j = UpdateJournal(epoch=7)
        a = j.append(OP_PUT, "k1", b"v1", now=1.0)
        b = j.append(OP_DELETE, "k1", b"", now=2.0)
        assert (a.seq, b.seq) == (1, 2)
        assert j.last_seq == 2

    def test_entries_since(self):
        j = UpdateJournal(epoch=7)
        for i in range(5):
            j.append(OP_PUT, f"k{i}", b"v", now=float(i))
        assert [e.seq for e in j.entries_since(2)] == [3, 4, 5]
        assert j.entries_since(5) == []
        assert [e.seq for e in j.entries_since(0)] == [1, 2, 3, 4, 5]

    def test_entries_since_future_position_is_a_gap(self):
        """A position beyond last_seq comes from some other history —
        the journal cannot serve it."""
        j = UpdateJournal(epoch=7)
        j.append(OP_PUT, "k", b"v", now=0.0)
        assert j.entries_since(9) is None

    def test_compaction_bounds_the_journal(self):
        j = UpdateJournal(epoch=7, limit=3)
        for i in range(10):
            j.append(OP_PUT, f"k{i}", b"v", now=float(i))
        assert j.depth() == 3
        assert j.checkpoint_seq == 7
        # Positions at/after the checkpoint are servable...
        assert [e.seq for e in j.entries_since(7)] == [8, 9, 10]
        # ...older ones require a full dump.
        assert j.entries_since(6) is None

    def test_bump_epoch(self):
        j = UpdateJournal(epoch=7)
        assert j.bump_epoch() == 8
        assert j.epoch == 8

    def test_bad_opcode_rejected(self):
        j = UpdateJournal(epoch=7)
        with pytest.raises(ValueError):
            j.append(99, "k", b"v", now=0.0)

    def test_entry_round_trips(self):
        e = JournalEntry(seq=3, time=1.5, op=OP_PUT, key="jis", value=b"rec")
        assert JournalEntry.from_bytes(e.to_bytes()) == e

    def test_default_epoch_distinguishes_generations(self):
        assert default_epoch(REALM, 0) != default_epoch(REALM, 1)
        assert default_epoch(REALM) != default_epoch("OTHER.REALM")


class TestDatabaseJournaling:
    @pytest.fixture
    def db(self):
        return KerberosDatabase(REALM, MasterKey.from_password("mk"))

    def test_every_mutation_is_journaled(self, db):
        start = db.journal.last_seq
        jis = Principal("jis", "", REALM)
        db.add_principal(jis, password="pw", now=1.0)
        db.change_key(jis, new_password="pw2", now=2.0)
        db.set_attributes(jis, 1, now=3.0)
        db.set_max_life(jis, 3600.0, now=4.0)
        db.delete_principal(jis, now=5.0)
        entries = db.journal.entries_since(start)
        assert [e.op for e in entries] == [OP_PUT] * 4 + [OP_DELETE]
        assert [e.time for e in entries] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert all(e.key == "jis" for e in entries)

    def test_journal_values_match_store(self, db):
        jis = Principal("jis", "", REALM)
        db.add_principal(jis, password="pw", now=1.0)
        entry = db.journal.entries_since(db.journal.last_seq - 1)[0]
        assert entry.value == db.store.get("jis")

    def test_replica_has_no_journal(self, db):
        assert db.replica().journal is None

    def test_replaying_entries_reproduces_the_master(self, db):
        slave = db.replica()
        slave.load_dump(db.dump())
        jis = Principal("jis", "", REALM)
        bcn = Principal("bcn", "", REALM)
        from_seq = slave.loaded_seq
        db.add_principal(jis, password="pw", now=1.0)
        db.add_principal(bcn, password="pw", now=2.0)
        db.delete_principal(jis, now=3.0)
        slave.apply_entries(db.journal.entries_since(from_seq))
        assert list(slave.store.items()) == list(db.store.items())
        assert slave.loaded_seq == db.journal.last_seq

    def test_dump_carries_journal_position(self, db):
        jis = Principal("jis", "", REALM)
        db.add_principal(jis, password="pw", now=1.0)
        slave = db.replica()
        slave.load_dump(db.dump(now=9.0))
        assert slave.loaded_epoch == db.journal.epoch
        assert slave.loaded_seq == db.journal.last_seq
