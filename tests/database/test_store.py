"""Record store tests: interface contract for both implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import FileStore, MemoryStore, SqliteStore
from repro.database.store import StoreError


@pytest.fixture(params=["memory", "file", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    if request.param == "sqlite":
        return SqliteStore(":memory:")
    return FileStore(str(tmp_path / "kdb"))


class TestStoreContract:
    def test_get_missing(self, store):
        assert store.get("nobody") is None

    def test_put_get(self, store):
        store.put("jis", b"record-bytes")
        assert store.get("jis") == b"record-bytes"

    def test_put_replaces(self, store):
        store.put("jis", b"v1")
        store.put("jis", b"v2")
        assert store.get("jis") == b"v2"

    def test_delete(self, store):
        store.put("jis", b"v")
        assert store.delete("jis") is True
        assert store.get("jis") is None
        assert store.delete("jis") is False

    def test_len_and_contains(self, store):
        assert len(store) == 0
        store.put("a", b"1")
        store.put("b", b"2")
        assert len(store) == 2
        assert "a" in store
        assert "z" not in store

    def test_items_sorted(self, store):
        for key in ("zeta", "alpha", "mid"):
            store.put(key, key.encode())
        assert [k for k, _ in store.items()] == ["alpha", "mid", "zeta"]

    def test_keys(self, store):
        store.put("b", b"")
        store.put("a", b"")
        assert store.keys() == ["a", "b"]

    def test_clear(self, store):
        store.put("a", b"1")
        store.clear()
        assert len(store) == 0

    def test_type_checks(self, store):
        with pytest.raises(TypeError):
            store.put(b"bytes-key", b"v")
        with pytest.raises(TypeError):
            store.put("k", "string-value")

    def test_accepts_bytearray_value(self, store):
        store.put("k", bytearray(b"xyz"))
        assert store.get("k") == b"xyz"

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=20), st.binary(max_size=50), max_size=20
        )
    )
    @settings(max_examples=20)
    def test_contents_match_model(self, contents):
        store = MemoryStore()
        for k, v in contents.items():
            store.put(k, v)
        assert dict(store.items()) == contents


class TestFileStorePersistence:
    def test_reopen_preserves_data(self, tmp_path):
        path = str(tmp_path / "kdb")
        store = FileStore(path)
        store.put("jis", b"record")
        store.put("bcn", b"other")
        store.delete("bcn")
        reopened = FileStore(path)
        assert reopened.get("jis") == b"record"
        assert reopened.get("bcn") is None
        assert len(reopened) == 1

    def test_reopen_after_clear(self, tmp_path):
        path = str(tmp_path / "kdb")
        store = FileStore(path)
        store.put("a", b"1")
        store.clear()
        assert len(FileStore(path)) == 0

    def test_compact_preserves_live_data(self, tmp_path):
        import os

        path = str(tmp_path / "kdb")
        store = FileStore(path)
        for i in range(50):
            store.put("churn", f"v{i}".encode())
        size_before = os.path.getsize(path)
        store.compact()
        size_after = os.path.getsize(path)
        assert size_after < size_before
        assert FileStore(path).get("churn") == b"v49"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "notakdb"
        path.write_bytes(b"GARBAGE FILE")
        with pytest.raises(StoreError):
            FileStore(str(path))

    def test_corrupt_opcode_rejected(self, tmp_path):
        path = tmp_path / "kdb"
        path.write_bytes(b"KDB1" + b"\xff")
        with pytest.raises(StoreError):
            FileStore(str(path))

    def test_interchangeable_with_memory(self, tmp_path):
        """The paper's replaceable-module claim: same behaviour either way."""
        ops = [("put", "a", b"1"), ("put", "b", b"2"), ("delete", "a", None)]
        mem, fil = MemoryStore(), FileStore(str(tmp_path / "kdb"))
        for store in (mem, fil):
            for op, key, value in ops:
                if op == "put":
                    store.put(key, value)
                else:
                    store.delete(key)
        assert list(mem.items()) == list(fil.items())


class TestSqliteStorePersistence:
    def test_reopen_preserves_data(self, tmp_path):
        path = str(tmp_path / "kdb.sqlite")
        store = SqliteStore(path)
        store.put("jis", b"record")
        store.delete("jis")
        store.put("bcn", b"kept")
        store.close()
        reopened = SqliteStore(path)
        assert reopened.get("bcn") == b"kept"
        assert reopened.get("jis") is None

    def test_realm_runs_on_sqlite(self, tmp_path):
        """The whole KDC stack on a relational backend — the paper's
        INGRES configuration, modernized."""
        from repro.crypto import KeyGenerator
        from repro.database.admin_tools import kdb_init

        gen = KeyGenerator(seed=b"sqlite-realm")
        db = kdb_init(
            "ATHENA.MIT.EDU", "mpw", gen,
            store=SqliteStore(str(tmp_path / "realm.sqlite")),
        )
        from repro.principal import Principal

        db.add_principal(Principal("jis", "", "ATHENA.MIT.EDU"), password="pw")
        from repro.core import KerberosClient, KerberosServer
        from repro.netsim import Network

        net = Network()
        kdc_host = net.add_host("kerberos")
        KerberosServer(db, gen.fork(b"kdc")).attach(kdc_host)
        ws = net.add_host("ws")
        client = KerberosClient(ws, "ATHENA.MIT.EDU", [kdc_host.address])
        assert client.kinit("jis", "pw") is not None
