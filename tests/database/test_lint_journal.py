"""Journal-invariant lint: no store mutation bypasses the journaled API.

The delta protocol is only correct if the update journal sees *every*
mutation: a ``store.put`` that skips :meth:`KerberosDatabase._journal_put`
produces a master whose deltas silently omit records, and slaves that
"converge" to the wrong database.  An AST walk over ``src/repro`` keeps
the invariant honest: the only module allowed to touch
``.store.put`` / ``.store.delete`` / ``.store.clear`` is
:mod:`repro.database` itself (where the journaled wrappers and the
load-dump / apply-entries replica paths live).
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Attribute calls that constitute a raw record-store mutation.
MUTATING_ATTRS = {"put", "delete", "clear"}

#: The one package where raw store mutation is the implementation.
ALLOWED_PREFIX = "database/"


def _relative(path: Path) -> str:
    return str(path.relative_to(SRC)).replace("\\", "/")


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = _relative(path) if path.is_relative_to(SRC) else path.name
    if rel.startswith(ALLOWED_PREFIX):
        return []
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # <anything>.store.put/delete/clear(...) — mutating the record
        # store underneath the journal.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_ATTRS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "store"
        ):
            found.append((node.lineno, f".store.{func.attr}(...)"))
    return found


def test_no_store_mutation_outside_repro_database():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        violations = _violations(path)
        if violations:
            bad[str(path.relative_to(SRC.parent))] = violations
    assert not bad, (
        "record-store mutations bypassing the update journal "
        "(go through the KerberosDatabase mutation API instead):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, calls in bad.items()
            for line, what in calls
        )
    )


def test_the_journaled_wrappers_exist_where_allowed():
    """The sanctioned call sites are really inside repro/database."""
    db_module = (SRC / "database" / "db.py").read_text(encoding="utf-8")
    assert "_journal_put" in db_module
    assert "_journal_delete" in db_module


def test_lint_catches_a_bypassing_put(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "def sneak(db, key, value):\n"
        "    db.store.put(key, value)\n"
        "    db.store.delete(key)\n"
        "    self.db.store.clear()\n"
    )
    violations = {what for _, what in _violations(planted)}
    assert violations == {
        ".store.put(...)",
        ".store.delete(...)",
        ".store.clear(...)",
    }


def test_lint_permits_reads(tmp_path):
    """Reading the store (get/items/keys) is not a mutation."""
    planted = tmp_path / "reader.py"
    planted.write_text(
        "def peek(db):\n"
        "    db.store.get('jis')\n"
        "    list(db.store.items())\n"
        "    db.store.keys()\n"
    )
    assert _violations(planted) == []


def test_lint_permits_unrelated_puts(tmp_path):
    """A ``put`` on something that is not a ``.store`` (e.g. a cache)
    is out of scope."""
    planted = tmp_path / "cache.py"
    planted.write_text(
        "def warm(cache, key, value):\n"
        "    cache.put(key, value)\n"
    )
    assert _violations(planted) == []
