"""Access control list tests (paper Section 5.1)."""

import pytest

from repro.database import AccessControlList
from repro.database.acl import AclError
from repro.principal import Principal

REALM = "ATHENA.MIT.EDU"


def admin(name="jis"):
    return Principal(name, "admin", REALM)


class TestMembership:
    def test_add_and_check(self):
        acl = AccessControlList()
        acl.add(admin())
        assert acl.check(admin())
        assert admin() in acl

    def test_absent_principal_denied(self):
        acl = AccessControlList([admin("jis")])
        assert not acl.check(admin("bcn"))

    def test_null_instance_rejected(self):
        """The paper's convention: NULL-instance names never appear."""
        acl = AccessControlList()
        with pytest.raises(AclError):
            acl.add(Principal("jis", "", REALM))

    def test_other_instances_allowed(self):
        # The convention is about NULL instances; root etc. are permitted.
        acl = AccessControlList()
        acl.add(Principal("treese", "root", REALM))
        assert acl.check(Principal("treese", "root", REALM))

    def test_realm_matters(self):
        acl = AccessControlList([admin()])
        assert not acl.check(Principal("jis", "admin", "LCS.MIT.EDU"))

    def test_remove(self):
        acl = AccessControlList([admin()])
        acl.remove(admin())
        assert not acl.check(admin())
        acl.remove(admin())  # idempotent

    def test_len_and_entries(self):
        acl = AccessControlList([admin("a"), admin("b")])
        assert len(acl) == 2
        assert acl.entries() == [f"a.admin@{REALM}", f"b.admin@{REALM}"]


class TestFileFormat:
    def test_text_round_trip(self):
        acl = AccessControlList([admin("jis"), admin("bcn")])
        parsed = AccessControlList.from_text(acl.to_text())
        assert parsed.entries() == acl.entries()

    def test_comments_and_blanks_ignored(self):
        text = f"# administrators\n\njis.admin@{REALM}\n  \n"
        acl = AccessControlList.from_text(text)
        assert acl.check(admin("jis"))
        assert len(acl) == 1

    def test_default_realm_applied(self):
        acl = AccessControlList.from_text("jis.admin\n", default_realm=REALM)
        assert acl.check(admin("jis"))

    def test_bad_line_reports_lineno(self):
        with pytest.raises(AclError, match="line 2"):
            AccessControlList.from_text(f"jis.admin@{REALM}\nplain-user\n")

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "kerberos.acl")
        acl = AccessControlList([admin()])
        acl.save(path)
        assert AccessControlList.load(path).check(admin())
