"""Master database key tests (paper Section 5.3)."""

import pytest

from repro.crypto import DesKey, KeyGenerator
from repro.database import MasterKey
from repro.database.masterkey import MasterKeyError


@pytest.fixture
def master():
    return MasterKey.from_password("the-master-password")


@pytest.fixture
def keygen():
    return KeyGenerator(seed=b"mk-tests")


class TestSealing:
    def test_round_trip(self, master, keygen):
        key = keygen.session_key()
        assert master.unseal_key(master.seal_key(key)) == key

    def test_sealed_form_hides_key(self, master, keygen):
        key = keygen.session_key()
        assert key.key_bytes not in master.seal_key(key)

    def test_wrong_master_cannot_unseal(self, master, keygen):
        sealed = master.seal_key(keygen.session_key())
        other = MasterKey.from_password("different")
        with pytest.raises(MasterKeyError):
            other.unseal_key(sealed)

    def test_corrupted_sealed_key_rejected(self, master, keygen):
        sealed = bytearray(master.seal_key(keygen.session_key()))
        sealed[4] ^= 0xFF
        with pytest.raises(MasterKeyError):
            master.unseal_key(bytes(sealed))

    def test_deterministic_derivation(self):
        assert MasterKey.from_password("pw") == MasterKey.from_password("pw")
        assert MasterKey.from_password("pw") != MasterKey.from_password("pw2")


class TestChecksum:
    def test_verify_genuine(self, master):
        data = b"the database dump"
        assert master.verify_checksum(data, master.checksum(data))

    def test_reject_tampered(self, master):
        data = b"the database dump"
        mac = master.checksum(data)
        assert not master.verify_checksum(b"the database dUmp", mac)

    def test_reject_wrong_key(self, master):
        data = b"dump"
        other = MasterKey.from_password("not-the-master")
        assert not other.verify_checksum(data, master.checksum(data))


class TestStash:
    def test_stash_round_trip(self, master, tmp_path):
        path = str(tmp_path / ".k")
        master.stash(path)
        assert MasterKey.load_stash(path) == master

    def test_bad_stash_rejected(self, tmp_path):
        path = tmp_path / ".k"
        path.write_bytes(b"not a stash file at all")
        with pytest.raises(MasterKeyError):
            MasterKey.load_stash(str(path))

    def test_truncated_stash_rejected(self, master, tmp_path):
        path = tmp_path / ".k"
        master.stash(str(path))
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(MasterKeyError):
            MasterKey.load_stash(str(path))


class TestHygiene:
    def test_type_check(self):
        with pytest.raises(TypeError):
            MasterKey(b"raw bytes")

    def test_repr_hides_key(self, master):
        assert "sealed" in repr(master)
        assert master.des_key.key_bytes.hex() not in repr(master)

    def test_hashable(self, master):
        assert len({master, MasterKey.from_password("the-master-password")}) == 1

    def test_not_equal_to_other_types(self, master):
        assert master != "a string"
