"""Database administration program tests (paper Section 6.3)."""

import pytest

from repro.crypto import KeyGenerator, string_to_key
from repro.database import AccessControlList, KerberosDatabase, MasterKey
from repro.database.admin_tools import (
    ext_srvtab,
    kdb_init,
    kdb_util_dump,
    kdb_util_load,
    parse_srvtab,
    register_essential_admin,
    register_service,
)
from repro.database.schema import ATTR_NO_TGT
from repro.principal import Principal, kdbm_principal, tgs_principal

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def keygen():
    return KeyGenerator(seed=b"admin-tools")


@pytest.fixture
def db(keygen):
    return kdb_init(REALM, "master-pw", keygen)


class TestKdbInit:
    def test_essential_principals_present(self, db):
        assert db.exists(tgs_principal(REALM))
        assert db.exists(kdbm_principal(REALM))

    def test_kdbm_has_no_tgt_attribute(self, db):
        record = db.get_record(kdbm_principal(REALM))
        assert not record.tgt_allowed

    def test_tgs_allows_tgt(self, db):
        assert db.get_record(tgs_principal(REALM)).tgt_allowed

    def test_master_key_from_password(self, keygen):
        db = kdb_init(REALM, "pw", keygen)
        assert db.master_key == MasterKey.from_password("pw")

    def test_distinct_keys_for_essentials(self, db):
        assert db.principal_key(tgs_principal(REALM)) != db.principal_key(
            kdbm_principal(REALM)
        )


class TestAdminRegistration:
    def test_admin_instance_created_and_listed(self, db):
        acl = AccessControlList()
        admin = register_essential_admin(db, acl, "jis", "admin-pw")
        assert admin.instance == "admin"
        assert db.exists(admin)
        assert acl.check(admin)

    def test_admin_key_is_from_password(self, db):
        acl = AccessControlList()
        admin = register_essential_admin(db, acl, "jis", "admin-pw")
        assert db.principal_key(admin) == string_to_key("admin-pw")


class TestServiceRegistration:
    def test_random_key_returned_and_stored(self, db, keygen):
        service = Principal("rlogin", "priam", REALM)
        key = register_service(db, service, keygen)
        assert db.principal_key(service) == key

    def test_custom_max_life(self, db, keygen):
        service = Principal("nfs", "fileserver", REALM)
        register_service(db, service, keygen, max_life=3600.0)
        assert db.get_record(service).max_life == 3600.0


class TestDumpFile:
    def test_backup_restore(self, db, keygen, tmp_path):
        db.add_principal(Principal("jis", "", REALM), password="x", now=5.0)
        path = str(tmp_path / "backup.kdb")
        kdb_util_dump(db, path, now=10.0)
        restored = kdb_init(REALM, "master-pw", KeyGenerator(seed=b"other"))
        count = kdb_util_load(restored, path)
        assert count == len(db.store)
        assert restored.exists(Principal("jis", "", REALM))
        # Keys round-trip exactly through the file.
        assert restored.principal_key(
            Principal("jis", "", REALM)
        ) == db.principal_key(Principal("jis", "", REALM))


class TestSrvtab:
    def test_extract_and_parse(self, db, keygen):
        services = [
            Principal("rlogin", "priam", REALM),
            Principal("pop", "mailhost", REALM),
        ]
        for s in services:
            register_service(db, s, keygen)
        rows = parse_srvtab(ext_srvtab(db, services))
        assert [str(r[0]) for r in rows] == [str(s) for s in services]
        for principal, version, key_bytes in rows:
            assert version == 1
            assert db.principal_key(principal).key_bytes == key_bytes

    def test_key_version_tracks_changes(self, db, keygen):
        service = Principal("rlogin", "priam", REALM)
        register_service(db, service, keygen)
        db.change_key(service, new_key=keygen.session_key())
        (_, version, _) = parse_srvtab(ext_srvtab(db, [service]))[0]
        assert version == 2

    def test_not_a_srvtab(self):
        with pytest.raises(ValueError):
            parse_srvtab(b"garbage")
