"""The KdcLocator protocol: one discovery path, three implementations,
counted deprecation shims.

The api_redesign contract: ``KerberosClient`` asks a per-realm locator
for a failover-ordered address list; the legacy entry points (address
lists in the constructor, ``set_kdcs``, ``HesiodServer.set_kdc_list``,
``Realm.publish_kdcs``) survive one release as shims whose callers are
counted in ``api.deprecated_calls_total{api=...}`` — the removal
evidence is a counter that stays flat.
"""

import pytest

from repro.apps.hesiod import HesiodLocator, HesiodServer
from repro.core import KerberosClient, StaticLocator
from repro.core.locator import KdcLocator, count_deprecated
from repro.netsim import IPAddress, Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


def deprecated_calls(net, api: str) -> float:
    return net.metrics.counter(
        "api.deprecated_calls_total", {"api": api}
    ).value


class TestStaticLocator:
    def test_locate_preserves_failover_order(self):
        addrs = ["18.72.0.1", "18.72.0.2", "18.72.0.3"]
        locator = StaticLocator(addrs)
        assert locator.locate() == [IPAddress(a) for a in addrs]
        # The routing key is accepted and ignored: static lists serve
        # every principal from the same replica set.
        assert locator.locate("jis") == locator.locate(None)

    def test_set_addresses_repoints_in_place(self):
        locator = StaticLocator(["18.72.0.1"])
        locator.set_addresses(["18.72.0.9", "18.72.0.1"])
        assert locator.locate()[0] == IPAddress("18.72.0.9")

    def test_apply_referral_defaults_to_refresh(self):
        """The base-protocol fallback: any locator that cannot fold a
        referral in precisely at least drops its stale view."""

        class Spy(StaticLocator):
            refreshed = 0

            def refresh(self):
                self.refreshed += 1

        spy = Spy(["18.72.0.1"])
        KdcLocator.apply_referral(spy, object())
        assert spy.refreshed == 1


class TestHesiodLocator:
    def _realm_with_hesiod(self, net):
        realm = Realm(net, REALM, n_slaves=1)
        hesiod = HesiodServer().attach(net.add_host("hesiod"))
        realm.attach_hesiod(hesiod)
        return realm, hesiod

    def test_resolves_and_caches_the_kerberos_record(self):
        net = Network()
        realm, hesiod = self._realm_with_hesiod(net)
        ws_host = net.add_host("ws-hes")
        locator = HesiodLocator(ws_host, hesiod.host.address, REALM)
        assert locator.locate() == realm.kdc_addresses()
        # Cached: a second locate is free (no new Hesiod datagrams).
        net.reset_stats()
        locator.locate()
        assert net.stats["port:251"] == 0

    def test_refresh_sees_a_promotion(self):
        net = Network()
        realm, hesiod = self._realm_with_hesiod(net)
        ws_host = net.add_host("ws-hes")
        locator = HesiodLocator(ws_host, hesiod.host.address, REALM)
        old_first = locator.locate()[0]
        realm.promote_slave(0, demote_old=True)
        realm.repoint_clients()
        # Stale until told otherwise — then current.
        assert locator.locate()[0] == old_first
        locator.refresh()
        assert locator.locate()[0] == realm.master_host.address

    def test_login_through_a_hesiod_locator(self):
        net = Network()
        realm, hesiod = self._realm_with_hesiod(net)
        realm.add_user("jis", "jis-pw")
        ws = realm.workstation()
        ws.client.set_locator(
            REALM,
            HesiodLocator(ws.host, hesiod.host.address, REALM),
        )
        ws.client.kinit("jis", "jis-pw")
        assert ws.client.cache.tgt(REALM) is not None


class TestDeprecationShims:
    def test_modern_paths_count_nothing(self):
        net = Network()
        realm = Realm(net, REALM)
        realm.add_user("jis", "jis-pw")
        ws = realm.workstation()          # locator-based construction
        ws.client.kinit("jis", "jis-pw")
        hesiod = HesiodServer().attach(net.add_host("hesiod"))
        realm.attach_hesiod(hesiod)
        snapshot = net.metrics.snapshot()
        assert not any(
            "api.deprecated_calls_total" in key
            for key in snapshot.get("counters", snapshot)
        )

    def test_constructor_address_list_is_counted(self):
        net = Network()
        realm = Realm(net, REALM)
        host = net.add_host("ws-legacy")
        KerberosClient(host, REALM, kdc_addresses=realm.kdc_addresses())
        assert deprecated_calls(net, "KerberosClient.kdc_addresses") == 1.0

    def test_kdc_directory_is_counted_per_realm(self):
        net = Network()
        realm = Realm(net, REALM)
        host = net.add_host("ws-legacy")
        KerberosClient(
            host, REALM,
            kdc_addresses=realm.kdc_addresses(),
            kdc_directory={
                "LCS.MIT.EDU": realm.kdc_addresses(),
                "CS.WASHINGTON.EDU": realm.kdc_addresses(),
            },
        )
        assert deprecated_calls(net, "KerberosClient.kdc_directory") == 2.0

    def test_set_kdcs_counts_and_still_works(self):
        net = Network()
        realm = Realm(net, REALM, n_slaves=1)
        realm.add_user("jis", "jis-pw")
        realm.propagate()
        ws = realm.workstation()
        slave_first = [realm.slaves[0].host.address,
                       realm.master_host.address]
        ws.client.set_kdcs(REALM, slave_first)
        assert deprecated_calls(net, "KerberosClient.set_kdcs") == 1.0
        assert ws.client.kdcs(REALM)[0] == slave_first[0]
        ws.client.kinit("jis", "jis-pw")   # the shim still routes

    def test_hesiod_set_kdc_list_is_counted(self):
        net = Network()
        realm = Realm(net, REALM)
        hesiod = HesiodServer().attach(net.add_host("hesiod"))
        hesiod.set_kdc_list(REALM, realm.kdc_addresses())
        assert deprecated_calls(net, "HesiodServer.set_kdc_list") == 1.0

    def test_realm_publish_kdcs_is_counted(self):
        net = Network()
        realm = Realm(net, REALM)
        hesiod = HesiodServer().attach(net.add_host("hesiod"))
        realm.publish_kdcs(hesiod)
        assert deprecated_calls(net, "Realm.publish_kdcs") == 1.0

    def test_count_deprecated_tolerates_no_registry(self):
        count_deprecated(None, "anything")   # must not raise

    def test_client_requires_some_discovery(self):
        net = Network()
        host = net.add_host("ws-none")
        with pytest.raises(ValueError):
            KerberosClient(host, REALM)
