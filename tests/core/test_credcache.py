"""Credential cache tests (paper Sections 4.2 and 6.1)."""

import pytest

from repro.core import Credential, CredentialCache, Principal, tgs_principal
from repro.crypto import KeyGenerator

REALM = "ATHENA.MIT.EDU"
GEN = KeyGenerator(seed=b"cc-tests")


def cred(service, issue=0.0, life=8 * 3600.0):
    return Credential(
        service=service,
        ticket=b"sealed",
        session_key=GEN.session_key(),
        issue_time=issue,
        life=life,
        kvno=1,
    )


def rlogin():
    return Principal("rlogin", "priam", REALM)


class TestStoreAndGet:
    def test_get_stored(self):
        cache = CredentialCache()
        c = cred(rlogin())
        cache.store(c)
        assert cache.get(rlogin()) is c
        assert rlogin() in cache

    def test_get_missing(self):
        assert CredentialCache().get(rlogin()) is None

    def test_store_replaces(self):
        cache = CredentialCache()
        cache.store(cred(rlogin(), issue=0.0))
        newer = cred(rlogin(), issue=100.0)
        cache.store(newer)
        assert cache.get(rlogin()) is newer
        assert len(cache) == 1

    def test_expired_not_returned(self):
        """Section 6.1: after the lifetime passes, the application fails
        and the user must kinit — the cache must not serve dead tickets."""
        cache = CredentialCache()
        cache.store(cred(rlogin(), issue=0.0, life=100.0))
        assert cache.get(rlogin(), now=50.0) is not None
        assert cache.get(rlogin(), now=100.0) is None

    def test_get_without_now_skips_expiry_check(self):
        cache = CredentialCache()
        cache.store(cred(rlogin(), issue=0.0, life=1.0))
        assert cache.get(rlogin()) is not None


class TestTgtAccessors:
    def test_tgt(self):
        cache = CredentialCache()
        cache.store(cred(tgs_principal(REALM)))
        assert cache.tgt(REALM) is not None
        assert cache.tgt("LCS.MIT.EDU") is None

    def test_remote_tgt(self):
        cache = CredentialCache()
        cache.store(cred(tgs_principal(REALM, "LCS.MIT.EDU")))
        assert cache.remote_tgt(REALM, "LCS.MIT.EDU") is not None
        assert cache.remote_tgt(REALM, "CS.WASHINGTON.EDU") is None


class TestUserOperations:
    def test_klist_view_sorted(self):
        cache = CredentialCache()
        cache.store(cred(Principal("zephyr", "zhost", REALM)))
        cache.store(cred(Principal("pop", "mailhost", REALM)))
        names = [str(c.service) for c in cache.list()]
        assert names == sorted(names)
        assert len(names) == 2

    def test_kdestroy_wipes_everything(self):
        cache = CredentialCache(owner=Principal("jis", "", REALM))
        cache.store(cred(rlogin()))
        cache.store(cred(tgs_principal(REALM)))
        assert cache.destroy() == 2
        assert len(cache) == 0
        assert cache.owner is None

    def test_purge_expired(self):
        cache = CredentialCache()
        cache.store(cred(rlogin(), issue=0.0, life=10.0))
        cache.store(cred(tgs_principal(REALM), issue=0.0, life=1000.0))
        assert cache.purge_expired(now=500.0) == 1
        assert len(cache) == 1


class TestCredential:
    def test_expiry_math(self):
        c = cred(rlogin(), issue=100.0, life=50.0)
        assert c.expires == 150.0
        assert not c.expired(149.9)
        assert c.expired(150.0)
        assert c.remaining(120.0) == 30.0
        assert c.remaining(500.0) == 0.0
