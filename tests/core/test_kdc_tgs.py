"""Ticket-granting-server exchange tests (paper Figure 8) — exp F8."""

import pytest

from repro.core import (
    ErrorCode,
    KerberosClient,
    KerberosError,
    MessageType,
    Principal,
    TgsRequest,
    build_authenticator,
    encode_message,
    expect_reply,
    kdbm_principal,
    tgs_principal,
    unseal_ticket,
)
from repro.database.admin_tools import register_service
from repro.netsim.ports import KERBEROS_PORT

from tests.core.conftest import REALM


@pytest.fixture
def logged_in(client):
    client.kinit("jis", "jis-pw")
    return client


class TestServerTickets:
    def test_no_password_needed(self, logged_in, rlogin, net):
        """Figure 8's point: the TGT session key secures the exchange;
        the user's key plays no part."""
        service, _ = rlogin
        captured = []
        net.add_tap(lambda d: captured.append(d.payload))
        cred = logged_in.get_credential(service)
        assert cred.service == service
        from repro.crypto import string_to_key

        user_key = string_to_key("jis-pw").key_bytes
        for payload in captured:
            assert user_key not in payload

    def test_ticket_opens_with_service_key(self, logged_in, rlogin, ws):
        service, key = rlogin
        cred = logged_in.get_credential(service)
        ticket = unseal_ticket(cred.ticket, key)
        assert ticket.server.same_entity(service)
        assert str(ticket.client) == f"jis@{REALM}"
        assert ticket.address == ws.address.as_int

    def test_fresh_session_key_per_service(self, logged_in, rlogin, db, keygen):
        service, _ = rlogin
        other = Principal("pop", "mailhost", REALM)
        register_service(db, other, keygen)
        c1 = logged_in.get_credential(service)
        c2 = logged_in.get_credential(other)
        assert c1.session_key != c2.session_key

    def test_ticket_cached_and_reused(self, logged_in, rlogin, kdc):
        service, _ = rlogin
        logged_in.get_credential(service)
        before = kdc.tgs_requests
        logged_in.get_credential(service)
        assert kdc.tgs_requests == before  # cache hit, no new exchange

    def test_expired_cached_ticket_refetched(self, logged_in, rlogin, kdc, net):
        service, _ = rlogin
        logged_in.get_credential(service, life=60.0)
        net.clock.advance(61.0)
        logged_in.get_credential(service)
        assert kdc.tgs_requests == 2

    def test_lifetime_min_of_remaining_tgt_and_service_default(
        self, logged_in, rlogin, net, kdc
    ):
        """Paper: "The lifetime of the new ticket is the minimum of the
        remaining life for the ticket-granting ticket and the default for
        the service"."""
        service, _ = rlogin
        net.clock.advance(6 * 3600.0)  # TGT has 2 h left of its 8
        cred = logged_in.get_credential(service, life=8 * 3600.0)
        assert cred.life == pytest.approx(2 * 3600.0)

    def test_service_default_caps_lifetime(self, logged_in, db, keygen):
        service = Principal("short", "host", REALM)
        register_service(db, service, keygen, max_life=600.0)
        cred = logged_in.get_credential(service)
        assert cred.life == 600.0

    def test_unknown_service(self, logged_in):
        with pytest.raises(KerberosError) as err:
            logged_in.get_credential(Principal("nosuch", "svc", REALM))
        assert err.value.code == ErrorCode.KDC_SERVICE_UNKNOWN

    def test_expired_tgt_requires_kinit(self, logged_in, rlogin, net):
        """Section 6.1: after 8 hours the next Kerberos application
        fails; kinit is the remedy."""
        service, _ = rlogin
        net.clock.advance(9 * 3600.0)
        with pytest.raises(KerberosError) as err:
            logged_in.get_credential(service)
        assert "kinit" in err.value.message
        logged_in.kinit("jis", "jis-pw")
        assert logged_in.get_credential(service) is not None


class TestTgsValidation:
    def test_forged_tgt_rejected(self, kdc, ws, kdc_host, keygen):
        """A TGT sealed with anything but the real TGS key is garbage to
        the TGS."""
        from repro.core.ticket import Ticket, seal_ticket

        fake_key = keygen.session_key()
        session = keygen.session_key()
        tgt = seal_ticket(
            Ticket(
                server=tgs_principal(REALM),
                client=Principal("mallory", "", REALM),
                address=ws.address.as_int,
                timestamp=ws.clock.now(),
                life=28800.0,
                session_key=session.key_bytes,
            ),
            fake_key,
        )
        request = TgsRequest(
            service=Principal("rlogin", "priam", REALM),
            requested_life=3600.0,
            timestamp=ws.clock.now(),
            tgt_realm=REALM,
            tgt=tgt,
            authenticator=build_authenticator(
                Principal("mallory", "", REALM), ws.address, ws.clock.now(), session
            ),
        )
        raw = ws.rpc(
            kdc_host.address,
            KERBEROS_PORT,
            encode_message(MessageType.TGS_REQ, request),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.TGS_REP)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_replayed_tgs_request_rejected(self, logged_in, rlogin, ws, kdc_host):
        service, _ = rlogin
        tgt = logged_in.cache.tgt(REALM)
        now = ws.clock.now()
        request = TgsRequest(
            service=service,
            requested_life=3600.0,
            timestamp=now,
            tgt_realm=REALM,
            tgt=tgt.ticket,
            authenticator=build_authenticator(
                logged_in.principal, ws.address, now, tgt.session_key
            ),
        )
        wire = encode_message(MessageType.TGS_REQ, request)
        expect_reply(ws.rpc(kdc_host.address, KERBEROS_PORT, wire), MessageType.TGS_REP)
        raw = ws.rpc(kdc_host.address, KERBEROS_PORT, wire)
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.TGS_REP)
        assert err.value.code == ErrorCode.RD_AP_REPEAT

    def test_stolen_tgt_from_other_host_rejected(
        self, logged_in, rlogin, net, kdc_host
    ):
        """A thief replaying a captured TGT from another machine trips
        the address check."""
        service, _ = rlogin
        tgt = logged_in.cache.tgt(REALM)
        thief = net.add_host("thief", address="66.6.6.6")
        now = thief.clock.now()
        request = TgsRequest(
            service=service,
            requested_life=3600.0,
            timestamp=now,
            tgt_realm=REALM,
            tgt=tgt.ticket,
            authenticator=build_authenticator(
                logged_in.principal, thief.address, now, tgt.session_key
            ),
        )
        raw = thief.rpc(
            kdc_host.address,
            KERBEROS_PORT,
            encode_message(MessageType.TGS_REQ, request),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.TGS_REP)
        assert err.value.code == ErrorCode.RD_AP_BADD


class TestKdbmProtection:
    """Section 5.1: "the ticket-granting service will not issue tickets
    for it.  Instead, the authentication service itself must be used"."""

    def test_tgs_refuses_kdbm_tickets(self, logged_in):
        with pytest.raises(KerberosError) as err:
            logged_in.get_credential(kdbm_principal(REALM))
        assert err.value.code == ErrorCode.KDC_PR_NOTGT

    def test_as_issues_kdbm_tickets(self, logged_in):
        """The AS path works — it forces a password entry."""
        cred = logged_in.as_exchange(
            Principal("jis", "", REALM), "jis-pw", kdbm_principal(REALM)
        )
        assert cred.service.same_entity(kdbm_principal(REALM))
