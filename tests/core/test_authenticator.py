"""Authenticator tests (paper Figure 4) — experiment F4."""

import pytest

from repro.core import (
    Authenticator,
    ErrorCode,
    KerberosError,
    Principal,
    build_authenticator,
    unseal_authenticator,
)
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

GEN = KeyGenerator(seed=b"auth-tests")
SESSION_KEY = GEN.session_key()
CLIENT = Principal("jis", "", "ATHENA.MIT.EDU")
ADDR = IPAddress("18.72.0.100")


class TestFigure4Fields:
    def test_fields_match_figure_4(self):
        names = [f.name for f in Authenticator.FIELDS]
        # {c, addr, timestamp} plus the optional krb_mk_req data checksum.
        assert names == ["client", "address", "timestamp", "checksum"]

    def test_round_trip(self):
        blob = build_authenticator(CLIENT, ADDR, 123.0, SESSION_KEY)
        auth = unseal_authenticator(blob, SESSION_KEY)
        assert auth.client == CLIENT
        assert auth.client_address == ADDR
        assert auth.timestamp == 123.0
        assert auth.checksum == 0

    def test_checksum_carried(self):
        blob = build_authenticator(CLIENT, ADDR, 1.0, SESSION_KEY, checksum=0xDEAD)
        assert unseal_authenticator(blob, SESSION_KEY).checksum == 0xDEAD


class TestSessionKeyBinding:
    def test_requires_session_key(self):
        """A ticket thief without the session key can neither read nor
        forge an authenticator — the property that makes stolen tickets
        useless on their own."""
        blob = build_authenticator(CLIENT, ADDR, 123.0, SESSION_KEY)
        with pytest.raises(KerberosError) as err:
            unseal_authenticator(blob, GEN.session_key())
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_tamper_detected(self):
        blob = bytearray(build_authenticator(CLIENT, ADDR, 123.0, SESSION_KEY))
        blob[0] ^= 1
        with pytest.raises(KerberosError):
            unseal_authenticator(bytes(blob), SESSION_KEY)

    def test_contents_hidden(self):
        blob = build_authenticator(CLIENT, ADDR, 123.0, SESSION_KEY)
        assert b"jis" not in blob


class TestFreshness:
    def test_client_builds_new_one_each_time(self):
        """"A new one must be generated each time" — distinct timestamps
        give distinct ciphertexts, so the replay cache can tell them
        apart (and so can an eavesdropper comparing bytes, which is fine:
        uniqueness is the goal, not unlinkability)."""
        a = build_authenticator(CLIENT, ADDR, 100.0, SESSION_KEY)
        b = build_authenticator(CLIENT, ADDR, 101.0, SESSION_KEY)
        assert a != b

    def test_identical_inputs_identical_bytes(self):
        # Determinism matters for the replay-detection tests: an exact
        # replay is byte-identical.
        a = build_authenticator(CLIENT, ADDR, 100.0, SESSION_KEY)
        b = build_authenticator(CLIENT, ADDR, 100.0, SESSION_KEY)
        assert a == b

    def test_address_normalization(self):
        blob = build_authenticator(CLIENT, "18.72.0.100", 1.0, SESSION_KEY)
        assert unseal_authenticator(blob, SESSION_KEY).client_address == ADDR
