"""End-to-end tests of the full Figure 9 protocol flow — exp F9.

Figure 9 summarizes the three phases:

1. AS exchange  — (c, tgs) -> {K_c,tgs, {T_c,tgs}K_tgs}K_c
2. TGS exchange — (s, {T_c,tgs}K_tgs, A_c) -> {K_c,s, {T_c,s}K_s}K_c,tgs
3. AP exchange  — ({T_c,s}K_s, A_c) -> service (+ optional {ts+1}K_c,s)
"""

import pytest

from repro.core import (
    Principal,
    ReplayCache,
    SrvTab,
    krb_mk_rep,
    krb_rd_req,
)
from repro.netsim.ports import KERBEROS_PORT

from tests.core.conftest import REALM


class TestFigure9:
    def test_three_phases_six_messages(self, client, kdc, rlogin, ws, net):
        """The complete login-to-service path is exactly three round
        trips: AS, TGS, AP."""
        service, key = rlogin
        net.reset_stats()

        client.kinit("jis", "jis-pw")                       # phase 1
        request, cred, ts = client.mk_req(service, mutual=True)  # phase 2
        ctx = krb_rd_req(request, service, key, ws.address, 0.0)  # phase 3 (in-process)
        reply = krb_mk_rep(ctx)
        client.rd_rep(reply, ts, cred)

        # Phases 1 and 2 each cost one KDC round trip (2 datagrams each).
        assert net.stats["port:750"] == 2
        assert net.stats["messages"] == 4

    def test_key_usage_chain(self, client, kdc, rlogin, ws, db):
        """Verify exactly which key opens which envelope, per Figure 9."""
        from repro.core import tgs_principal, unseal_ticket
        from repro.crypto import string_to_key

        service, service_key = rlogin
        client.kinit("jis", "jis-pw")
        tgt_cred = client.cache.tgt(REALM)

        # The TGT is opaque to the client but opens with the TGS key.
        tgs_key = db.principal_key(tgs_principal(REALM))
        tgt = unseal_ticket(tgt_cred.ticket, tgs_key)
        assert tgt.session_key == tgt_cred.session_key.key_bytes

        # The service ticket opens with the service key and carries a
        # session key distinct from the TGT's.
        service_cred = client.get_credential(service)
        ticket = unseal_ticket(service_cred.ticket, service_key)
        assert ticket.session_key == service_cred.session_key.key_bytes
        assert ticket.session_key != tgt.session_key

        # And the user's password key opens neither ticket.
        user_key = string_to_key("jis-pw")
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            unseal_ticket(tgt_cred.ticket, user_key)
        with pytest.raises(KerberosError):
            unseal_ticket(service_cred.ticket, user_key)

    def test_transparency_multiple_services(self, client, kdc, db, keygen, ws):
        """Section 1's transparency requirement: after one password entry
        the user reaches any number of services."""
        from repro.database.admin_tools import register_service

        services = []
        for name, host in (("rlogin", "priam"), ("pop", "mailhost"), ("nfs", "fs1")):
            s = Principal(name, host, REALM)
            services.append((s, register_service(db, s, keygen)))

        client.kinit("jis", "jis-pw")  # the only password entry
        cache = ReplayCache()
        for service, key in services:
            request, _, _ = client.mk_req(service)
            ctx = krb_rd_req(
                request, service, key, ws.address, ws.clock.now(), cache
            )
            assert str(ctx.client) == f"jis@{REALM}"

    def test_two_users_do_not_interfere(self, net, kdc, kdc_host, rlogin, db):
        from repro.core import KerberosClient

        service, key = rlogin
        ws1 = net.add_host("ws-a")
        ws2 = net.add_host("ws-b")
        c1 = KerberosClient(ws1, REALM, [kdc_host.address])
        c2 = KerberosClient(ws2, REALM, [kdc_host.address])
        c1.kinit("jis", "jis-pw")
        c2.kinit("bcn", "bcn-pw")

        cache = ReplayCache()
        r1, _, _ = c1.mk_req(service)
        r2, _, _ = c2.mk_req(service)
        ctx1 = krb_rd_req(r1, service, key, ws1.address, 0.0, cache)
        ctx2 = krb_rd_req(r2, service, key, ws2.address, 0.0, cache)
        assert ctx1.client.name == "jis"
        assert ctx2.client.name == "bcn"
        assert ctx1.session_key != ctx2.session_key

    def test_users_ticket_unusable_from_other_workstation(
        self, net, kdc, kdc_host, rlogin
    ):
        """Credentials stolen from one workstation fail the address check
        when presented from another."""
        from repro.core import ErrorCode, KerberosClient, KerberosError, krb_mk_req

        service, key = rlogin
        ws1 = net.add_host("victim-ws")
        thief_ws = net.add_host("thief-ws")
        victim = KerberosClient(ws1, REALM, [kdc_host.address])
        victim.kinit("jis", "jis-pw")
        cred = victim.get_credential(service)

        # The thief has the full credential (ticket AND session key).
        stolen_req = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=cred.session_key,
            client=Principal("jis", "", REALM),
            client_address=thief_ws.address,  # their own address
            now=thief_ws.clock.now(),
        )
        with pytest.raises(KerberosError) as err:
            krb_rd_req(stolen_req, service, key, thief_ws.address, 0.0)
        assert err.value.code == ErrorCode.RD_AP_BADD
