"""Principal naming tests (paper Section 3, Figure 2) — experiment F2."""

import pytest
from hypothesis import given, strategies as st

from repro.principal import (
    ADMIN_INSTANCE,
    Principal,
    PrincipalError,
    kdbm_principal,
    tgs_principal,
)

# The four example names printed in Figure 2 of the paper.
FIGURE_2_EXAMPLES = [
    ("bcn", ("bcn", "", "")),
    ("treese.root", ("treese", "root", "")),
    ("jis@LCS.MIT.EDU", ("jis", "", "LCS.MIT.EDU")),
    ("rlogin.priam@ATHENA.MIT.EDU", ("rlogin", "priam", "ATHENA.MIT.EDU")),
]


class TestFigure2:
    @pytest.mark.parametrize("text,parts", FIGURE_2_EXAMPLES)
    def test_paper_examples_parse(self, text, parts):
        p = Principal.parse(text)
        assert (p.name, p.instance, p.realm) == parts

    @pytest.mark.parametrize("text,parts", FIGURE_2_EXAMPLES)
    def test_paper_examples_round_trip(self, text, parts):
        assert str(Principal.parse(text)) == text


class TestParsing:
    def test_default_realm(self):
        p = Principal.parse("bcn", default_realm="ATHENA.MIT.EDU")
        assert p.realm == "ATHENA.MIT.EDU"

    def test_explicit_realm_wins_over_default(self):
        p = Principal.parse("jis@LCS.MIT.EDU", default_realm="ATHENA.MIT.EDU")
        assert p.realm == "LCS.MIT.EDU"

    def test_instance_may_contain_dots(self):
        p = Principal.parse("krbtgt.LCS.MIT.EDU@ATHENA.MIT.EDU")
        assert p.name == "krbtgt"
        assert p.instance == "LCS.MIT.EDU"

    @pytest.mark.parametrize(
        "bad", ["", "@REALM", "name@", "a@b@c", "name.", ".instance"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PrincipalError):
            Principal.parse(bad)

    def test_none_rejected(self):
        with pytest.raises(PrincipalError):
            Principal.parse(None)

    def test_component_length_limit(self):
        with pytest.raises(PrincipalError):
            Principal("x" * 41)

    def test_name_may_not_contain_separators(self):
        with pytest.raises(PrincipalError):
            Principal("has@at")
        with pytest.raises(PrincipalError):
            Principal("", "inst")

    @given(
        st.text(
            alphabet=st.characters(blacklist_characters=".@", min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=20,
        ),
        st.text(
            alphabet=st.characters(blacklist_characters="@", min_codepoint=33, max_codepoint=126),
            max_size=20,
        ).filter(lambda s: not s.startswith(".")),
    )
    def test_parse_format_round_trip(self, name, instance):
        if instance.startswith(".") or (instance and instance[0] == "."):
            return
        p = Principal(name, instance, "ATHENA.MIT.EDU")
        assert Principal.parse(str(p)).same_entity(p)


class TestDerivedForms:
    def test_with_realm(self):
        p = Principal("bcn").with_realm("CS.WASHINGTON.EDU")
        assert str(p) == "bcn@CS.WASHINGTON.EDU"

    def test_admin_principal(self):
        admin = Principal("jis", "", "ATHENA.MIT.EDU").admin_principal()
        assert admin.instance == ADMIN_INSTANCE
        assert admin.is_admin

    def test_db_key_local_form(self):
        assert Principal("rlogin", "priam", "ATHENA.MIT.EDU").db_key() == "rlogin.priam"
        assert Principal("bcn", "", "X").db_key() == "bcn"

    def test_same_entity(self):
        a = Principal("jis", "", "ATHENA.MIT.EDU")
        assert a.same_entity(Principal("jis", "", "ATHENA.MIT.EDU"))
        assert not a.same_entity(Principal("jis", "", "LCS.MIT.EDU"))

    def test_wire_round_trip(self):
        p = Principal("rlogin", "priam", "ATHENA.MIT.EDU")
        assert Principal.from_bytes(p.to_bytes()) == p

    def test_repr(self):
        assert "treese.root" in repr(Principal("treese", "root"))


class TestWellKnownPrincipals:
    def test_local_tgs(self):
        tgs = tgs_principal("ATHENA.MIT.EDU")
        assert tgs.is_tgs
        assert str(tgs) == "krbtgt.ATHENA.MIT.EDU@ATHENA.MIT.EDU"

    def test_cross_realm_tgs(self):
        """Section 7.2: the remote TGS as registered locally."""
        remote = tgs_principal("ATHENA.MIT.EDU", "LCS.MIT.EDU")
        assert remote.is_tgs
        assert remote.instance == "LCS.MIT.EDU"
        assert remote.realm == "ATHENA.MIT.EDU"

    def test_tgs_requires_realm(self):
        with pytest.raises(PrincipalError):
            tgs_principal("")

    def test_kdbm(self):
        kdbm = kdbm_principal("ATHENA.MIT.EDU")
        assert kdbm.is_kdbm
        assert str(kdbm) == "changepw.kerberos@ATHENA.MIT.EDU"

    def test_user_is_not_tgs_or_kdbm(self):
        p = Principal("jis", "", "ATHENA.MIT.EDU")
        assert not p.is_tgs
        assert not p.is_kdbm
        assert not p.is_admin
