"""Discovery-plane lint: KDC selection flows through locators only.

Two AST walks over ``src/repro`` keep the api_redesign honest after
the deprecation window closes:

* No module outside the shim-defining files may *call* a deprecated
  discovery entry point (``set_kdcs``, ``set_kdc_list``,
  ``publish_kdcs``) or pass the legacy ``kdc_addresses=`` /
  ``kdc_directory=`` keywords — new code must route through
  :class:`~repro.core.locator.KdcLocator`.
* No module outside ``repro/realm`` may embed a literal KDC address
  (a dotted-quad string): addresses are runtime data answered by a
  locator, never constants.  The realm package is the one place that
  *assigns* addresses (bootstrap owns the hosts), and ``repro/netsim``
  is exempt as the address type's home.
"""

import ast
from pathlib import Path

import pytest

pytestmark = pytest.mark.shard

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Deprecated discovery entry points, and the one module allowed to
#: define (and therefore mention) each.
SHIM_CALLS = {
    "set_kdcs": {"core/client.py"},
    "set_kdc_list": {"apps/hesiod.py"},
    "publish_kdcs": {"realm/bootstrap.py"},
}

#: Legacy constructor keywords, same rule: only the defining module.
SHIM_KEYWORDS = {
    "kdc_addresses": {"core/client.py"},
    "kdc_directory": {"core/client.py"},
}

#: Packages allowed to hold dotted-quad literals (see module docstring).
ADDRESS_LITERAL_ALLOWED_PREFIXES = ("realm/", "netsim/")


def _is_dotted_quad(value) -> bool:
    if not isinstance(value, str):
        return False
    parts = value.split(".")
    return len(parts) == 4 and all(
        p.isdigit() and int(p) <= 255 for p in parts
    )


def _violations(path: Path):
    """(lineno, what) pairs for every banned construct in one module."""
    rel = str(path.relative_to(SRC))
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in SHIM_CALLS and rel not in SHIM_CALLS[name]:
                found.append((node.lineno, f"call to deprecated {name}()"))
            for keyword in node.keywords:
                if (
                    keyword.arg in SHIM_KEYWORDS
                    and rel not in SHIM_KEYWORDS[keyword.arg]
                ):
                    found.append(
                        (node.lineno, f"legacy keyword {keyword.arg}=")
                    )
        elif isinstance(node, ast.Constant) and _is_dotted_quad(node.value):
            if not rel.startswith(ADDRESS_LITERAL_ALLOWED_PREFIXES):
                found.append(
                    (node.lineno, f"KDC address literal {node.value!r}")
                )
    return found


def test_no_legacy_discovery_outside_the_shims():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        lines = _violations(path)
        if lines:
            bad[str(path.relative_to(SRC))] = lines
    assert not bad, (
        "discovery must flow through KdcLocator "
        "(src lint, tests/examples are exempt):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, pairs in bad.items()
            for line, what in pairs
        )
    )


def test_lint_catches_planted_offenders(tmp_path):
    """Each banned construct is actually detected by the walk."""
    planted = tmp_path / "offender.py"
    planted.write_text(
        "client.set_kdcs('R', ['18.72.0.1'])\n"
        "hesiod.set_kdc_list('R', [])\n"
        "realm.publish_kdcs(hesiod)\n"
        "KerberosClient(host, 'R', kdc_addresses=[])\n"
        "KerberosClient(host, 'R', kdc_directory={})\n"
        "ADDR = '18.72.0.100'\n"
    )
    # Pose as a module outside every allowance.
    rel_dir = SRC / "apps"
    copy = rel_dir / "_lint_probe_offender.py"
    try:
        copy.write_text(planted.read_text())
        found = _violations(copy)
    finally:
        copy.unlink()
    kinds = sorted(what for _line, what in found)
    assert len(found) == 7  # 5 calls/keywords + 2 address literals
    assert any("set_kdcs" in k for k in kinds)
    assert any("set_kdc_list" in k for k in kinds)
    assert any("publish_kdcs" in k for k in kinds)
    assert any("kdc_addresses" in k for k in kinds)
    assert any("kdc_directory" in k for k in kinds)
    assert any("address literal" in k for k in kinds)


def test_shim_modules_still_define_their_shims():
    """Sanity: the allowances point at real definitions — if a shim is
    finally removed, drop its allowance in the same commit."""
    client = (SRC / "core" / "client.py").read_text()
    hesiod = (SRC / "apps" / "hesiod.py").read_text()
    bootstrap = (SRC / "realm" / "bootstrap.py").read_text()
    assert "def set_kdcs" in client
    assert "def set_kdc_list" in hesiod
    assert "def publish_kdcs" in bootstrap
