"""Failure injection: the protocols over a lossy network.

The 1988 exchanges ran over UDP; datagrams get lost.  The client
retransmits (with fresh authenticators — a verbatim TGS resend would be
indistinguishable from a replay at the KDC).
"""

import pytest

from repro.core import KerberosClient, KerberosServer, Principal
from repro.crypto import KeyGenerator
from repro.database.admin_tools import kdb_init, register_service
from repro.netsim import Loss, Network, Unreachable

REALM = "ATHENA.MIT.EDU"


def build(loss_rate, seed=0, retries=3):
    net = Network(seed=seed)
    if loss_rate:
        net.faults.add(Loss(loss_rate))
    gen = KeyGenerator(seed=b"lossy")
    db = kdb_init(REALM, "mpw", gen)
    db.add_principal(Principal("jis", "", REALM), password="pw")
    service = Principal("rlogin", "priam", REALM)
    register_service(db, service, gen)
    kdc_host = net.add_host("kerberos")
    KerberosServer(db, gen.fork(b"kdc")).attach(kdc_host)
    ws = net.add_host("ws")
    client = KerberosClient(ws, REALM, [kdc_host.address], retries=retries)
    return net, client, service


class TestRetransmission:
    def test_moderate_loss_login_succeeds(self):
        """With 20% loss and 3 retries, logins nearly always succeed."""
        successes = 0
        for seed in range(20):
            net, client, _ = build(loss_rate=0.2, seed=seed)
            try:
                client.kinit("jis", "pw")
                successes += 1
            except Unreachable:
                pass
        assert successes >= 18

    def test_tgs_retry_uses_fresh_authenticator(self):
        """The critical case: the KDC processed the request but the reply
        was lost.  The retry must not be rejected as a replay."""
        net, client, service = build(loss_rate=0.0)
        client.kinit("jis", "pw")

        # Drop exactly one TGS *reply* (the next datagram leaving port 750).
        state = {"dropped": False}

        def drop_one_reply(datagram):
            if datagram.src_port == 750 and not state["dropped"]:
                state["dropped"] = True
                return None
            return datagram

        net.add_interceptor(drop_one_reply)
        cred = client.get_credential(service)  # must succeed via retry
        assert cred is not None
        assert state["dropped"]

    def test_total_loss_raises_unreachable(self):
        net, client, _ = build(loss_rate=0.0)
        net.add_interceptor(lambda d: None)  # black hole
        with pytest.raises(Unreachable):
            client.kinit("jis", "pw")

    def test_retry_count_respected(self):
        """A black-holed network sees exactly retries x addresses
        attempts."""
        net, client, _ = build(loss_rate=0.0, retries=4)
        seen = []

        def count_and_drop(datagram):
            if datagram.dst_port == 750:
                seen.append(datagram)
                return None
            return datagram

        net.add_interceptor(count_and_drop)
        with pytest.raises(Unreachable):
            client.kinit("jis", "pw")
        assert len(seen) == 4

    def test_invalid_retries(self):
        net = Network()
        host = net.add_host("ws")
        with pytest.raises(ValueError):
            KerberosClient(host, REALM, ["1.2.3.4"], retries=0)

    def test_loss_on_as_exchange_reply(self):
        """Losing an AS reply is harmless: the AS keeps no replay state,
        and the echoed timestamp still matches."""
        net, client, _ = build(loss_rate=0.0)
        state = {"dropped": False}

        def drop_first_reply(datagram):
            if datagram.src_port == 750 and not state["dropped"]:
                state["dropped"] = True
                return None
            return datagram

        net.add_interceptor(drop_first_reply)
        tgt = client.kinit("jis", "pw")
        assert tgt is not None
