"""Workstation client library tests: kinit, failover, mutual auth."""

import pytest

from repro.core import (
    ErrorCode,
    KerberosClient,
    KerberosError,
    KerberosServer,
    Principal,
    ReplayCache,
    krb_mk_rep,
    krb_rd_req,
    tgs_principal,
)
from repro.netsim import Unreachable

from tests.core.conftest import REALM


class TestKinit:
    def test_sets_owner(self, client, kdc):
        client.kinit("jis", "jis-pw")
        assert str(client.principal) == f"jis@{REALM}"

    def test_tgt_in_cache(self, client, kdc):
        client.kinit("jis", "jis-pw")
        assert client.cache.tgt(REALM) is not None

    def test_wrong_password(self, client, kdc):
        with pytest.raises(KerberosError) as err:
            client.kinit("jis", "wrong")
        assert err.value.code == ErrorCode.INTK_BADPW

    def test_unknown_user(self, client, kdc):
        with pytest.raises(KerberosError) as err:
            client.kinit("mallory", "x")
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN

    def test_privileged_instance_login(self, client, kdc, db):
        db.add_principal(Principal("treese", "root", REALM), password="root-pw")
        client.kinit("treese", "root-pw", instance="root")
        assert str(client.principal) == f"treese.root@{REALM}"

    def test_requires_kdc_address(self, ws):
        with pytest.raises(ValueError):
            KerberosClient(ws, REALM, [])


class TestFailover:
    """Figure 10: auth still works when the master is down, via slaves."""

    def test_second_kdc_used_when_first_down(self, net, db, keygen, ws):
        master_host = net.add_host("kerberos-master")
        slave_host = net.add_host("kerberos-1")
        KerberosServer(db, keygen.fork(b"m")).attach(master_host)
        slave_db = db.replica()
        slave_db.load_dump(db.dump())
        KerberosServer(slave_db, keygen.fork(b"s")).attach(slave_host)

        client = KerberosClient(
            ws, REALM, [master_host.address, slave_host.address]
        )
        net.set_down("kerberos-master")
        cred = client.kinit("jis", "jis-pw")  # served by the slave
        assert cred is not None

    def test_all_kdcs_down(self, net, db, keygen, ws):
        host = net.add_host("kerberos-only")
        KerberosServer(db, keygen.fork(b"m")).attach(host)
        client = KerberosClient(ws, REALM, [host.address])
        net.set_down("kerberos-only")
        with pytest.raises(Unreachable):
            client.kinit("jis", "jis-pw")


class TestMkReq:
    def test_full_ap_exchange(self, client, kdc, rlogin, ws, server_host):
        service, key = rlogin
        client.kinit("jis", "jis-pw")
        request, cred, sent_ts = client.mk_req(service, mutual=True)
        ctx = krb_rd_req(
            request, service, key, ws.address, server_host.clock.now(),
            replay_cache=ReplayCache(),
        )
        assert str(ctx.client) == f"jis@{REALM}"
        client.rd_rep(krb_mk_rep(ctx), sent_ts, cred)

    def test_mk_req_fetches_ticket_automatically(self, client, kdc, rlogin):
        service, _ = rlogin
        client.kinit("jis", "jis-pw")
        assert client.cache.get(service) is None
        client.mk_req(service)
        assert client.cache.get(service) is not None

    def test_successive_requests_have_distinct_timestamps(
        self, client, kdc, rlogin
    ):
        service, _ = rlogin
        client.kinit("jis", "jis-pw")
        _, _, t1 = client.mk_req(service)
        _, _, t2 = client.mk_req(service)
        assert t2 > t1

    def test_mk_req_without_login(self, client, kdc, rlogin):
        service, _ = rlogin
        with pytest.raises(KerberosError):
            client.mk_req(service)


class TestUserCommands:
    def test_klist_shows_accumulated_tickets(self, client, kdc, rlogin):
        """Section 6.1: the user "may be surprised at all the tickets
        which have silently been obtained on her/his behalf"."""
        service, _ = rlogin
        client.kinit("jis", "jis-pw")
        client.get_credential(service)
        names = [str(c.service) for c in client.klist()]
        assert str(tgs_principal(REALM)) in names
        assert str(service) in names

    def test_kdestroy(self, client, kdc, rlogin):
        service, _ = rlogin
        client.kinit("jis", "jis-pw")
        client.get_credential(service)
        assert client.kdestroy() == 2
        assert client.klist() == []
        assert client.principal is None
