"""Ticket tests (paper Figure 3) — experiment F3."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ErrorCode, KerberosError, Principal, Ticket, seal_ticket, unseal_ticket
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

REALM = "ATHENA.MIT.EDU"
GEN = KeyGenerator(seed=b"ticket-tests")
SERVER_KEY = GEN.session_key()
SESSION_KEY = GEN.session_key()


def make_ticket(**overrides):
    values = dict(
        server=Principal("rlogin", "priam", REALM),
        client=Principal("jis", "", REALM),
        address=IPAddress("18.72.0.100").as_int,
        timestamp=1000.0,
        life=8 * 3600.0,
        session_key=SESSION_KEY.key_bytes,
    )
    values.update(overrides)
    return Ticket(**values)


class TestFigure3Fields:
    """The ticket contains exactly s, c, addr, timestamp, life, K_s,c."""

    def test_field_names_match_figure_3(self):
        assert [f.name for f in Ticket.FIELDS] == [
            "server",
            "client",
            "address",
            "timestamp",
            "life",
            "session_key",
        ]

    def test_round_trip_plaintext(self):
        t = make_ticket()
        assert Ticket.from_bytes(t.to_bytes()) == t

    def test_session_key_accessor(self):
        assert make_ticket().key == SESSION_KEY

    def test_client_address_accessor(self):
        assert make_ticket().client_address == IPAddress("18.72.0.100")


class TestSealing:
    def test_round_trip_sealed(self):
        blob = seal_ticket(make_ticket(), SERVER_KEY)
        assert unseal_ticket(blob, SERVER_KEY) == make_ticket()

    def test_sealed_ticket_is_opaque(self):
        """Encrypted in the server's key: the client (or a thief) sees
        neither names nor the session key."""
        blob = seal_ticket(make_ticket(), SERVER_KEY)
        assert b"jis" not in blob
        assert b"rlogin" not in blob
        assert SESSION_KEY.key_bytes not in blob

    def test_wrong_key_rejected(self):
        blob = seal_ticket(make_ticket(), SERVER_KEY)
        with pytest.raises(KerberosError) as err:
            unseal_ticket(blob, GEN.session_key())
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_user_cannot_modify_ticket(self):
        """"it is safe to allow the user to pass the ticket on to the
        server without having to worry about the user modifying it"."""
        blob = bytearray(seal_ticket(make_ticket(), SERVER_KEY))
        for i in range(0, len(blob), 8):
            tampered = bytearray(blob)
            tampered[i] ^= 0x01
            with pytest.raises(KerberosError):
                unseal_ticket(bytes(tampered), SERVER_KEY)

    def test_garbage_rejected(self):
        with pytest.raises(KerberosError):
            unseal_ticket(b"\x00" * 64, SERVER_KEY)

    @given(st.binary(min_size=16, max_size=64).map(lambda b: b + b"\x00" * ((-len(b)) % 8)))
    @settings(max_examples=20)
    def test_random_blobs_never_parse(self, blob):
        with pytest.raises(KerberosError):
            unseal_ticket(blob, SERVER_KEY)


class TestLifetime:
    def test_expiry_boundary(self):
        t = make_ticket(timestamp=1000.0, life=100.0)
        assert t.expires == 1100.0
        assert not t.expired(now=1100.0)
        assert t.expired(now=1100.1)

    def test_expiry_with_skew_allowance(self):
        t = make_ticket(timestamp=1000.0, life=100.0)
        assert not t.expired(now=1150.0, skew=60.0)
        assert t.expired(now=1161.0, skew=60.0)

    def test_not_yet_valid(self):
        t = make_ticket(timestamp=1000.0)
        assert t.not_yet_valid(now=500.0)
        assert not t.not_yet_valid(now=950.0, skew=60.0)
        assert not t.not_yet_valid(now=1000.0)

    def test_remaining_life(self):
        t = make_ticket(timestamp=1000.0, life=100.0)
        assert t.remaining_life(now=1040.0) == 60.0
        assert t.remaining_life(now=2000.0) == 0.0

    def test_zero_life_ticket_immediately_expired(self):
        t = make_ticket(life=0.0)
        assert t.expired(now=t.timestamp + 0.1)


class TestSingleServerSingleClient:
    """Paper: "A ticket is good for a single server and a single client"."""

    def test_different_server_keys_cannot_open(self):
        """A ticket for rlogin.priam is useless at rlogin.helen."""
        priam_key = GEN.session_key()
        helen_key = GEN.session_key()
        blob = seal_ticket(make_ticket(), priam_key)
        with pytest.raises(KerberosError):
            unseal_ticket(blob, helen_key)

    def test_client_identity_is_inside_the_seal(self):
        blob = seal_ticket(make_ticket(), SERVER_KEY)
        opened = unseal_ticket(blob, SERVER_KEY)
        assert str(opened.client) == f"jis@{REALM}"

    def test_repr_mentions_parties(self):
        r = repr(make_ticket())
        assert "rlogin.priam" in r and "jis" in r
