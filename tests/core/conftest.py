"""Shared fixtures: a small simulated Athena realm."""

import pytest

from repro.core import KerberosClient, KerberosServer, Principal
from repro.crypto import KeyGenerator
from repro.database.admin_tools import kdb_init, register_service
from repro.netsim import Network

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def keygen():
    return KeyGenerator(seed=b"core-tests")


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def db(keygen):
    db = kdb_init(REALM, "master-pw", keygen)
    db.add_principal(Principal("jis", "", REALM), password="jis-pw")
    db.add_principal(Principal("bcn", "", REALM), password="bcn-pw")
    return db


@pytest.fixture
def kdc_host(net):
    return net.add_host("kerberos", address="18.72.0.1")


@pytest.fixture
def kdc(db, kdc_host, keygen):
    return KerberosServer(db, keygen.fork(b"kdc")).attach(kdc_host)


@pytest.fixture
def ws(net):
    return net.add_host("ws1", address="18.72.0.100")


@pytest.fixture
def server_host(net):
    return net.add_host("priam", address="18.72.0.50")


@pytest.fixture
def client(ws, kdc, kdc_host):
    return KerberosClient(ws, REALM, [kdc_host.address])


@pytest.fixture
def rlogin(db, keygen):
    """The rlogin.priam service plus its private key."""
    service = Principal("rlogin", "priam", REALM)
    key = register_service(db, service, keygen)
    return service, key
