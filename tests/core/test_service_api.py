"""The unified Service lifecycle: attach/detach and the hooks.

Every daemon in the realm (KDC, KDBM, kpropd, NFS, mountd, rlogind,
registration, SMS, Hesiod) now speaks one lifecycle.  These tests pin
the contract on a bare Service subclass, then spot-check the real
daemons — including crash/restart fan-out from the network.
"""

import pytest

from repro.core import KerberosServer
from repro.core.service import Service, ServiceError
from repro.crypto import KeyGenerator
from repro.database.admin_tools import kdb_init
from repro.netsim import Network
from repro.netsim.ports import KERBEROS_PORT
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


class Echo(Service):
    """A minimal two-port service that records its lifecycle."""

    def __init__(self, ports=(7, 9)):
        super().__init__()
        self._ports = ports
        self.events = []

    def ports(self):
        return {p: (lambda d: b"ok:%d" % d.dst_port) for p in self._ports}

    def on_attach(self):
        self.events.append("attach")

    def on_detach(self):
        self.events.append("detach")

    def on_crash(self):
        self.events.append("crash")

    def on_restart(self):
        self.events.append("restart")


class TestLifecycle:
    def test_attach_binds_all_ports_and_registers(self):
        net = Network()
        host = net.add_host("h")
        service = Echo()
        assert not service.attached
        assert service.attach(host) is service  # chains
        assert service.attached and service.host is host
        assert service in host.services
        client = net.add_host("c")
        assert client.rpc(host.address, 7, b"") == b"ok:7"
        assert client.rpc(host.address, 9, b"") == b"ok:9"
        assert service.events == ["attach"]

    def test_detach_unbinds_and_unregisters(self):
        net = Network()
        host = net.add_host("h")
        service = Echo().attach(host)
        service.detach()
        assert not service.attached
        assert service not in host.services
        assert host.handler_for(7) is None
        assert service.events == ["attach", "detach"]

    def test_double_attach_rejected(self):
        net = Network()
        service = Echo().attach(net.add_host("a"))
        with pytest.raises(ServiceError):
            service.attach(net.add_host("b"))

    def test_detach_while_detached_rejected(self):
        with pytest.raises(ServiceError):
            Echo().detach()

    def test_port_collision_rolls_back_cleanly(self):
        """If any declared port is taken, attach binds *nothing* — the
        ports bound before the collision are released again."""
        net = Network()
        host = net.add_host("h")
        host.bind(9, lambda d: b"squatter")
        service = Echo()
        with pytest.raises(ServiceError):
            service.attach(host)
        assert not service.attached
        assert host.handler_for(7) is None  # rolled back
        assert host.handler_for(9) is not None  # the squatter survives
        assert service not in host.services

    def test_reattach_after_detach(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        service = Echo().attach(a)
        service.detach()
        service.attach(b)
        client = net.add_host("c")
        assert client.rpc(b.address, 7, b"") == b"ok:7"

    def test_constructor_host_shim_auto_attaches(self):
        """The one-release deprecation shim: passing a host to the
        constructor still attaches, the pre-Service way."""
        net = Network()
        host = net.add_host("h")
        service = Echo().attach(host)
        assert service.attached and service.events == ["attach"]


class TestCrashRestartFanout:
    def test_set_down_and_up_drive_the_hooks(self):
        net = Network()
        host = net.add_host("h")
        service = Echo().attach(host)
        net.set_down("h")
        net.set_up("h")
        assert service.events == ["attach", "crash", "restart"]

    def test_crash_host_with_downtime_restarts_on_schedule(self):
        net = Network()
        host = net.add_host("h")
        service = Echo().attach(host)
        net.crash_host("h", downtime=30.0)
        assert service.events == ["attach", "crash"]
        net.clock.advance(31.0)
        assert service.events == ["attach", "crash", "restart"]

    def test_all_services_on_the_host_hear_the_crash(self):
        net = Network()
        host = net.add_host("h")
        a, b = Echo(ports=(7,)).attach(host), Echo(ports=(9,)).attach(host)
        net.set_down("h")
        assert a.events[-1] == "crash" and b.events[-1] == "crash"


class TestRealDaemons:
    def test_kdc_constructs_detached_then_attaches(self):
        gen = KeyGenerator(seed=b"svc")
        db = kdb_init(REALM, "mpw", gen)
        net = Network()
        host = net.add_host("kerberos")
        kdc = KerberosServer(db, keygen=gen.fork(b"kdc"))
        assert not kdc.attached
        kdc.attach(host)
        assert host.handler_for(KERBEROS_PORT) is not None
        kdc.detach()
        assert host.handler_for(KERBEROS_PORT) is None

    def test_kdc_requires_a_keygen(self):
        gen = KeyGenerator(seed=b"svc")
        db = kdb_init(REALM, "mpw", gen)
        with pytest.raises(ValueError):
            KerberosServer(db)

    def test_realm_hosts_enumerate_their_services(self):
        """The master runs the KDC and the KDBM; slaves run a KDC and a
        kpropd — visible through the one Service registry."""
        net = Network()
        realm = Realm(net, REALM, n_slaves=1)
        master_kinds = {type(s).__name__ for s in realm.master_host.services}
        assert master_kinds == {"KerberosServer", "KdbmServer"}
        slave = realm.slaves[0]
        slave_kinds = {type(s).__name__ for s in slave.host.services}
        assert slave_kinds == {"KerberosServer", "Kpropd"}

    def test_client_fails_over_past_a_detached_kdc(self):
        """Maintenance, not a crash: the master's KDC is detached while
        the host stays up.  Port-unreachable is as failover-worthy as a
        dead host — logins ride over to the slave."""
        net = Network()
        realm = Realm(net, REALM, n_slaves=1)
        realm.add_user("jis", "jis-pw")
        realm.propagate()
        realm.kdc.detach()
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None
        assert net.metrics.total("kdc.failovers_total") == 1
        realm.kdc.attach(realm.master_host)  # maintenance over
        ws2 = realm.workstation()
        assert ws2.client.kinit("jis", "jis-pw") is not None
        assert net.metrics.total("kdc.failovers_total") == 1  # no new one

    def test_rlogind_serves_both_its_ports(self):
        from repro.apps.rlogin import RSHD_LEGACY_PORT, RloginServer
        from repro.netsim.ports import KSHELL_PORT

        net = Network()
        realm = Realm(net, REALM)
        rcmd, _ = realm.add_service("rcmd", "priam")
        priam = net.add_host("priam")
        rlogind = RloginServer(rcmd, realm.srvtab_for(rcmd)).attach(priam)
        assert priam.handler_for(KSHELL_PORT) is not None
        assert priam.handler_for(RSHD_LEGACY_PORT) is not None
        assert rlogind in priam.services
