"""Safe and private message tests (paper Section 2.1's protection levels)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ErrorCode,
    KerberosError,
    krb_mk_priv,
    krb_mk_safe,
    krb_rd_priv,
    krb_rd_safe,
)
from repro.core.replay import CLOCK_SKEW
from repro.crypto import KeyGenerator
from repro.netsim import IPAddress

GEN = KeyGenerator(seed=b"safepriv-tests")
KEY = GEN.session_key()
OTHER_KEY = GEN.session_key()
SENDER = IPAddress("18.72.0.100")
NOW = 1000.0


class TestSafeMessages:
    """"authentication of each message, but do not care whether the
    content ... is disclosed"."""

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_round_trip(self, data):
        msg = krb_mk_safe(data, KEY, SENDER, NOW)
        assert krb_rd_safe(msg, KEY, SENDER, NOW) == data

    def test_content_is_cleartext(self):
        msg = krb_mk_safe(b"PUBLIC ANNOUNCEMENT", KEY, SENDER, NOW)
        assert b"PUBLIC ANNOUNCEMENT" in msg.to_bytes()

    def test_tamper_detected(self):
        msg = krb_mk_safe(b"transfer 10 dollars", KEY, SENDER, NOW)
        forged = msg.replace(data=b"transfer 99 dollars")
        with pytest.raises(KerberosError) as err:
            krb_rd_safe(forged, KEY, SENDER, NOW)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_wrong_key_rejected(self):
        msg = krb_mk_safe(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError):
            krb_rd_safe(msg, OTHER_KEY, SENDER, NOW)

    def test_sender_spoof_rejected(self):
        msg = krb_mk_safe(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError) as err:
            krb_rd_safe(msg, KEY, IPAddress("66.6.6.6"), NOW)
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_stale_message_rejected(self):
        msg = krb_mk_safe(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError) as err:
            krb_rd_safe(msg, KEY, SENDER, NOW + CLOCK_SKEW + 1)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_checksum_forgery_without_key_fails(self):
        """An attacker can read and rewrite the cleartext, but cannot
        compute the keyed checksum for the altered content."""
        msg = krb_mk_safe(b"original", KEY, SENDER, NOW)
        forged = krb_mk_safe(b"forged!!", OTHER_KEY, SENDER, NOW)
        hybrid = forged.replace(checksum=msg.checksum)
        with pytest.raises(KerberosError):
            krb_rd_safe(hybrid, KEY, SENDER, NOW)


class TestPrivateMessages:
    """"each message is not only authenticated, but also encrypted"."""

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_round_trip(self, data):
        msg = krb_mk_priv(data, KEY, SENDER, NOW)
        assert krb_rd_priv(msg, KEY, SENDER, NOW) == data

    def test_content_is_hidden(self):
        """Private messages carry passwords (Section 2.1) — the payload
        must never appear on the wire."""
        msg = krb_mk_priv(b"users-new-password", KEY, SENDER, NOW)
        assert b"users-new-password" not in msg.to_bytes()

    def test_wrong_key_rejected(self):
        msg = krb_mk_priv(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError) as err:
            krb_rd_priv(msg, OTHER_KEY, SENDER, NOW)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_tamper_detected(self):
        msg = krb_mk_priv(b"data", KEY, SENDER, NOW)
        sealed = bytearray(msg.sealed)
        sealed[8] ^= 0x10
        with pytest.raises(KerberosError):
            krb_rd_priv(msg.replace(sealed=bytes(sealed)), KEY, SENDER, NOW)

    def test_sender_spoof_rejected(self):
        msg = krb_mk_priv(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError) as err:
            krb_rd_priv(msg, KEY, IPAddress("66.6.6.6"), NOW)
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_stale_message_rejected(self):
        msg = krb_mk_priv(b"data", KEY, SENDER, NOW)
        with pytest.raises(KerberosError) as err:
            krb_rd_priv(msg, KEY, SENDER, NOW + CLOCK_SKEW + 1)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_within_skew_accepted(self):
        msg = krb_mk_priv(b"data", KEY, SENDER, NOW)
        assert krb_rd_priv(msg, KEY, SENDER, NOW + CLOCK_SKEW - 1) == b"data"
