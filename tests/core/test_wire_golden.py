"""Golden wire-format tests: the byte-level protocol is frozen.

A library whose wire format silently changes breaks every deployed peer.
These tests pin SHA-256 digests of deterministically-constructed
messages; any change to field order, widths, framing, DES, string-to-key,
or the seal layout fails here first — deliberately.

If a format change is ever *intended*, update the digests in the same
commit and call it out loudly in the changelog.
"""

import hashlib

from repro.core import (
    ApRequest,
    AsRequest,
    MessageType,
    Principal,
    TgsRequest,
    Ticket,
    encode_message,
    seal_ticket,
    tgs_principal,
)
from repro.core.authenticator import build_authenticator
from repro.crypto import KeyGenerator, string_to_key
from repro.netsim import IPAddress

GEN_SEED = b"golden"


def fixtures():
    gen = KeyGenerator(seed=GEN_SEED)
    session_key = gen.session_key()
    server_key = gen.session_key()
    client = Principal("jis", "", "ATHENA.MIT.EDU")
    service = Principal("rlogin", "priam", "ATHENA.MIT.EDU")
    ticket_blob = seal_ticket(
        Ticket(
            server=service,
            client=client,
            address=IPAddress("18.72.0.100").as_int,
            timestamp=1000.0,
            life=28800.0,
            session_key=session_key.key_bytes,
        ),
        server_key,
    )
    authenticator = build_authenticator(
        client, IPAddress("18.72.0.100"), 1000.5, session_key, checksum=7
    )
    return client, service, session_key, ticket_blob, authenticator


def digest(wire: bytes) -> str:
    return hashlib.sha256(wire).hexdigest()


class TestGoldenWireFormats:
    def test_key_generator_stream_frozen(self):
        gen = KeyGenerator(seed=GEN_SEED)
        assert gen.session_key().key_bytes.hex() == "34294901d05e68a7"

    def test_string_to_key_frozen(self):
        assert string_to_key("golden-password").key_bytes.hex() == "8932310e0da71f07"

    def test_as_request_frozen(self):
        client, *_ = fixtures()
        wire = encode_message(
            MessageType.AS_REQ,
            AsRequest(
                client=client,
                service=tgs_principal("ATHENA.MIT.EDU"),
                requested_life=28800.0,
                timestamp=1000.0,
            ),
        )
        assert len(wire) == 92
        assert digest(wire) == (
            "4a8ad742b2c87fb0f8533fb6d6f18d51f8066c185f3351a75e281d2368f7b78c"
        )

    def test_ap_request_frozen(self):
        _, _, _, ticket_blob, authenticator = fixtures()
        wire = encode_message(
            MessageType.AP_REQ,
            ApRequest(
                ticket=ticket_blob, authenticator=authenticator,
                mutual=True, kvno=1,
            ),
        )
        assert len(wire) == 198
        assert digest(wire) == (
            "4da50df834d88859689ab88f165957e9503d73ec5df879ad345e2d4fca29cda4"
        )

    def test_tgs_request_frozen(self):
        _, service, _, ticket_blob, authenticator = fixtures()
        wire = encode_message(
            MessageType.TGS_REQ,
            TgsRequest(
                service=service,
                requested_life=3600.0,
                timestamp=1001.0,
                tgt_realm="ATHENA.MIT.EDU",
                tgt=ticket_blob,
                authenticator=authenticator,
            ),
        )
        assert len(wire) == 264
        assert digest(wire) == (
            "4a6254d804cf571f038a1f81c61189373c6bd4c1defe2c40cbf90f008dced5b0"
        )

    def test_sealed_ticket_size_stable(self):
        """Tickets are always the same size regardless of the names'
        entropy (fixed fields + padding to a DES block boundary); a size
        change means a format change."""
        *_, ticket_blob, _ = fixtures()
        assert len(ticket_blob) == 120
