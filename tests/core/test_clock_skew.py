"""Clock synchronization scenarios (paper Section 4.3).

*"It is assumed that clocks are synchronized to within several
minutes."*  These tests are the support-desk reality of that sentence:
what breaks, and how, when a workstation's clock drifts — and that
fixing the clock fixes everything.
"""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    krb_rd_req,
)
from repro.core.replay import CLOCK_SKEW
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def realm():
    net = Network()
    r = Realm(net, REALM)
    r.add_user("jis", "jis-pw")
    r.add_service("rlogin", "priam")
    return r


def service_of(realm):
    from repro.principal import Principal

    s = Principal("rlogin", "priam", REALM)
    return s, realm.service_key(s)


class TestSkewedWorkstation:
    def test_small_skew_is_tolerated(self, realm):
        """A couple of minutes of drift — the design target — works."""
        ws = realm.workstation(clock_skew=2 * 60.0)
        ws.client.kinit("jis", "jis-pw")
        service, key = service_of(realm)
        request, _, _ = ws.client.mk_req(service)
        ctx = krb_rd_req(request, service, key, ws.host.address,
                         realm.net.clock.now())
        assert ctx.client.name == "jis"

    def test_large_skew_breaks_tgs(self, realm):
        """Beyond the window, the TGS treats the authenticator as a
        replay attempt (RD_AP_TIME) — login appears to work, service
        access fails."""
        ws = realm.workstation(clock_skew=CLOCK_SKEW + 120.0)
        ws.client.kinit("jis", "jis-pw")  # AS has no authenticator: works
        service, _ = service_of(realm)
        with pytest.raises(KerberosError) as err:
            ws.client.get_credential(service)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_large_negative_skew_breaks_tgs(self, realm):
        ws = realm.workstation(clock_skew=-(CLOCK_SKEW + 120.0))
        ws.client.kinit("jis", "jis-pw")
        service, _ = service_of(realm)
        with pytest.raises(KerberosError) as err:
            ws.client.get_credential(service)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_skewed_server_rejects_healthy_client(self, realm):
        """The skew can be on the *server's* side too."""
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        service, key = service_of(realm)
        request, _, _ = ws.client.mk_req(service)
        skewed_server_now = realm.net.clock.now() + CLOCK_SKEW + 60.0
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, ws.host.address, skewed_server_now)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_fixing_the_clock_fixes_everything(self, realm):
        ws = realm.workstation(clock_skew=CLOCK_SKEW + 300.0)
        ws.client.kinit("jis", "jis-pw")
        service, _ = service_of(realm)
        with pytest.raises(KerberosError):
            ws.client.get_credential(service)
        ws.host.clock.skew = 0.0  # ntpdate, 1988-style
        assert ws.client.get_credential(service) is not None

    def test_skewed_ticket_lifetime_interaction(self, realm):
        """A fast workstation clock also shortens the *perceived* ticket
        life: the client believes the TGT expires sooner than the realm
        does.  (The cache uses the local clock for expiry checks.)"""
        fast = realm.workstation(clock_skew=3 * 60.0)
        fast.client.kinit("jis", "jis-pw")
        tgt = fast.client.cache.tgt(REALM, now=fast.host.clock.now())
        assert tgt is not None
        remaining_local = tgt.remaining(fast.host.clock.now())
        remaining_realm = tgt.remaining(realm.net.clock.now())
        assert remaining_local < remaining_realm
