"""krb_mk_req / krb_rd_req — the complete Section 4.3 checklist (exp F6/F7)."""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    Principal,
    ReplayCache,
    SrvTab,
    Ticket,
    krb_mk_rep,
    krb_mk_req,
    krb_rd_rep,
    krb_rd_req,
    seal_ticket,
)
from repro.core.replay import CLOCK_SKEW
from repro.crypto import KeyGenerator
from repro.database.admin_tools import ext_srvtab
from repro.netsim import IPAddress

REALM = "ATHENA.MIT.EDU"
GEN = KeyGenerator(seed=b"applib-tests")
SERVICE = Principal("rlogin", "priam", REALM)
SERVICE_KEY = GEN.session_key()
SESSION_KEY = GEN.session_key()
CLIENT = Principal("jis", "", REALM)
CLIENT_ADDR = IPAddress("18.72.0.100")
NOW = 10_000.0


def make_ticket_blob(**overrides):
    values = dict(
        server=SERVICE,
        client=CLIENT,
        address=CLIENT_ADDR.as_int,
        timestamp=NOW,
        life=8 * 3600.0,
        session_key=SESSION_KEY.key_bytes,
    )
    values.update(overrides)
    key = overrides.pop("seal_key", SERVICE_KEY)
    values.pop("seal_key", None)
    return seal_ticket(Ticket(**values), key)


def make_request(ticket_blob=None, now=NOW, session_key=SESSION_KEY, **kw):
    return krb_mk_req(
        ticket_blob=ticket_blob if ticket_blob is not None else make_ticket_blob(),
        session_key=session_key,
        client=kw.pop("client", CLIENT),
        client_address=kw.pop("client_address", CLIENT_ADDR),
        now=now,
        **kw,
    )


class TestHappyPath:
    def test_rd_req_accepts_genuine(self):
        ctx = krb_rd_req(make_request(), SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert ctx.client == CLIENT
        assert ctx.session_key == SESSION_KEY
        assert ctx.address == CLIENT_ADDR

    def test_ticket_reusable_with_fresh_authenticators(self):
        """"the ticket ... may be used multiple times" — only the
        authenticator is single-use."""
        cache = ReplayCache()
        blob = make_ticket_blob()
        for i in range(5):
            req = make_request(ticket_blob=blob, now=NOW + i)
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW + i, cache)

    def test_checksum_passed_through(self):
        req = make_request(checksum=0xCAFE)
        ctx = krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert ctx.checksum == 0xCAFE

    def test_srvtab_lookup(self):
        tab = SrvTab()
        tab.install(SERVICE, 1, SERVICE_KEY)
        ctx = krb_rd_req(make_request(kvno=1), SERVICE, tab, CLIENT_ADDR, NOW)
        assert ctx.client == CLIENT

    def test_srvtab_missing_version(self):
        tab = SrvTab()
        tab.install(SERVICE, 1, SERVICE_KEY)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(make_request(kvno=9), SERVICE, tab, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_VERSION


class TestRejections:
    def test_wrong_service_key(self):
        with pytest.raises(KerberosError) as err:
            krb_rd_req(make_request(), SERVICE, GEN.session_key(), CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_ticket_for_other_service(self):
        other = Principal("rlogin", "helen", REALM)
        blob = make_ticket_blob(server=other)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(make_request(ticket_blob=blob), SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_expired_ticket(self):
        late = NOW + 9 * 3600.0
        with pytest.raises(KerberosError) as err:
            krb_rd_req(make_request(now=late), SERVICE, SERVICE_KEY, CLIENT_ADDR, late)
        assert err.value.code == ErrorCode.RD_AP_EXP

    def test_ticket_from_the_future(self):
        blob = make_ticket_blob(timestamp=NOW + 7200.0)
        req = make_request(ticket_blob=blob)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_NYV

    def test_authenticator_wrong_session_key(self):
        """A stolen ticket without its session key is useless."""
        req = make_request(session_key=GEN.session_key())
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_MODIFIED

    def test_authenticator_names_wrong_client(self):
        req = make_request(client=Principal("bcn", "", REALM))
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_PRINCIPAL

    def test_authenticator_address_mismatch(self):
        req = make_request(client_address=IPAddress("18.72.0.101"))
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_packet_from_wrong_address(self):
        """Request relayed from a different host than the ticket names."""
        with pytest.raises(KerberosError) as err:
            krb_rd_req(
                make_request(), SERVICE, SERVICE_KEY, IPAddress("66.6.6.6"), NOW
            )
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_stale_authenticator(self):
        """Paper: if the time in the request is too far in the past, the
        server treats the request as an attempt to replay."""
        req = make_request(now=NOW)
        late = NOW + CLOCK_SKEW + 1
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, late)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_future_authenticator(self):
        req = make_request(now=NOW + CLOCK_SKEW + 1)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_within_skew_accepted(self):
        """"clocks are synchronized to within several minutes" — a few
        minutes of drift must be tolerated."""
        req = make_request(now=NOW + CLOCK_SKEW - 1)
        krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)

    def test_replay_rejected(self):
        cache = ReplayCache()
        req = make_request()
        krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW, cache)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW + 1, cache)
        assert err.value.code == ErrorCode.RD_AP_REPEAT

    def test_no_cache_no_replay_protection(self):
        """Without the (optional per the paper) cache, a fast replay gets
        through — documenting exactly what the cache buys."""
        req = make_request()
        krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW + 1)  # accepted!


class TestMutualAuth:
    def test_round_trip(self):
        req = make_request(mutual=True)
        ctx = krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        reply = krb_mk_rep(ctx)
        krb_rd_rep(reply, NOW, SESSION_KEY)

    def test_fake_server_detected(self):
        """A masquerading server cannot open the ticket, so it cannot
        learn the session key, so its reply fails verification."""
        req = make_request(mutual=True)
        attacker_key = GEN.session_key()
        from repro.core.messages import ApReply

        fake_reply = ApReply.build(NOW, attacker_key)
        with pytest.raises(KerberosError):
            krb_rd_rep(fake_reply, NOW, SESSION_KEY)

    def test_replayed_reply_for_other_timestamp_rejected(self):
        req = make_request(mutual=True)
        ctx = krb_rd_req(req, SERVICE, SERVICE_KEY, CLIENT_ADDR, NOW)
        reply = krb_mk_rep(ctx)
        with pytest.raises(KerberosError):
            krb_rd_rep(reply, NOW + 5.0, SESSION_KEY)


class TestSrvTabFile:
    def test_from_ext_srvtab_bytes(self, tmp_path):
        from repro.crypto import KeyGenerator
        from repro.database.admin_tools import kdb_init, register_service

        gen = KeyGenerator(seed=b"srvtab")
        db = kdb_init(REALM, "mpw", gen)
        service = Principal("pop", "mailhost", REALM)
        key = register_service(db, service, gen)
        tab = SrvTab.from_bytes(ext_srvtab(db, [service]))
        assert tab.key_for(service, 1) == key
        assert tab.services() == [str(service)]
        assert len(tab) == 1

    def test_latest_version_default(self):
        tab = SrvTab()
        k1, k2 = GEN.session_key(), GEN.session_key()
        tab.install(SERVICE, 1, k1)
        tab.install(SERVICE, 2, k2)
        assert tab.key_for(SERVICE) == k2
        assert tab.key_for(SERVICE, 1) == k1
