"""What disabling a principal does — and does not — revoke.

The 1988 design has no ticket revocation: the KDC checks the database at
*issue* time only.  Disabling or deleting a principal stops new tickets
immediately, but outstanding tickets remain valid until they expire —
the flip side of the Section 8 lifetime tradeoff, demonstrated here so
operators of this library know exactly where the line is.
"""

import pytest

from repro.core import ErrorCode, KerberosError, krb_rd_req
from repro.database.schema import ATTR_DISABLED
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    ws = realm.workstation()
    return net, realm, service, key, ws


class TestDisabling:
    def test_disabled_user_cannot_get_new_tgt(self, world):
        net, realm, service, key, ws = world
        realm.db.set_attributes(Principal("jis", "", REALM), ATTR_DISABLED)
        with pytest.raises(KerberosError) as err:
            ws.client.kinit("jis", "jis-pw")
        assert err.value.code == ErrorCode.KDC_PR_DISABLED

    def test_outstanding_tgt_still_buys_service_tickets(self, world):
        """Disabling does NOT invalidate the TGT already issued: the TGS
        trusts the ticket, not a fresh database check of the client."""
        net, realm, service, key, ws = world
        ws.client.kinit("jis", "jis-pw")
        realm.db.set_attributes(Principal("jis", "", REALM), ATTR_DISABLED)
        cred = ws.client.get_credential(service)   # still works!
        assert cred is not None

    def test_outstanding_service_ticket_still_authenticates(self, world):
        net, realm, service, key, ws = world
        ws.client.kinit("jis", "jis-pw")
        request, _, _ = ws.client.mk_req(service)
        realm.db.set_attributes(Principal("jis", "", REALM), ATTR_DISABLED)
        ctx = krb_rd_req(request, service, key, ws.host.address, net.clock.now())
        assert ctx.client.name == "jis"

    def test_expiry_is_the_only_revocation(self, world):
        """After the ticket lifetime passes, the disabled user is finally
        locked out everywhere."""
        net, realm, service, key, ws = world
        ws.client.kinit("jis", "jis-pw")
        realm.db.set_attributes(Principal("jis", "", REALM), ATTR_DISABLED)
        net.clock.advance(9 * 3600.0)
        with pytest.raises(KerberosError):   # TGT expired, kinit refused
            ws.client.get_credential(service)
        with pytest.raises(KerberosError) as err:
            ws.client.kinit("jis", "jis-pw")
        assert err.value.code == ErrorCode.KDC_PR_DISABLED


class TestDeletion:
    def test_deleted_user_same_story(self, world):
        net, realm, service, key, ws = world
        ws.client.kinit("jis", "jis-pw")
        realm.db.delete_principal(Principal("jis", "", REALM))
        # Outstanding TGT still works at the TGS...
        assert ws.client.get_credential(service) is not None
        # ...but a new login is impossible.
        ws2 = realm.workstation()
        with pytest.raises(KerberosError) as err:
            ws2.client.kinit("jis", "jis-pw")
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN


class TestServiceSideChecks:
    def test_tgs_checks_target_service_expiry(self, world):
        """The TGS does consult the database for the *target* service —
        an expired service entry stops new tickets for it."""
        net, realm, service, key, ws = world
        expired = Principal("old", "svc", REALM)
        realm.db.add_principal(
            expired, key=realm.keygen.session_key(), expiration=10.0
        )
        net.clock.advance(100.0)
        ws.client.kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            ws.client.get_credential(expired)
        assert err.value.code == ErrorCode.KDC_SERVICE_EXPIRED

    def test_tgs_rejects_expired_tgt_server_side(self, world):
        """Craft a TGS request around an expired TGT (bypassing the
        client's own cache check): the server rejects it."""
        from repro.core import (
            MessageType,
            TgsRequest,
            build_authenticator,
            encode_message,
            expect_reply,
        )

        net, realm, service, key, ws = world
        tgt = ws.client.kinit("jis", "jis-pw", life=600.0)
        net.clock.advance(3600.0)
        now = ws.host.clock.now()
        request = TgsRequest(
            service=service,
            requested_life=600.0,
            timestamp=now,
            tgt_realm=REALM,
            tgt=tgt.ticket,
            authenticator=build_authenticator(
                ws.client.principal, ws.host.address, now, tgt.session_key
            ),
        )
        raw = ws.host.rpc(
            realm.master_host.address, 750,
            encode_message(MessageType.TGS_REQ, request),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.TGS_REP)
        assert err.value.code == ErrorCode.RD_AP_EXP
