"""Replay cache tests (paper Section 4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReplayCache
from repro.core.replay import CLOCK_SKEW


class TestBasics:
    def test_fresh_entry_accepted(self):
        cache = ReplayCache()
        assert cache.check_and_store("jis", 1, 100.0, now=100.0)

    def test_exact_replay_rejected(self):
        cache = ReplayCache()
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        assert not cache.check_and_store("jis", 1, 100.0, now=101.0)

    def test_different_timestamp_accepted(self):
        cache = ReplayCache()
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        assert cache.check_and_store("jis", 1, 101.0, now=101.0)

    def test_different_client_accepted(self):
        cache = ReplayCache()
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        assert cache.check_and_store("bcn", 1, 100.0, now=100.0)

    def test_different_address_accepted(self):
        cache = ReplayCache()
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        assert cache.check_and_store("jis", 2, 100.0, now=100.0)

    def test_default_window_is_clock_skew(self):
        assert ReplayCache().window == CLOCK_SKEW

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReplayCache(window=0)


class TestPurging:
    def test_old_entries_forgotten(self):
        """Entries older than the window are useless (their timestamps
        would be rejected anyway) and must be dropped to bound memory."""
        cache = ReplayCache(window=300.0)
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        assert len(cache) == 1
        cache.purge(now=401.0)
        assert len(cache) == 0

    def test_purge_keeps_entries_in_window(self):
        cache = ReplayCache(window=300.0)
        cache.check_and_store("jis", 1, 100.0, now=100.0)
        cache.check_and_store("jis", 1, 350.0, now=350.0)
        cache.purge(now=401.0)
        assert len(cache) == 1
        assert cache.seen_before("jis", 1, 350.0)

    def test_remember_purges_as_side_effect(self):
        cache = ReplayCache(window=10.0)
        for t in range(100):
            cache.check_and_store("jis", 1, float(t), now=float(t))
        assert len(cache) <= 12  # bounded by window, not by history

    def test_memory_bounded_under_load(self):
        cache = ReplayCache(window=300.0)
        # 10k requests spread over an hour: only the last 5 minutes remain.
        for i in range(10_000):
            t = i * 0.36
            cache.check_and_store(f"user{i % 50}", i % 7, t, now=t)
        assert len(cache) <= 300.0 / 0.36 + 2

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["jis", "bcn"]),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0, max_value=1000),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=25)
    def test_no_false_rejections(self, events):
        """Distinct (client, addr, ts) triples are always accepted."""
        cache = ReplayCache(window=1e9)
        seen = set()
        now = 0.0
        for client, addr, ts in events:
            fresh = cache.check_and_store(client, addr, ts, now=now)
            assert fresh == ((client, addr, ts) not in seen)
            seen.add((client, addr, ts))
