"""RetryPolicy / run_with_failover: bounded attempts, deadline on the
simulated clock, deterministic backoff, endpoint cycling."""

import random

import pytest

from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.netsim import SimClock
from repro.obs import MetricsRegistry


class Boom(Exception):
    pass


class TestPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"deadline": 0.0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"jitter": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 5.0  # capped

    def test_zero_base_means_immediate(self):
        assert RetryPolicy().backoff(3) == 0.0

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        rng_a, rng_b = random.Random("s"), random.Random("s")
        a = [policy.backoff(1, rng_a) for _ in range(5)]
        b = [policy.backoff(1, rng_b) for _ in range(5)]
        assert a == b
        assert all(0.5 <= d <= 1.5 for d in a)
        assert len(set(a)) > 1  # the rng actually varies the delays


class TestRunWithFailover:
    def test_first_try_success(self):
        clock = SimClock()
        result, endpoint, attempts = run_with_failover(
            RetryPolicy(), clock, ["a", "b"], lambda e: f"ok-{e}"
        )
        assert (result, endpoint, attempts) == ("ok-a", "a", 1)

    def test_cycles_endpoints(self):
        clock = SimClock()
        tried = []

        def attempt(endpoint):
            tried.append(endpoint)
            if endpoint != "b":
                raise Boom(endpoint)
            return "ok"

        result, endpoint, attempts = run_with_failover(
            RetryPolicy(max_attempts=4), clock, ["a", "b"], attempt,
            retry_on=(Boom,),
        )
        assert result == "ok" and endpoint == "b" and attempts == 2
        assert tried == ["a", "b"]

    def test_exhaustion_carries_attempts_and_last_error(self):
        clock = SimClock()
        with pytest.raises(RetryExhausted) as exc_info:
            run_with_failover(
                RetryPolicy(max_attempts=3), clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom("nope")),
                retry_on=(Boom,), op="unit",
            )
        exc = exc_info.value
        assert exc.attempts == 3
        assert isinstance(exc.last_error, Boom)
        assert exc.op == "unit"

    def test_non_retryable_errors_propagate(self):
        clock = SimClock()

        def attempt(endpoint):
            raise ValueError("an answer, not an outage")

        with pytest.raises(ValueError):
            run_with_failover(
                RetryPolicy(max_attempts=3), clock, ["a"], attempt,
                retry_on=(Boom,),
            )

    def test_backoff_advances_the_sim_clock(self):
        clock = SimClock()
        with pytest.raises(RetryExhausted):
            run_with_failover(
                RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0),
                clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,),
            )
        # Sleeps of 1s then 2s between the three attempts.
        assert clock.now() == pytest.approx(3.0)

    def test_deadline_stops_before_overrun(self):
        clock = SimClock()
        with pytest.raises(RetryExhausted) as exc_info:
            run_with_failover(
                RetryPolicy(
                    max_attempts=10, base_delay=1.0, multiplier=2.0,
                    deadline=4.0,
                ),
                clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,),
            )
        # Attempts at t=0, 1, 3; the next backoff (4s -> t=7) would
        # overrun the 4s deadline, so the run gives up after 3 attempts.
        assert exc_info.value.attempts == 3
        assert clock.now() <= 4.0

    def test_deadline_exactly_on_backoff_boundary_stops(self):
        """A retry whose backoff lands *exactly* on the deadline is not
        started: the policy promises no attempt begins at or past it."""
        clock = SimClock()
        with pytest.raises(RetryExhausted) as exc_info:
            run_with_failover(
                RetryPolicy(
                    max_attempts=5, base_delay=2.0, multiplier=1.0,
                    deadline=2.0,
                ),
                clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,),
            )
        # elapsed(0) + backoff(2.0) == deadline(2.0): boundary counts
        # as overrun, so only the initial attempt ran and no time passed.
        assert exc_info.value.attempts == 1
        assert clock.now() == 0.0

    def test_deadline_just_past_boundary_allows_the_retry(self):
        clock = SimClock()
        with pytest.raises(RetryExhausted) as exc_info:
            run_with_failover(
                RetryPolicy(
                    max_attempts=2, base_delay=2.0, multiplier=1.0,
                    deadline=2.5,
                ),
                clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,),
            )
        assert exc_info.value.attempts == 2
        assert clock.now() == pytest.approx(2.0)

    def test_same_seed_failover_trajectory_is_identical(self):
        """With jittered backoff, two same-seed runs visit the same
        endpoints at the same simulated instants; the endpoint *order*
        is pure round-robin regardless of seed."""

        def trajectory(seed):
            clock = SimClock()
            visits = []

            def attempt(endpoint):
                visits.append((endpoint, clock.now()))
                raise Boom(endpoint)

            with pytest.raises(RetryExhausted):
                run_with_failover(
                    RetryPolicy(max_attempts=6, base_delay=1.0, jitter=0.5),
                    clock, ["master", "slave1", "slave2"], attempt,
                    rng=random.Random(seed), retry_on=(Boom,),
                )
            return visits

        a, b, c = trajectory(42), trajectory(42), trajectory(43)
        assert a == b
        assert [endpoint for endpoint, _ in a] == [
            "master", "slave1", "slave2", "master", "slave1", "slave2"
        ]
        # A different seed keeps the order but shifts the jittered times.
        assert [e for e, _ in c] == [e for e, _ in a]
        assert [t for _, t in c] != [t for _, t in a]

    def test_metrics_counted(self):
        clock = SimClock()
        metrics = MetricsRegistry()
        with pytest.raises(RetryExhausted):
            run_with_failover(
                RetryPolicy(max_attempts=2), clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,), metrics=metrics, op="unit",
            )
        run_with_failover(
            RetryPolicy(), clock, ["a"], lambda e: "ok",
            metrics=metrics, op="unit",
        )
        assert metrics.total("retry.attempts_total", op="unit") == 3
        assert metrics.total("retry.exhausted_total", op="unit") == 1

    def test_empty_endpoints_rejected(self):
        with pytest.raises(ValueError):
            run_with_failover(RetryPolicy(), SimClock(), [], lambda e: e)

    def test_host_clock_sleep_goes_through_reference(self):
        """Passing a HostClock sleeps on the underlying SimClock."""
        from repro.netsim import HostClock

        sim = SimClock()
        host_clock = HostClock(sim, skew=120.0)
        with pytest.raises(RetryExhausted):
            run_with_failover(
                RetryPolicy(max_attempts=2, base_delay=0.5),
                host_clock, ["a"],
                lambda e: (_ for _ in ()).throw(Boom()),
                retry_on=(Boom,),
            )
        assert sim.now() == pytest.approx(0.5)
