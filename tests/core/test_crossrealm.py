"""Cross-realm authentication tests (paper Section 7.2) — exp X1."""

import pytest

from repro.core import (
    ErrorCode,
    KerberosClient,
    KerberosError,
    KerberosServer,
    Principal,
    StaticLocator,
    link_realms,
    krb_rd_req,
    tgs_principal,
    unseal_ticket,
)
from repro.core.crossrealm import register_accepting_key, register_issuing_key
from repro.crypto import KeyGenerator
from repro.database.admin_tools import kdb_init, register_service
from repro.netsim import Network

ATHENA = "ATHENA.MIT.EDU"
LCS = "LCS.MIT.EDU"
UW = "CS.WASHINGTON.EDU"


@pytest.fixture
def world():
    """Two linked realms (the paper's Athena and LCS) plus the plumbing."""
    gen = KeyGenerator(seed=b"crossrealm-tests")
    net = Network()
    athena_kdc = net.add_host("athena-kdc")
    lcs_kdc = net.add_host("lcs-kdc")
    ws = net.add_host("ws")

    db_a = kdb_init(ATHENA, "a-pw", gen)
    db_l = kdb_init(LCS, "l-pw", gen)
    db_a.add_principal(Principal("jis", "", ATHENA), password="jis-pw")
    service = Principal("rlogin", "ptt", LCS)
    service_key = register_service(db_l, service, gen)
    link_realms(db_a, db_l, gen)

    KerberosServer(db_a, gen.fork(b"a")).attach(athena_kdc)
    KerberosServer(db_l, gen.fork(b"l")).attach(lcs_kdc)
    client = KerberosClient(
        ws,
        ATHENA,
        [athena_kdc.address],
        kdc_directory={LCS: [lcs_kdc.address]},
    )
    return dict(
        gen=gen, net=net, ws=ws, client=client,
        db_a=db_a, db_l=db_l, service=service, service_key=service_key,
        athena_kdc=athena_kdc, lcs_kdc=lcs_kdc,
    )


class TestCrossRealmFlow:
    def test_remote_service_ticket_obtained(self, world):
        world["client"].kinit("jis", "jis-pw")
        cred = world["client"].get_credential(world["service"])
        assert cred.service == world["service"]

    def test_client_realm_preserved_in_ticket(self, world):
        """"the realm field for the client contains the name of the realm
        in which the client was originally authenticated"."""
        world["client"].kinit("jis", "jis-pw")
        cred = world["client"].get_credential(world["service"])
        ticket = unseal_ticket(cred.ticket, world["service_key"])
        assert str(ticket.client) == f"jis@{ATHENA}"

    def test_service_sees_foreign_client(self, world):
        world["client"].kinit("jis", "jis-pw")
        request, _, _ = world["client"].mk_req(world["service"])
        ctx = krb_rd_req(
            request,
            world["service"],
            world["service_key"],
            world["ws"].address,
            world["net"].clock.now(),
        )
        # The service can now "choose whether to honor those credentials,
        # depending on ... the level of trust in the realm".
        assert ctx.client.realm == ATHENA

    def test_remote_tgt_cached_and_reused(self, world):
        world["client"].kinit("jis", "jis-pw")
        world["client"].get_credential(world["service"])
        assert world["client"].cache.remote_tgt(ATHENA, LCS) is not None

    def test_remote_tgt_sealed_with_interrealm_key(self, world):
        """Only the inter-realm key opens the cross-realm TGT — neither
        realm's own TGS key does."""
        world["client"].kinit("jis", "jis-pw")
        world["client"].get_credential(world["service"])
        remote_tgt = world["client"].cache.remote_tgt(ATHENA, LCS)
        interrealm = world["db_a"].principal_key(tgs_principal(ATHENA, LCS))
        ticket = unseal_ticket(remote_tgt.ticket, interrealm)
        assert ticket.server.same_entity(tgs_principal(LCS))
        with pytest.raises(KerberosError):
            unseal_ticket(
                remote_tgt.ticket,
                world["db_a"].principal_key(tgs_principal(ATHENA)),
            )

    def test_local_tickets_unaffected(self, world):
        world["db_a"].add_principal(
            Principal("pop", "mail", ATHENA),
            key=world["gen"].session_key(),
        )
        world["client"].kinit("jis", "jis-pw")
        cred = world["client"].get_credential(Principal("pop", "mail", ATHENA))
        assert cred is not None


class TestCrossRealmFailures:
    def test_unlinked_realm_rejected(self, world):
        """Without the exchanged key there is no path (Section 7.2's
        precondition)."""
        gen = world["gen"]
        uw_kdc = world["net"].add_host("uw-kdc")
        db_u = kdb_init(UW, "u-pw", gen)
        service = Principal("rlogin", "june", UW)
        register_service(db_u, service, gen)
        KerberosServer(db_u, gen.fork(b"u")).attach(uw_kdc)
        world["client"].set_locator(UW, StaticLocator([uw_kdc.address]))

        world["client"].kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            world["client"].get_credential(service)
        # Athena's own TGS has no issuing key for UW.
        assert err.value.code == ErrorCode.KDC_SERVICE_UNKNOWN

    def test_accepting_realm_without_key_rejects(self, world):
        """One-way registration: Athena can issue, but if LCS lost its
        accepting key the TGT is refused."""
        gen = world["gen"]
        db_l2 = kdb_init(UW, "u2-pw", gen)
        # Athena can issue TGTs for UW...
        register_issuing_key(world["db_a"], UW, gen.session_key())
        # ...but UW never registered the accepting side.
        uw_kdc = world["net"].add_host("uw2-kdc")
        service = Principal("rlogin", "x", UW)
        register_service(db_l2, service, gen)
        KerberosServer(db_l2, gen.fork(b"u2")).attach(uw_kdc)
        world["client"].set_locator(UW, StaticLocator([uw_kdc.address]))

        world["client"].kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            world["client"].get_credential(service)
        assert err.value.code == ErrorCode.KDC_NO_CROSS_REALM

    def test_no_kdc_directory_entry(self, world):
        world["client"].kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            world["client"].get_credential(Principal("svc", "h", "UNKNOWN.REALM"))
        assert err.value.code == ErrorCode.KDC_SERVICE_UNKNOWN

    def test_realm_chaining_refused(self, world):
        """The paper stops at one hop: "it would be necessary to record
        the entire path that was taken" — so a foreign client may not be
        issued a further cross-realm TGT."""
        gen = world["gen"]
        # Link LCS -> UW as well, so the chain A -> LCS -> UW is tempting.
        uw_kdc = world["net"].add_host("uw3-kdc")
        db_u = kdb_init(UW, "u3-pw", gen)
        link_realms(world["db_l"], db_u, gen)
        KerberosServer(db_u, gen.fork(b"u3")).attach(uw_kdc)

        client = world["client"]
        client.set_locator(UW, StaticLocator([uw_kdc.address]))
        client.kinit("jis", "jis-pw")
        # Get a TGT for LCS (one hop — fine)...
        client.get_credential(world["service"])
        remote_tgt = client.cache.remote_tgt(ATHENA, LCS)
        assert remote_tgt is not None
        # ...then try to use it at LCS to reach UW (second hop).
        with pytest.raises(KerberosError) as err:
            client._tgs_exchange(LCS, remote_tgt, tgs_principal(LCS, UW), None)
        assert err.value.code == ErrorCode.KDC_NO_CROSS_REALM


class TestAsDirectCrossRealm:
    def test_as_can_issue_remote_tgt_directly(self, world):
        """The historical alternative path: ask the *authentication
        service* (not the TGS) for the remote realm's TGT.  Works because
        the remote TGS is just another service principal in the local
        database; costs a password-key decryption instead of a TGT one."""
        client = world["client"]
        cred = client.as_exchange(
            Principal("jis", "", ATHENA),
            "jis-pw",
            tgs_principal(ATHENA, LCS),
        )
        # The remote TGT from the AS is as good as one from the TGS.
        client.cache.owner = Principal("jis", "", ATHENA)
        remote_tgt = client.cache.remote_tgt(ATHENA, LCS)
        assert remote_tgt is not None
        service_cred = client._tgs_exchange(LCS, remote_tgt, world["service"], None)
        ticket = unseal_ticket(service_cred.ticket, world["service_key"])
        assert str(ticket.client) == f"jis@{ATHENA}"
