"""Authentication-server (AS) exchange tests (paper Figure 5) — exp F5."""

import pytest

from repro.core import (
    AsRequest,
    ErrorCode,
    KerberosError,
    MessageType,
    Principal,
    encode_message,
    expect_reply,
    tgs_principal,
    unseal_ticket,
)
from repro.crypto import string_to_key
from repro.database.schema import ATTR_DISABLED
from repro.netsim.ports import KERBEROS_PORT

from tests.core.conftest import REALM


def raw_as_request(ws, kdc_host, client="jis", life=28800.0, service=None, ts=None):
    request = AsRequest(
        client=Principal(client, "", REALM),
        service=service or tgs_principal(REALM),
        requested_life=life,
        timestamp=ts if ts is not None else ws.clock.now(),
    )
    return ws.rpc(
        kdc_host.address, KERBEROS_PORT, encode_message(MessageType.AS_REQ, request)
    )


class TestInitialTicket:
    def test_reply_decrypts_with_password_key(self, kdc, ws, kdc_host):
        raw = raw_as_request(ws, kdc_host)
        reply = expect_reply(raw, MessageType.AS_REP)
        body = reply.open(string_to_key("jis-pw"))
        assert body.server.same_entity(tgs_principal(REALM))

    def test_password_never_on_wire(self, kdc, ws, kdc_host, net):
        """The central property of Figure 5: only the user's *name*
        travels; the password stays on the workstation."""
        captured = []
        net.add_tap(lambda d: captured.append(d.payload))
        raw_as_request(ws, kdc_host)
        for payload in captured:
            assert b"jis-pw" not in payload
            assert string_to_key("jis-pw").key_bytes not in payload

    def test_wrong_password_cannot_open_reply(self, kdc, ws, kdc_host):
        raw = raw_as_request(ws, kdc_host)
        reply = expect_reply(raw, MessageType.AS_REP)
        with pytest.raises(KerberosError) as err:
            reply.open(string_to_key("not-the-password"))
        assert err.value.code == ErrorCode.INTK_BADPW

    def test_ticket_sealed_in_tgs_key(self, kdc, ws, kdc_host, db):
        raw = raw_as_request(ws, kdc_host)
        body = expect_reply(raw, MessageType.AS_REP).open(string_to_key("jis-pw"))
        tgs_key = db.principal_key(tgs_principal(REALM))
        ticket = unseal_ticket(body.ticket, tgs_key)
        assert ticket.server.same_entity(tgs_principal(REALM))
        assert str(ticket.client) == f"jis@{REALM}"
        assert ticket.address == ws.address.as_int

    def test_session_key_matches_ticket(self, kdc, ws, kdc_host, db):
        raw = raw_as_request(ws, kdc_host)
        body = expect_reply(raw, MessageType.AS_REP).open(string_to_key("jis-pw"))
        ticket = unseal_ticket(body.ticket, db.principal_key(tgs_principal(REALM)))
        assert ticket.session_key == body.session_key

    def test_unknown_client_rejected(self, kdc, ws, kdc_host):
        raw = raw_as_request(ws, kdc_host, client="mallory")
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN

    def test_unknown_service_rejected(self, kdc, ws, kdc_host):
        raw = raw_as_request(
            ws, kdc_host, service=Principal("nosuch", "svc", REALM)
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_SERVICE_UNKNOWN

    def test_expired_principal_rejected(self, kdc, ws, kdc_host, db, net):
        db.add_principal(
            Principal("gone", "", REALM), password="x", expiration=10.0
        )
        net.clock.advance(100.0)
        raw = raw_as_request(ws, kdc_host, client="gone")
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PR_EXPIRED

    def test_disabled_principal_rejected(self, kdc, ws, kdc_host, db):
        db.add_principal(
            Principal("locked", "", REALM), password="x", attributes=ATTR_DISABLED
        )
        raw = raw_as_request(ws, kdc_host, client="locked")
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PR_DISABLED

    def test_lifetime_capped_by_policy(self, kdc, ws, kdc_host):
        """Requesting a week yields at most the 8-hour default."""
        raw = raw_as_request(ws, kdc_host, life=7 * 24 * 3600.0)
        body = expect_reply(raw, MessageType.AS_REP).open(string_to_key("jis-pw"))
        assert body.life == 8 * 3600.0

    def test_short_request_honored(self, kdc, ws, kdc_host):
        raw = raw_as_request(ws, kdc_host, life=600.0)
        body = expect_reply(raw, MessageType.AS_REP).open(string_to_key("jis-pw"))
        assert body.life == 600.0

    def test_garbage_request_yields_error_reply(self, kdc, ws, kdc_host):
        raw = ws.rpc(kdc_host.address, KERBEROS_PORT, b"\x01garbage!")
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_GEN_ERR

    def test_request_counters(self, kdc, ws, kdc_host):
        raw_as_request(ws, kdc_host)
        raw_as_request(ws, kdc_host, client="mallory")
        assert kdc.as_requests == 2
        assert kdc.errors == 1


class TestDegenerateLifetimes:
    def test_negative_requested_life_clamped_to_zero(self, kdc, ws, kdc_host):
        """A hostile or buggy client asking for negative lifetime gets a
        zero-life (instantly expired) ticket, never a time-travelling one."""
        raw = raw_as_request(ws, kdc_host, life=-3600.0)
        body = expect_reply(raw, MessageType.AS_REP).open(string_to_key("jis-pw"))
        assert body.life == 0.0

    def test_zero_life_ticket_unusable(self, kdc, ws, kdc_host, db, net):
        from repro.core import KerberosClient

        client = KerberosClient(ws, REALM, [kdc_host.address])
        tgt = client.kinit("jis", "jis-pw", life=0.0)
        assert tgt.expired(net.clock.now() + 0.001)
