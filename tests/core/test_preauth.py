"""Preauthentication (extension beyond the 1988 paper).

The paper's AS answers any request with material sealed under the named
user's key — which is also perfect offline-guessing material for an
attacker who merely *asks*.  Preauthentication (added to Kerberos soon
after the paper; standard in V5) requires the request itself to prove
knowledge of the key.  These tests cover the mechanism, the negotiation,
and what it does and does not fix.
"""

import pytest

from repro.core import ErrorCode, KerberosError
from repro.core.messages import (
    MessageType,
    PreauthAsRequest,
    build_preauth,
    encode_message,
    expect_reply,
)
from repro.principal import tgs_principal
from repro.crypto import KeyGenerator, string_to_key
from repro.database.schema import ATTR_REQUIRE_PREAUTH
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.threat import Eavesdropper, active_as_probe

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("open", "open-pw")                       # 1988 behaviour
    realm.db.add_principal(                                 # hardened user
        Principal("careful", "", REALM),
        password="careful-pw",
        attributes=ATTR_REQUIRE_PREAUTH,
    )
    realm.add_service("rlogin", "priam")
    return net, realm


class TestNegotiation:
    def test_kinit_transparent_for_preauth_user(self, world):
        """The client negotiates automatically: kinit just works."""
        net, realm = world
        ws = realm.workstation()
        assert ws.client.kinit("careful", "careful-pw") is not None

    def test_kinit_unchanged_for_open_user(self, world):
        net, realm = world
        ws = realm.workstation()
        realm.net.reset_stats()
        ws.client.kinit("open", "open-pw")
        assert net.stats["port:750"] == 1   # no extra round trip

    def test_preauth_costs_one_extra_round_trip(self, world):
        net, realm = world
        ws = realm.workstation()
        realm.net.reset_stats()
        ws.client.kinit("careful", "careful-pw")
        assert net.stats["port:750"] == 2   # refusal + preauth retry

    def test_wrong_password_now_fails_at_the_kdc(self, world):
        """With preauth, a wrong password is caught by the KDC
        (KDC_PREAUTH_FAILED) instead of failing silently on the
        workstation."""
        net, realm = world
        ws = realm.workstation()
        with pytest.raises(KerberosError) as err:
            ws.client.kinit("careful", "wrong-pw")
        assert err.value.code == ErrorCode.KDC_PREAUTH_FAILED

    def test_preauth_user_full_protocol(self, world):
        net, realm = world
        ws = realm.workstation()
        ws.client.kinit("careful", "careful-pw")
        service = Principal("rlogin", "priam", REALM)
        assert ws.client.get_credential(service) is not None


class TestKdcEnforcement:
    def test_plain_request_refused(self, world):
        net, realm = world
        attacker = net.add_host("prober")
        reply = active_as_probe(
            attacker, realm.master_host.address,
            Principal("careful", "", REALM), REALM,
        )
        assert reply is None   # KDC_PREAUTH_REQUIRED

    def test_stale_preauth_refused(self, world):
        """A captured preauth blob replayed later fails the freshness
        check (its sealed timestamp no longer matches a fresh request,
        and an old request timestamp is outside the window)."""
        net, realm = world
        ws = realm.workstation()
        old_now = ws.host.clock.now()
        blob = build_preauth(string_to_key("careful-pw"), old_now)
        net.clock.advance(600.0)
        request = PreauthAsRequest(
            client=Principal("careful", "", REALM),
            service=tgs_principal(REALM),
            requested_life=3600.0,
            timestamp=old_now,               # matches the blob, but stale
            preauth=blob,
        )
        raw = ws.host.rpc(
            realm.master_host.address, 750,
            encode_message(MessageType.PREAUTH_AS_REQ, request),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PREAUTH_FAILED

    def test_blob_for_different_timestamp_refused(self, world):
        net, realm = world
        ws = realm.workstation()
        now = ws.host.clock.now()
        request = PreauthAsRequest(
            client=Principal("careful", "", REALM),
            service=tgs_principal(REALM),
            requested_life=3600.0,
            timestamp=now,
            preauth=build_preauth(string_to_key("careful-pw"), now + 5.0),
        )
        raw = ws.host.rpc(
            realm.master_host.address, 750,
            encode_message(MessageType.PREAUTH_AS_REQ, request),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(raw, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PREAUTH_FAILED


class TestWhatPreauthFixes:
    def test_active_probe_blocked_for_preauth_user(self, world):
        """The headline: nobody can harvest guessing material for a
        preauth-protected user just by asking."""
        net, realm = world
        attacker = net.add_host("harvester")
        assert active_as_probe(
            attacker, realm.master_host.address,
            Principal("careful", "", REALM), REALM,
        ) is None

    def test_active_probe_succeeds_against_1988_user(self, world):
        """...whereas the 1988 design hands it over: probe, then crack
        offline."""
        net, realm = world
        realm.add_user("victim", "password")    # a weak password
        attacker = net.add_host("harvester")
        eve = Eavesdropper(net)
        reply = active_as_probe(
            attacker, realm.master_host.address,
            Principal("victim", "", REALM), REALM,
        )
        assert reply is not None
        guessed = eve.offline_password_guess(
            reply, ["123456", "password", "qwerty"]
        )
        assert guessed == "password"

    def test_passive_capture_still_works_against_preauth_user(self, world):
        """The honest limit: preauth closes the active probe only.  A
        wiretap on a real login still yields crackable material (the
        preauth blob itself and the reply are both keyed by the
        password)."""
        net, realm = world
        realm.db.add_principal(
            Principal("weakling", "", REALM),
            password="password",
            attributes=ATTR_REQUIRE_PREAUTH,
        )
        eve = Eavesdropper(net)
        ws = realm.workstation()
        ws.client.kinit("weakling", "password")
        reply = eve.harvest_kdc_replies()[-1]
        assert eve.offline_password_guess(
            reply, ["123456", "password"]
        ) == "password"
