"""The batch-aware KDC request plane.

The staged pipeline (decode-all → lookup-all → seal-all → encode-all)
must be *observationally identical* to serving each datagram alone:
bit-identical replies (keygen state consumed in item order, split and
interleaved seals bit-exact), typed per-item errors that never poison
batchmates, and the same metrics/audit/trace surface.  Two same-seed
realms make the comparison exact — one serves requests one at a time
through the classic plane, the other serves the same wire bytes as one
batch through :meth:`KerberosServer.process_request_buffer`.
"""

import pytest

from repro.core.authenticator import build_authenticator
from repro.core.errors import ErrorCode
from repro.core.messages import (
    AsRequest,
    ErrorReply,
    MessageType,
    TgsRequest,
    decode_message,
    encode_message,
)
from repro.crypto import keycache
from repro.encode import pack_frames
from repro.netsim import Network
from repro.principal import Principal, tgs_principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


class _Datagram:
    """The payload/src/trace triple the request plane consumes."""

    def __init__(self, payload, src):
        self.payload = payload
        self.src = src
        self.trace = None


def build_realm():
    net = Network(seed=11)
    realm = Realm(net, REALM, seed=b"batch-plane")
    realm.add_user("jis", "jis-pw")
    realm.add_user("bcn", "bcn-pw")
    realm.add_service("rlogin", "priam")
    return realm


def as_wire(client="jis", life=3600.0, timestamp=0.0):
    return encode_message(MessageType.AS_REQ, AsRequest(
        client=Principal(client, "", REALM),
        service=tgs_principal(REALM),
        requested_life=life,
        timestamp=timestamp,
    ))


def tgs_wire(realm, ws, service=("rlogin", "priam")):
    """A valid TGS_REQ, built the way the client library builds one."""
    tgt = ws.client.cache.tgt(REALM)
    now = realm.net.clock.now()
    authenticator = build_authenticator(
        client=ws.client.cache.owner,
        address=ws.host.address,
        now=now,
        session_key=tgt.session_key,
    )
    request = TgsRequest(
        service=Principal(service[0], service[1], REALM),
        requested_life=3600.0,
        timestamp=now,
        tgt_realm=REALM,
        tgt=tgt.ticket,
        authenticator=authenticator,
    )
    return encode_message(MessageType.TGS_REQ, request)


@pytest.fixture(autouse=True)
def fresh_caches():
    keycache.clear()
    yield
    keycache.clear()


def _mixed_batch(realm, ws):
    """AS + TGS + garbage + unknown principal, interleaved."""
    return [
        as_wire("jis"),
        b"\xffnot a kerberos message",
        tgs_wire(realm, ws),
        as_wire("nosuch"),
        as_wire("bcn"),
    ]


class TestBatchMatchesSinglePlane:
    def test_mixed_batch_is_bit_identical(self):
        realm_a = build_realm()
        realm_b = build_realm()
        ws_a = realm_a.workstation()
        ws_b = realm_b.workstation()
        ws_a.client.kinit("jis", "jis-pw")
        ws_b.client.kinit("jis", "jis-pw")

        wires_a = _mixed_batch(realm_a, ws_a)
        wires_b = _mixed_batch(realm_b, ws_b)
        assert wires_a == wires_b  # same-seed realms, same bytes in

        src = ws_a.host.address
        singles = [
            realm_a.kdc._serve(_Datagram(w, src)) for w in wires_a
        ]
        batch = realm_b.kdc.process_request_buffer(
            pack_frames(wires_b), ws_b.host.address
        )
        assert [bytes(reply) for reply in batch] == singles

    def test_per_item_typed_errors_batch_survives(self):
        realm = build_realm()
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        replies = realm.kdc.process_request_buffer(
            pack_frames(_mixed_batch(realm, ws)), ws.host.address
        )
        kinds = [decode_message(r) for r in replies]
        assert kinds[0][0] == MessageType.AS_REP
        assert kinds[2][0] == MessageType.TGS_REP
        assert kinds[4][0] == MessageType.AS_REP
        garbage = kinds[1][1]
        unknown = kinds[3][1]
        assert isinstance(garbage, ErrorReply)
        assert garbage.code == int(ErrorCode.KDC_GEN_ERR)
        assert isinstance(unknown, ErrorReply)
        assert unknown.code == int(ErrorCode.KDC_PR_UNKNOWN)

    def test_caches_disabled_stays_bit_identical(self):
        """The skeleton/key caches are a pure optimization: with every
        cache layer off, the batch plane still answers byte-for-byte."""
        realm_a = build_realm()
        realm_b = build_realm()
        wires = [as_wire("jis", timestamp=float(i)) for i in range(5)]
        src_a = realm_a.workstation().host.address
        src_b = realm_b.workstation().host.address
        with keycache.caches_disabled():
            singles = [
                realm_a.kdc._serve(_Datagram(w, src_a)) for w in wires
            ]
            batch = realm_b.kdc.process_request_buffer(
                pack_frames(wires), src_b
            )
        assert [bytes(reply) for reply in batch] == singles
        assert keycache.skeleton_stats()["size"] == 0


class TestBatchObservability:
    def test_batch_size_histogram_and_skeleton_hits(self):
        realm = build_realm()
        src = realm.workstation().host.address
        wires = [as_wire("jis", timestamp=float(i)) for i in range(8)]
        realm.kdc.process_request_buffer(pack_frames(wires), src)
        labels = {"server": realm.master_host.name}
        hist = realm.net.metrics.get("kdc.batch_size", labels)
        assert hist.count == 1  # one batch ...
        assert hist.sum == 8.0  # ... of eight requests
        # Seven of the eight AS tickets reuse the first one's skeleton.
        assert realm.net.metrics.total(
            "kdc.skeleton_hits_total", **labels
        ) >= 7

    def test_per_item_spans_carry_stage_attrs(self):
        realm = build_realm()
        src = realm.workstation().host.address
        wires = [as_wire("jis"), as_wire("bcn")]
        realm.kdc.process_request_buffer(pack_frames(wires), src)
        spans = [
            s for s in realm.net.tracer.spans if s.name == "kdc.as"
        ]
        assert len(spans) == 2
        for span in spans:
            assert span.attrs["batch_size"] == 2
            assert span.attrs["stage_decoded"] == 2
            assert span.attrs["stage_sealed"] == 2
            assert span.attrs["stage_interleaved_blocks"] > 0
            assert span.attrs["stage_encoded_bytes"] > 0
            assert span.attrs["crypto_ops"] > 0

    def test_interleaved_blocks_metric_mirrors(self):
        realm = build_realm()
        src = realm.workstation().host.address
        before = realm.net.metrics.total("crypto.interleaved_blocks_total")
        wires = [as_wire("jis", timestamp=float(i)) for i in range(4)]
        realm.kdc.process_request_buffer(pack_frames(wires), src)
        assert realm.net.metrics.total(
            "crypto.interleaved_blocks_total"
        ) > before


class TestSkeletonInvalidation:
    def test_principal_mutation_flushes_skeletons(self):
        """A kadmin write lands in the journal and — through the
        database mutation listener — empties the skeleton cache."""
        realm = build_realm()
        src = realm.workstation().host.address
        realm.kdc.process_request_buffer(
            pack_frames([as_wire("jis")]), src
        )
        assert keycache.skeleton_stats()["size"] > 0
        realm.db.change_key(
            Principal("rlogin", "priam", REALM), new_password="rotated"
        )
        assert keycache.skeleton_stats()["size"] == 0

    def test_slave_dump_application_flushes_skeletons(self):
        realm = build_realm()
        replica = realm.db.replica()
        from repro.core.kdc import KerberosServer

        host = realm.net.add_host("slave-kdc")
        kdc = KerberosServer(
            replica, realm.keygen.fork(b"slave")
        ).attach(host)
        keycache.skeleton_put(("warm",), (b"x", 0))
        replica.load_dump(realm.db.dump(now=1.0))
        assert keycache.skeleton_stats()["size"] == 0
        kdc.detach() if hasattr(kdc, "detach") else None

    def test_rotated_service_key_cannot_hit_stale_skeleton(self):
        """Even without the listener, content addressing makes a rotated
        key miss: the sealed ticket after rotation opens under the new
        key."""
        realm = build_realm()
        ws = realm.workstation()
        src = ws.host.address
        realm.kdc.process_request_buffer(
            pack_frames([as_wire("jis")]), src
        )
        realm.db.change_key(
            Principal("rlogin", "priam", REALM), new_password="rotated"
        )
        ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(
            Principal("rlogin", "priam", REALM)
        )
        from repro.core.ticket import unseal_ticket

        new_key = realm.db.principal_key(
            Principal("rlogin", "priam", REALM)
        )
        ticket = unseal_ticket(cred.ticket, new_key)
        assert ticket.client == Principal("jis", "", REALM)
