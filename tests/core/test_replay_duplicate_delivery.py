"""Replay cache vs the fault plane's duplicated datagrams.

Section 4.3: "a request received with the same ticket and time stamp as
one already received can be discarded."  A duplicated UDP datagram is
byte-identical — ticket, authenticator, timestamp and all — so the
server must reject exactly the second copy, silently, while the
original request succeeds from the client's point of view.
"""

import pytest

from repro.core import KerberosClient, KerberosServer, Principal
from repro.core.replay import ReplayCache
from repro.crypto import KeyGenerator
from repro.database.admin_tools import kdb_init, register_service
from repro.netsim import Duplicate, Match, Network
from repro.netsim.ports import KERBEROS_PORT

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network(seed=11)
    gen = KeyGenerator(seed=b"dup")
    db = kdb_init(REALM, "mpw", gen)
    db.add_principal(Principal("jis", "", REALM), password="pw")
    service = Principal("rlogin", "priam", REALM)
    register_service(db, service, gen)
    kdc_host = net.add_host("kerberos")
    kdc = KerberosServer(db, gen.fork(b"kdc")).attach(kdc_host)
    ws = net.add_host("ws")
    client = KerberosClient(ws, REALM, [kdc_host.address])
    return net, kdc, client, service


class TestDuplicatedKdcTraffic:
    def test_duplicated_tgs_rejected_exactly_once(self, world):
        """Every KDC-bound datagram is delivered twice.  The duplicate
        AS request is harmless (the AS keeps no replay state); the
        duplicate TGS request — same authenticator — must be rejected
        exactly once, counted, and invisible to the client."""
        net, kdc, client, service = world
        net.faults.add(Duplicate(1.0, Match.build(port=KERBEROS_PORT)))

        client.kinit("jis", "pw")
        cred = client.get_credential(service)
        assert cred is not None

        # One AS + one TGS request, each delivered twice.
        assert net.metrics.total("net.duplicates_total") == 2
        assert net.metrics.total("kdc.requests_total", kind="as") == 2
        assert net.metrics.total("kdc.requests_total", kind="tgs") == 2
        # The replay cache saw the TGS authenticator twice: fresh once,
        # replay exactly once.
        assert net.metrics.total("replay.checks_total", result="fresh") == 1
        assert net.metrics.total("replay.checks_total", result="replay") == 1
        # The rejection surfaced as a server-side RD_AP_REPEAT outcome,
        # never as an error to the client.
        assert net.metrics.total(
            "kdc.outcomes_total", kind="tgs", code="RD_AP_REPEAT"
        ) == 1

    def test_every_duplicate_absorbed_over_many_exchanges(self, world):
        """N duplicated TGS exchanges -> N replay rejections, N successes."""
        net, kdc, client, service = world
        net.faults.add(Duplicate(1.0, Match.build(port=KERBEROS_PORT)))
        client.kinit("jis", "pw")
        n = 5
        for i in range(n):
            svc = Principal("rlogin", f"host{i}", REALM)
            register_service(kdc.db, svc, KeyGenerator(seed=b"svc%d" % i))
            assert client.get_credential(svc) is not None
        assert net.metrics.total("replay.checks_total", result="replay") == n
        assert net.metrics.total("replay.checks_total", result="fresh") == n


class TestCacheUnit:
    def test_exactly_once_rejection_is_counted(self):
        """The primitive itself: the same triple presented twice is
        rejected on the second presentation only, and the metrics agree."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        cache = ReplayCache(metrics=metrics, labels={"server": "s"})
        assert cache.check_and_store("jis@A", 1, 100.0, now=100.0) is True
        assert cache.check_and_store("jis@A", 1, 100.0, now=100.0) is False
        assert cache.check_and_store("jis@A", 1, 100.0, now=100.0) is False
        assert metrics.total("replay.checks_total", result="fresh") == 1
        assert metrics.total("replay.checks_total", result="replay") == 2
