"""Service key rotation via key version numbers.

Section 6.3 describes extracting a server's key into /etc/srvtab.  Keys
get changed (compromise, policy), and the key-version machinery lets
outstanding tickets — sealed under the *old* key — keep working until
they expire, while new tickets use the new key.
"""

import pytest

from repro.core import ErrorCode, KerberosError, ReplayCache, krb_rd_req
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, _ = realm.add_service("rlogin", "priam")
    srvtab = realm.srvtab_for(service)
    return net, realm, service, srvtab


class TestRotation:
    def test_old_ticket_survives_rotation(self, world):
        """A ticket issued before the rotation still authenticates,
        because the srvtab retains the old key under its version."""
        net, realm, service, srvtab = world
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, cred, _ = ws.client.mk_req(service)
        assert cred.kvno == 1

        realm.rotate_service_key(service, srvtab)

        ctx = krb_rd_req(request, service, srvtab, ws.host.address, net.clock.now())
        assert ctx.client.name == "jis"

    def test_new_tickets_use_new_key_version(self, world):
        net, realm, service, srvtab = world
        realm.rotate_service_key(service, srvtab)

        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, cred, _ = ws.client.mk_req(service)
        assert cred.kvno == 2
        ctx = krb_rd_req(request, service, srvtab, ws.host.address, net.clock.now())
        assert ctx.client.name == "jis"

    def test_stale_srvtab_rejects_new_tickets(self, world):
        """A server that never installed the new srvtab cannot serve
        tickets sealed under the new key — the operational failure the
        kvno field makes diagnosable."""
        net, realm, service, srvtab = world
        stale_srvtab = realm.srvtab_for(service)   # copy before rotation
        realm.rotate_service_key(service)          # new key, not installed

        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, cred, _ = ws.client.mk_req(service)
        assert cred.kvno == 2
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, stale_srvtab, ws.host.address,
                       net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_VERSION

    def test_multiple_rotations(self, world):
        net, realm, service, srvtab = world
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        creds = []
        cache = ReplayCache()
        for round_ in range(3):
            request, cred, _ = ws.client.mk_req(service)
            creds.append((request, cred))
            realm.rotate_service_key(service, srvtab)
            # Old ticket must be refetched for the next round to get the
            # new kvno; drop the cache entry to force it.
            ws.client.cache._creds.pop(str(service), None)
        # All three generations of tickets still verify.
        for request, cred in creds:
            ctx = krb_rd_req(request, service, srvtab, ws.host.address,
                             net.clock.now(), cache)
            assert ctx.client.name == "jis"
        assert [cred.kvno for _, cred in creds] == [1, 2, 3]

    def test_rotation_invalidates_nothing_early(self, world):
        """Rotation is not revocation: outstanding old-key tickets remain
        valid until expiry (a limit worth knowing about)."""
        net, realm, service, srvtab = world
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, _, _ = ws.client.mk_req(service)
        realm.rotate_service_key(service, srvtab)
        net.clock.advance(9 * 3600.0)   # now the ticket has expired
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, srvtab, ws.host.address, net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_EXP
