"""Wire message and envelope tests."""

import pytest

from repro.core import (
    ApReply,
    ApRequest,
    AsRequest,
    ErrorCode,
    ErrorReply,
    KdcReply,
    KdcReplyBody,
    KerberosError,
    MessageType,
    Principal,
    TgsRequest,
    decode_message,
    encode_message,
    expect_reply,
    tgs_principal,
)
from repro.crypto import KeyGenerator

REALM = "ATHENA.MIT.EDU"
GEN = KeyGenerator(seed=b"msg-tests")


def as_request():
    return AsRequest(
        client=Principal("jis", "", REALM),
        service=tgs_principal(REALM),
        requested_life=28800.0,
        timestamp=100.0,
    )


_BODY_SESSION_KEY = GEN.session_key().key_bytes


def reply_body(ticket=b"sealed-ticket"):
    return KdcReplyBody(
        session_key=_BODY_SESSION_KEY,
        server=tgs_principal(REALM),
        issue_time=100.0,
        life=28800.0,
        kvno=1,
        request_timestamp=100.0,
        ticket=ticket,
    )


class TestEnvelope:
    def test_round_trip_each_type(self):
        key = GEN.session_key()
        samples = [
            (MessageType.AS_REQ, as_request()),
            (MessageType.AS_REP, KdcReply.build(Principal("jis"), reply_body(), key)),
            (
                MessageType.TGS_REQ,
                TgsRequest(
                    service=Principal("rlogin", "priam", REALM),
                    requested_life=3600.0,
                    timestamp=5.0,
                    tgt_realm=REALM,
                    tgt=b"tgt-bytes",
                    authenticator=b"auth-bytes",
                ),
            ),
            (
                MessageType.AP_REQ,
                ApRequest(ticket=b"t", authenticator=b"a", mutual=True, kvno=1),
            ),
            (MessageType.AP_REP, ApReply.build(7.0, key)),
            (MessageType.ERROR, ErrorReply(code=1, text="nope")),
        ]
        for mtype, message in samples:
            decoded_type, decoded = decode_message(encode_message(mtype, message))
            assert decoded_type == mtype
            assert decoded == message

    def test_type_mismatch_rejected_on_encode(self):
        with pytest.raises(TypeError):
            encode_message(MessageType.AS_REQ, ErrorReply(code=1, text="x"))

    def test_unknown_type_byte(self):
        with pytest.raises(KerberosError) as err:
            decode_message(b"\xf0junk")
        assert err.value.code == ErrorCode.KDC_GEN_ERR

    def test_truncated_message(self):
        wire = encode_message(MessageType.AS_REQ, as_request())
        with pytest.raises(KerberosError):
            decode_message(wire[:-3])

    def test_trailing_garbage(self):
        wire = encode_message(MessageType.AS_REQ, as_request())
        with pytest.raises(KerberosError):
            decode_message(wire + b"\x00")

    def test_empty_message(self):
        with pytest.raises(KerberosError):
            decode_message(b"")


class TestKdcReply:
    def test_open_with_right_key(self):
        key = GEN.session_key()
        reply = KdcReply.build(Principal("jis"), reply_body(), key)
        assert reply.open(key) == reply_body()

    def test_open_with_wrong_key_is_badpw(self):
        """The wrong-password experience of Section 4.2."""
        reply = KdcReply.build(Principal("jis"), reply_body(), GEN.session_key())
        with pytest.raises(KerberosError) as err:
            reply.open(GEN.session_key())
        assert err.value.code == ErrorCode.INTK_BADPW

    def test_body_hidden_on_wire(self):
        key = GEN.session_key()
        reply = KdcReply.build(Principal("jis"), reply_body(b"TICKETBYTES"), key)
        assert b"TICKETBYTES" not in reply.sealed_body


class TestApReply:
    def test_verify_accepts_genuine(self):
        key = GEN.session_key()
        ApReply.build(50.0, key).verify(50.0, key)

    def test_verify_checks_timestamp_plus_one(self):
        key = GEN.session_key()
        with pytest.raises(KerberosError):
            ApReply.build(50.0, key).verify(51.0, key)

    def test_verify_rejects_wrong_key(self):
        """A masquerading server cannot produce the Figure 7 proof."""
        with pytest.raises(KerberosError):
            ApReply.build(50.0, GEN.session_key()).verify(50.0, GEN.session_key())


class TestErrorReply:
    def test_raise_reconstructs_error(self):
        reply = ErrorReply(code=int(ErrorCode.KDC_PR_UNKNOWN), text="who?")
        with pytest.raises(KerberosError) as err:
            reply.raise_()
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN
        assert "who?" in str(err.value)

    def test_from_error_round_trip(self):
        original = KerberosError(ErrorCode.RD_AP_TIME, "too skewed")
        reply = ErrorReply.from_error(original)
        with pytest.raises(KerberosError) as err:
            reply.raise_()
        assert err.value.code == original.code


class TestExpectReply:
    def test_returns_wanted_message(self):
        wire = encode_message(MessageType.AS_REQ, as_request())
        assert expect_reply(wire, MessageType.AS_REQ) == as_request()

    def test_raises_carried_error(self):
        wire = encode_message(
            MessageType.ERROR,
            ErrorReply(code=int(ErrorCode.KDC_PR_UNKNOWN), text="x"),
        )
        with pytest.raises(KerberosError) as err:
            expect_reply(wire, MessageType.AS_REP)
        assert err.value.code == ErrorCode.KDC_PR_UNKNOWN

    def test_wrong_type_is_protocol_error(self):
        wire = encode_message(MessageType.AS_REQ, as_request())
        with pytest.raises(KerberosError) as err:
            expect_reply(wire, MessageType.AS_REP)
        assert err.value.code == ErrorCode.INTK_PROT
