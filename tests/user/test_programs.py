"""User program tests: kinit, klist, kdestroy, kpasswd, kadmin, login."""

import pytest

from repro.kdbm import KdbmClient
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.user import (
    LoginError,
    LoginSession,
    kadmin_add_principal,
    kadmin_change_password,
    kdestroy,
    kinit,
    klist,
    kpasswd,
)

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def realm():
    net = Network()
    r = Realm(net, REALM)
    r.add_user("jis", "jis-pw")
    r.add_admin("jis", "jis-admin-pw")
    r.add_service("rlogin", "priam")
    return r


@pytest.fixture
def ws(realm):
    return realm.workstation()


@pytest.fixture
def kdbm(realm, ws):
    return KdbmClient(ws.client, realm.master_host.address)


class TestTicketPrograms:
    def test_kinit_output(self, ws):
        out = kinit(ws.client, "jis", "jis-pw")
        assert f"jis@{REALM}" in out
        assert "expires" in out

    def test_klist_empty(self, ws):
        assert "no ticket file" in klist(ws.client)

    def test_klist_lists_tickets(self, realm, ws):
        kinit(ws.client, "jis", "jis-pw")
        ws.client.get_credential(Principal("rlogin", "priam", REALM))
        out = klist(ws.client)
        assert "krbtgt" in out
        assert "rlogin.priam" in out
        assert f"Principal: jis@{REALM}" in out

    def test_kdestroy_output(self, ws):
        kinit(ws.client, "jis", "jis-pw")
        assert "1 wiped" in kdestroy(ws.client)
        assert "no ticket file" in klist(ws.client)

    def test_kinit_after_expiry(self, realm, ws):
        """Section 6.1's mid-session re-kinit scenario."""
        kinit(ws.client, "jis", "jis-pw")
        realm.net.clock.advance(9 * 3600)
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            ws.client.get_credential(Principal("rlogin", "priam", REALM))
        kinit(ws.client, "jis", "jis-pw")
        ws.client.get_credential(Principal("rlogin", "priam", REALM))


class TestPasswordPrograms:
    def test_kpasswd(self, realm, ws, kdbm):
        out = kpasswd(kdbm, "jis", "jis-pw", "brand-new")
        assert "Password changed" in out
        kinit(ws.client, "jis", "brand-new")

    def test_kadmin_add(self, realm, ws, kdbm):
        out = kadmin_add_principal(
            kdbm, "jis", "jis-admin-pw", "newbie", "welcome1"
        )
        assert "added" in out
        kinit(ws.client, "newbie", "welcome1")

    def test_kadmin_cpw(self, realm, ws, kdbm):
        kadmin_change_password(kdbm, "jis", "jis-admin-pw", "jis", "reset!")
        kinit(ws.client, "jis", "reset!")


class TestLoginSession:
    def test_login_logout_cycle(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        session.login("jis", "jis-pw")
        assert session.logged_in
        assert session.username == "jis"
        wiped = session.logout()
        assert wiped == 1
        assert not session.logged_in

    def test_wrong_password(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        with pytest.raises(LoginError, match="Incorrect password"):
            session.login("jis", "nope")
        assert not session.logged_in

    def test_unknown_user(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        with pytest.raises(LoginError, match="No such user"):
            session.login("mallory", "x")

    def test_double_login_refused(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        session.login("jis", "jis-pw")
        with pytest.raises(LoginError, match="already logged in"):
            session.login("jis", "jis-pw")

    def test_logout_without_login(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        with pytest.raises(LoginError):
            session.logout()

    def test_logout_destroys_service_tickets_too(self, realm, ws):
        """Section 6.1: "Kerberos tickets are automatically destroyed
        when a user logs out" — all of them."""
        session = LoginSession(ws.host, ws.client)
        session.login("jis", "jis-pw")
        ws.client.get_credential(Principal("rlogin", "priam", REALM))
        assert session.logout() == 2
        assert ws.client.klist() == []

    def test_session_duration(self, realm, ws):
        session = LoginSession(ws.host, ws.client)
        session.login("jis", "jis-pw")
        realm.net.clock.advance(1234.0)
        assert session.session_duration() == pytest.approx(1234.0)

    def test_no_kdc_is_login_failure(self, realm, ws):
        realm.net.set_down(realm.master_host.name)
        session = LoginSession(ws.host, ws.client)
        with pytest.raises(Exception):
            session.login("jis", "jis-pw")


class TestKsrvutil:
    def test_lists_names_and_versions(self, realm):
        from repro.principal import Principal
        from repro.user import ksrvutil_list

        service = Principal("rlogin", "priam", REALM)
        tab = realm.srvtab_for(service)
        realm.rotate_service_key(service, tab)
        out = ksrvutil_list(tab)
        assert "rlogin.priam" in out
        assert "  2  " in out
        # No key bytes in the listing.
        assert realm.service_key(service).key_bytes.hex() not in out

    def test_empty_srvtab(self):
        from repro.core import SrvTab
        from repro.user import ksrvutil_list

        assert "empty" in ksrvutil_list(SrvTab())
