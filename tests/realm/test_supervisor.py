"""The realm supervisor: heartbeat detection, automatic promotion,
flap protection, discovery re-pointing, and old-master rejoin.

The acceptance bar for the self-healing loop: kill the master, touch
nothing, and watch the realm elect a new master, re-point its clients,
and absorb the old master back as a slave — without a second journal
epoch conflict when it returns.
"""

import pytest

from repro.apps.hesiod import HesiodServer, hesiod_kdcs
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm, RealmSupervisor, SupervisorConfig

REALM = "ATHENA.MIT.EDU"

#: Defaults: 5 s heartbeats, 3 misses to promote → detection in ~15 s.
DETECT = 3 * 5.0 + 10.0


def build(seed=11, n_slaves=2, config=None):
    net = Network(seed=seed)
    realm = Realm(net, REALM, n_slaves=n_slaves)
    realm.add_user("jis", "jis-pw")
    realm.propagate()
    realm.schedule_incremental(interval=30.0)
    supervisor = RealmSupervisor(
        realm, config if config is not None else SupervisorConfig()
    ).attach(net.add_host("realm-monitor"))
    return net, realm, supervisor


class TestDetection:
    def test_healthy_realm_never_promotes(self):
        net, realm, supervisor = build()
        net.runtime.run_for(300.0)
        assert supervisor.promotions == 0
        assert all(v == 0 for v in supervisor.misses.values())

    def test_heartbeats_are_counted_per_target(self):
        net, realm, supervisor = build()
        net.runtime.run_for(30.0)
        for host in [realm.master_host] + [s.host for s in realm.slaves]:
            assert net.metrics.counter(
                "supervisor.heartbeats_total",
                {"target": host.name, "result": "ok"},
            ).value > 0

    def test_single_missed_heartbeat_does_not_promote(self):
        net, realm, supervisor = build()
        net.runtime.run_for(20.0)
        # Bounce the master briefly: at most 1-2 missed probes.
        net.crash_host(realm.master_host.name, downtime=6.0)
        old_master = realm.master_host
        net.runtime.run_for(60.0)
        assert supervisor.promotions == 0
        assert realm.master_host is old_master


class TestAutomaticPromotion:
    def test_master_death_promotes_without_manual_intervention(self):
        net, realm, supervisor = build()
        old_master = realm.master_host
        net.runtime.run_for(10.0)
        net.crash_host(old_master.name)          # never restarts
        net.runtime.run_for(DETECT)
        assert supervisor.promotions == 1
        assert realm.master_host is not old_master
        # Writes work on the new master immediately.
        realm.add_user("fresh", "fresh-pw")
        assert realm.db.exists(Principal("fresh", "", REALM))

    def test_promotion_picks_the_freshest_slave(self):
        net, realm, supervisor = build()
        net.runtime.run_for(10.0)
        # Report slave 1 as the most recently caught-up replica.
        addr0 = realm.slaves[0].host.address
        addr1 = realm.slaves[1].host.address
        realm.kprop.last_applied_time[addr0] = 100.0
        realm.kprop.last_applied_time[addr1] = 200.0
        expected = realm.slaves[1].host
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        assert realm.master_host is expected

    def test_unhealthy_slave_is_not_a_candidate(self):
        net, realm, supervisor = build()
        net.runtime.run_for(10.0)
        # The fresher slave is ALSO down; the stale-but-alive one wins.
        addr1 = realm.slaves[1].host.address
        realm.kprop.last_applied_time[addr1] = 999.0
        survivor = realm.slaves[0].host
        net.crash_host(realm.slaves[1].host.name)
        net.runtime.run_for(20.0)                # let its misses register
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        assert realm.master_host is survivor

    def test_clients_are_repointed(self):
        net, realm, supervisor = build()
        hesiod = HesiodServer().attach(net.add_host("hesiod-server"))
        realm.attach_hesiod(hesiod)
        ws = realm.workstation("ws1")
        net.runtime.run_for(10.0)
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        new_master = realm.master_host
        # Workstation directory and the Hesiod record both lead with
        # the new master.
        assert ws.client.kdcs(REALM)[0] == new_master.address
        looked_up = hesiod_kdcs(ws.host, hesiod.host.address, REALM)
        assert looked_up[0] == new_master.address
        # And a login straight after the failover works.
        ws.client.kinit("jis", "jis-pw")

    def test_observability_of_the_promotion(self):
        net, realm, supervisor = build()
        net.runtime.run_for(10.0)
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        promoted = [
            e for e in net.audit.events() if e.kind == "master_promoted"
        ]
        assert len(promoted) == 1
        assert promoted[0].host == realm.master_host.name
        assert promoted[0].trace_id       # joined to the supervisor trace
        assert net.metrics.counter(
            "realm.promotions_total", {"realm": REALM}
        ).value == 1
        ttr = net.metrics.gauge(
            "realm.time_to_recover_seconds", {"realm": REALM}
        ).value
        assert 0.0 < ttr <= DETECT

    def test_detector_only_mode_never_promotes(self):
        net, realm, supervisor = build(
            config=SupervisorConfig(promote=False)
        )
        old_master = realm.master_host
        net.runtime.run_for(10.0)
        net.crash_host(old_master.name)
        net.runtime.run_for(120.0)
        assert supervisor.promotions == 0
        assert realm.master_host is old_master
        assert supervisor.misses[old_master.address] >= 3


class TestFlapProtection:
    def test_dwell_time_suppresses_a_second_promotion(self):
        net, realm, supervisor = build(
            config=SupervisorConfig(dwell_time=1000.0)
        )
        net.runtime.run_for(10.0)
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        assert supervisor.promotions == 1
        # The new master dies inside the dwell window: suppressed.
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        assert supervisor.promotions == 1
        assert net.metrics.counter(
            "supervisor.promotions_suppressed_total", {"realm": REALM}
        ).value > 0

    def test_promotion_allowed_again_after_dwell(self):
        net, realm, supervisor = build(
            config=SupervisorConfig(dwell_time=60.0)
        )
        net.runtime.run_for(10.0)
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        net.runtime.run_for(60.0)                # sit out the dwell
        net.crash_host(realm.master_host.name)
        net.runtime.run_for(DETECT)
        assert supervisor.promotions == 2


class TestRejoin:
    def test_old_master_rejoins_without_second_epoch_conflict(self):
        """The acceptance bar: the demoted master restarts, NEED_FULLs
        into the promoted journal's epoch, then rides delta streams —
        no second epoch bump, no divergent history."""
        net, realm, supervisor = build()
        old_master = realm.master_host
        net.runtime.run_for(10.0)
        net.crash_host(old_master.name, downtime=60.0)
        net.runtime.run_for(120.0)               # promote; old one returns
        assert supervisor.promotions == 1
        epoch_after_promotion = realm.db.journal.epoch

        rejoined = [
            e for e in net.audit.events() if e.kind == "slave_rejoined"
        ]
        assert [e.host for e in rejoined] == [old_master.name]

        # New writes flow to the former master through normal kprop.
        realm.add_user("written-after", "pw")
        result = realm.propagate()
        assert result.all_ok
        old_site = next(
            s for s in realm.slaves if s.host is old_master
        )
        assert old_site.db.exists(Principal("written-after", "", REALM))
        # Same epoch on both ends; the promotion bumped it exactly once.
        assert old_site.kpropd.applied_epoch == epoch_after_promotion
        assert realm.db.journal.epoch == epoch_after_promotion

    def test_rejoined_master_serves_reads(self):
        net, realm, supervisor = build()
        old_master = realm.master_host
        net.runtime.run_for(10.0)
        net.crash_host(old_master.name, downtime=60.0)
        net.runtime.run_for(150.0)
        ws = realm.workstation("ws-direct")
        # Point the client straight at the rejoined ex-master: its KDC
        # still answers AS requests from its (caught-up) replica.
        ws.client.set_kdcs(REALM, [old_master.address])
        ws.client.kinit("jis", "jis-pw")


class TestSupervisorLifecycle:
    def test_detach_stops_the_heartbeat(self):
        net, realm, supervisor = build()
        net.runtime.run_for(10.0)
        supervisor.detach()
        before = net.metrics.counter(
            "supervisor.heartbeats_total",
            {"target": realm.master_host.name, "result": "ok"},
        ).value
        net.runtime.run_for(60.0)
        after = net.metrics.counter(
            "supervisor.heartbeats_total",
            {"target": realm.master_host.name, "result": "ok"},
        ).value
        assert after == before

    def test_monitor_crash_and_restart_resumes_with_clean_state(self):
        net, realm, supervisor = build()
        net.runtime.run_for(10.0)
        # Master dies while the monitor is ALSO down.
        net.crash_host("realm-monitor", downtime=100.0)
        net.crash_host(realm.master_host.name, downtime=30.0)
        net.runtime.run_for(80.0)
        # Nobody was watching; no promotion happened...
        assert supervisor.promotions == 0
        # ...and after both return, suspicion restarts from zero and
        # the (healthy again) master is never wrongly deposed.
        net.runtime.run_for(120.0)
        assert supervisor.promotions == 0
        assert net.metrics.counter(
            "supervisor.heartbeats_total",
            {"target": realm.master_host.name, "result": "ok"},
        ).value > 0


class TestDeterminism:
    def test_same_seed_same_story(self):
        def story(seed):
            net, realm, supervisor = build(seed=seed)
            net.runtime.run_for(10.0)
            net.crash_host(realm.master_host.name, downtime=60.0)
            net.runtime.run_for(200.0)
            return (
                realm.master_host.name,
                supervisor.promotions,
                [(e.kind, e.host, e.time) for e in net.audit.events()],
                net.metrics.gauge(
                    "realm.time_to_recover_seconds", {"realm": REALM}
                ).value,
            )

        assert story(99) == story(99)
