"""Realm bootstrap tests: the Section 6.3 administrator checklist."""

import pytest

from repro.core import (
    Principal,
    StaticLocator,
    kdbm_principal,
    krb_rd_req,
    tgs_principal,
)
from repro.netsim import Network
from repro.realm import Realm, link


@pytest.fixture
def net():
    return Network()


class TestBootstrap:
    def test_essential_principals_registered(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU")
        assert realm.db.exists(tgs_principal("ATHENA.MIT.EDU"))
        assert realm.db.exists(kdbm_principal("ATHENA.MIT.EDU"))

    def test_servers_listening(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU")
        assert realm.master_host.handler_for(750) is not None  # AS/TGS
        assert realm.master_host.handler_for(751) is not None  # KDBM

    def test_slaves_initialized_with_dump(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=3)
        for slave in realm.slaves:
            assert slave.db.exists(tgs_principal("ATHENA.MIT.EDU"))
            assert slave.db.readonly

    def test_kdc_addresses_master_first(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=2)
        addrs = realm.kdc_addresses()
        assert addrs[0] == realm.master_host.address
        assert len(addrs) == 3

    def test_workstation_naming(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU")
        ws1 = realm.workstation()
        ws2 = realm.workstation()
        assert ws1.host.name != ws2.host.name

    def test_workstation_clock_skew(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU")
        ws = realm.workstation(clock_skew=120.0)
        assert ws.host.clock.now() == net.clock.now() + 120.0

    def test_two_realms_coexist(self, net):
        a = Realm(net, "ATHENA.MIT.EDU")
        b = Realm(net, "LCS.MIT.EDU")
        assert a.master_host.address != b.master_host.address


class TestEndToEnd:
    def test_login_and_service(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=1)
        realm.add_user("jis", "pw")
        service, key = realm.add_service("rlogin", "priam")
        ws = realm.workstation()
        ws.client.kinit("jis", "pw")
        request, _, _ = ws.client.mk_req(service)
        ctx = krb_rd_req(
            request, service, key, ws.host.address, net.clock.now()
        )
        assert ctx.client.name == "jis"

    def test_srvtab_roundtrip(self, net):
        realm = Realm(net, "ATHENA.MIT.EDU")
        service, key = realm.add_service("pop", "mailhost")
        tab = realm.srvtab_for(service)
        assert tab.key_for(service) == key
        assert realm.service_key(service) == key

    def test_cross_realm_link(self, net):
        athena = Realm(net, "ATHENA.MIT.EDU", n_slaves=1)
        lcs = Realm(net, "LCS.MIT.EDU", seed=b"lcs")
        athena.add_user("jis", "pw")
        service, key = lcs.add_service("rlogin", "ptt")
        link(athena, lcs)

        ws = athena.workstation()
        ws.client.set_locator(
            "LCS.MIT.EDU", StaticLocator([lcs.master_host.address])
        )
        ws.client.kinit("jis", "pw")
        cred = ws.client.get_credential(service)
        assert cred is not None

    def test_link_propagates_to_slaves(self, net):
        """Slaves can serve cross-realm requests after the link is
        propagated (inter-realm keys are ordinary database records)."""
        athena = Realm(net, "ATHENA.MIT.EDU", n_slaves=1)
        lcs = Realm(net, "LCS.MIT.EDU", seed=b"lcs")
        athena.add_user("jis", "pw")
        service, _ = lcs.add_service("rlogin", "ptt")
        link(athena, lcs)

        net.set_down(athena.master_host.name)  # only the slave remains
        ws = athena.workstation()
        ws.client.set_locator(
            "LCS.MIT.EDU", StaticLocator([lcs.master_host.address])
        )
        ws.client.kinit("jis", "pw")
        assert ws.client.get_credential(service) is not None
