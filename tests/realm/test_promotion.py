"""Master migration: promoting a slave after losing the master for good.

The paper makes the master a single point of failure for writes
(Figure 11); the operational answer — implied by "both the master and
slave Kerberos machines possess" the master key (Section 5.3) — is to
promote a slave.  These tests drill that procedure.
"""

import pytest

from repro.core import StaticLocator
from repro.kdbm import KdbmClient
from repro.netsim import Network, Unreachable
from repro.principal import Principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def realm():
    net = Network()
    r = Realm(net, REALM, n_slaves=2)
    r.add_admin("jis", "admin-pw")
    r.add_user("jis", "jis-pw")
    r.propagate()
    return r


class TestPromotion:
    def test_promoted_slave_accepts_writes(self, realm):
        realm.net.set_down(realm.master_host.name)   # master lost
        promoted = realm.promote_slave(0)
        realm.db.add_principal(
            Principal("post-disaster", "", REALM), password="pw"
        )
        assert realm.db.exists(Principal("post-disaster", "", REALM))
        assert realm.master_host is promoted.host

    def test_kdbm_runs_on_new_master(self, realm):
        old_addresses = realm.kdc_addresses()
        realm.net.set_down(realm.master_host.name)
        realm.promote_slave(0)

        ws = realm.workstation()
        # Point kpasswd at the NEW master.
        kdbm = KdbmClient(ws.client, realm.master_host.address)
        # The client's KDC list must include a live KDC; the new master is.
        ws.client.set_locator(REALM, StaticLocator([realm.master_host.address]))
        result = kdbm.change_password(
            Principal("jis", "", REALM), "jis-pw", "post-pw"
        )
        assert "password changed" in result

    def test_propagation_continues_to_remaining_slaves(self, realm):
        realm.net.set_down(realm.master_host.name)
        realm.promote_slave(0)
        realm.db.add_principal(Principal("fresh", "", REALM), password="pw")
        result = realm.propagate()
        assert result.all_ok
        assert result.attempted == 1     # the one remaining slave
        assert realm.slaves[0].db.exists(Principal("fresh", "", REALM))

    def test_logins_uninterrupted_through_the_migration(self, realm):
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")             # before
        realm.net.set_down(realm.master_host.name)
        ws.client.kdestroy()
        ws.client.kinit("jis", "jis-pw")             # during (via slave)
        realm.promote_slave(0)
        ws.client.kdestroy()
        ws.client.kinit("jis", "jis-pw")             # after
