"""Sharded-realm tests: the consistent-hash ring, referral repair,
per-shard failover and promotion, and live range rebalancing.

The contract under test is the one the module docstring states: the
ring is a pure shared function of ``(realm, n_shards)``, stale clients
are repaired by typed :class:`WrongShard` referrals rather than errors,
every shard fails over within its own replica group, and a
:func:`move_range` never turns a concurrent login into a failure.
"""

import hashlib

import pytest

from repro.core import ErrorCode, ErrorReply, MessageType, WrongShard
from repro.core.errors import referral_text
from repro.core.messages import decode_message, encode_message
from repro.netsim import Network
from repro.realm import ShardedRealm
from repro.realm.sharding import (
    RING_SPACE,
    HashRing,
    hash_point,
    move_range,
)

pytestmark = pytest.mark.shard

REALM = "ATHENA.MIT.EDU"


def sharded_realm(net, shards=2, slaves=0):
    return ShardedRealm(
        net, REALM, shards=shards, slaves_per_shard=slaves,
        seed=b"shard-test",
    )


def user_on_shard(realm, shard, prefix="u"):
    """A (username, password) pair whose db-key the ring assigns to
    ``shard`` — found by scanning candidate names, like a test operator
    picking a principal from the right partition."""
    for i in range(512):
        username = f"{prefix}{i:03d}"
        key = username
        if realm.shard_for_key(key) == shard:
            realm.add_user(username, f"{username}-pw")
            return username, f"{username}-pw"
    raise AssertionError(f"no candidate name hashed to shard {shard}")


class TestHashRing:
    def test_same_seed_same_ring(self):
        """Ring determinism: every party that derives the ring from the
        realm name gets byte-for-byte the same partition function."""
        a = HashRing.seeded(REALM, 4)
        b = HashRing.seeded(REALM, 4)
        assert a == b
        assert a.segments() == b.segments()
        assert a.epoch == b.epoch == 1
        # And the partition is stable point-by-point.
        for i in range(200):
            key = f"user{i}@{REALM}"
            assert a.shard_for(key) == b.shard_for(key)

    def test_different_realms_differ(self):
        a = HashRing.seeded(REALM, 4)
        b = HashRing.seeded("LCS.MIT.EDU", 4)
        assert a.segments() != b.segments()

    def test_every_shard_owns_something(self):
        ring = HashRing.seeded(REALM, 4)
        assert ring.shards() == [0, 1, 2, 3]
        for shard in range(4):
            assert ring.arcs_of(shard)

    def test_record_round_trip(self):
        ring = HashRing.seeded(REALM, 3)
        assert HashRing.from_record(ring.to_record(REALM)) == ring

    def test_move_range_flips_epoch_and_preserves_boundary(self):
        ring = HashRing.seeded(REALM, 2)
        before = ring.copy()
        lo, hi = 100, 200
        owner_past_hi = ring.shard_for_point(hi)
        ring.move_range(lo, hi, 1)
        assert ring.epoch == before.epoch + 1
        assert ring.shard_for_point(lo) == 1
        assert ring.shard_for_point(hi - 1) == 1
        # The point just past the moved range keeps its old owner.
        assert ring.shard_for_point(hi) == owner_past_hi
        # Everything outside [lo, hi) is untouched.
        for point in (0, hi + 1, RING_SPACE - 1):
            if not lo <= point < hi:
                assert ring.shard_for_point(point) == (
                    before.shard_for_point(point)
                )

    def test_hash_point_is_sha256_derived(self):
        key = "jis"
        expected = int.from_bytes(
            hashlib.sha256(key.encode()).digest()[:4], "big"
        )
        assert hash_point(key) == expected
        assert 0 <= hash_point(key) < RING_SPACE


class TestShardedRealmBootstrap:
    def test_each_shard_owns_its_principals(self):
        net = Network()
        realm = sharded_realm(net, shards=2)
        u0 = user_on_shard(realm, 0)
        u1 = user_on_shard(realm, 1, prefix="v")
        key0 = u0[0]
        key1 = u1[0]
        assert realm.shards[0].db.store.get(key0) is not None
        assert key0 not in realm.shards[1].db.store
        assert realm.shards[1].db.store.get(key1) is not None
        assert key1 not in realm.shards[0].db.store

    def test_globals_replicated_to_every_shard(self):
        """krbtgt, kdbm, and service keys are realm-wide: any shard can
        seal a TGT or a service ticket, whichever shard owns the user."""
        net = Network()
        realm = sharded_realm(net, shards=2)
        service, _key = realm.add_service("rlogin", "priam")
        for site in realm.shards:
            assert site.db.exists(service)

    def test_login_works_on_both_shards(self):
        net = Network()
        realm = sharded_realm(net, shards=2)
        service, key = realm.add_service("rlogin", "priam")
        for shard in (0, 1):
            username, password = user_on_shard(
                realm, shard, prefix=f"s{shard}x"
            )
            ws = realm.workstation()
            ws.client.kinit(username, password)
            cred = ws.client.get_credential(service)
            assert cred is not None


class TestReferrals:
    def test_stale_client_follows_referral(self):
        """A ring change strands every cached snapshot; the client's
        next request bounces off the old owner with a typed referral,
        is re-sent to the authoritative shard, and succeeds — counted
        on both sides."""
        net = Network()
        realm = sharded_realm(net, shards=2)
        username, password = user_on_shard(realm, 0)
        ws = realm.workstation()
        ws.client.kinit(username, password)   # locator snapshots epoch 1
        point = hash_point(username)
        result = move_range(realm, point, point + 1, 1)
        assert result.moved >= 1

        ws.client.kdestroy()
        ws.client.kinit(username, password)   # stale → referral → retry
        follows = net.metrics.counter(
            "kdc.referral_follows_total", {"realm": REALM}
        ).value
        assert follows >= 1.0
        referrals = sum(
            net.metrics.counter(
                "kdc.referrals_total", {"server": site.master_host.name}
            ).value
            for site in realm.shards
        )
        assert referrals >= 1.0
        # Following the referral also repaired the snapshot.
        assert ws.client.locator_for(REALM).ring_epoch == realm.ring.epoch

    def test_unknown_principal_is_not_a_referral(self):
        """Only principals the ring assigns elsewhere get referrals; a
        name nobody owns still fails with principal-unknown."""
        net = Network()
        realm = sharded_realm(net, shards=2)
        ws = realm.workstation()
        for i in range(64):
            name = f"ghost{i}"
            if realm.shard_for_key(name) == realm.ring.shard_for(name):
                with pytest.raises(Exception) as err:
                    ws.client.kinit(name, "nope")
                assert not isinstance(err.value, WrongShard)
                break


class TestShardFailover:
    def test_locator_orders_shard_master_first(self):
        net = Network()
        realm = sharded_realm(net, shards=2, slaves=1)
        for shard in (0, 1):
            username, _ = user_on_shard(realm, shard, prefix=f"f{shard}x")
            addresses = realm.locator().locate(username)
            assert addresses == realm.shard_addresses(shard)
            assert addresses[0] == realm.shards[shard].master_host.address

    def test_failover_stays_within_the_shard(self):
        """The owning shard's master dies: the login rides the same
        shard's slave.  The other shard cannot answer (it does not hold
        the principal), so success proves the replica list was the
        failed shard's own."""
        net = Network()
        realm = sharded_realm(net, shards=2, slaves=1)
        username, password = user_on_shard(realm, 1)
        realm.propagate()
        net.crash_host(realm.shards[1].master_host.name, downtime=3600.0)
        ws = realm.workstation()
        ws.client.kinit(username, password)
        assert ws.client.cache.tgt(REALM) is not None

    def test_promotion_is_shard_scoped(self):
        """Promoting inside shard 1 must not disturb shard 0's master,
        and the directory repoints only shard 1's replica list."""
        net = Network()
        realm = sharded_realm(net, shards=2, slaves=1)
        shard0_master = realm.shards[0].master_host
        old_master = realm.shards[1].master_host
        promoted = realm.shards[1].slaves[0].host
        realm.propagate()
        realm.promote_slave(0, shard=1)
        assert realm.shards[0].master_host is shard0_master
        assert realm.shards[1].master_host is promoted
        assert realm.directory.addresses(1)[0] == promoted.address
        assert realm.directory.addresses(0)[0] == shard0_master.address
        # A fresh client routes shard-1 principals to the new master
        # and can still authenticate there.
        username, password = user_on_shard(realm, 1, prefix="p")
        realm.propagate()
        ws = realm.workstation()
        assert ws.client.kdcs(REALM) is not None
        ws.client.kinit(username, password)
        assert old_master is not promoted


class TestMoveRange:
    def test_move_range_relocates_and_deletes(self):
        net = Network()
        realm = sharded_realm(net, shards=2)
        username, password = user_on_shard(realm, 0)
        key = username
        point = hash_point(key)
        epoch_before = realm.ring.epoch
        result = move_range(realm, point, point + 1, 1)
        assert result.moved >= 1
        assert result.deleted == result.moved
        assert result.sources == [0]
        assert result.epoch == epoch_before + 1
        assert key in realm.shards[1].db.store
        assert key not in realm.shards[0].db.store
        # Metrics: entries counted, epoch gauge current.
        assert net.metrics.counter(
            "shard.rebalance_entries_total", {"realm": REALM}
        ).value >= 1.0
        assert net.metrics.gauge(
            "shard.ring_epoch", {"realm": REALM}
        ).value == float(realm.ring.epoch)
        # And the moved user can still log in.
        ws = realm.workstation()
        ws.client.kinit(username, password)

    def test_move_range_with_interleaved_logins(self):
        """Logins scheduled across the move window all succeed: early
        arrivals hit the source (still authoritative), late arrivals
        are referral-corrected to the target — never refused."""
        net = Network(latency=0.01)
        realm = sharded_realm(net, shards=2)
        users = [
            user_on_shard(realm, 0, prefix=f"m{i}x") for i in range(4)
        ]
        stations = [realm.workstation() for _ in users]
        for ws, (username, password) in zip(stations, users):
            ws.client.kinit(username, password)  # warm, epoch-1 snapshot
            ws.client.kdestroy()
        outcomes = []

        def login(ws, username, password):
            def job():
                ws.client.kinit(username, password)
                outcomes.append(username)
            return job

        start = net.clock.now()
        for i, (ws, (username, password)) in enumerate(
            zip(stations, users)
        ):
            net.runtime.at(
                start + 0.005 * (i + 1), login(ws, username, password),
                label="test.login",
            )
        # Scheduled logins fire while move_range's transfer RPCs pump
        # the event loop — genuine interleaving on one clock.
        arcs = realm.ring.arcs_of(0)
        lo, hi = max(arcs, key=lambda arc: arc[1] - arc[0])
        move_range(realm, lo, hi, 1)
        net.runtime.run_until_idle()
        assert sorted(outcomes) == sorted(u for u, _ in users)

    def test_concurrent_registration_is_caught_up(self):
        """A principal registered *during* the stream lands on the
        target via the journal catch-up pass — the double-serve window
        plus catch-up make the move atomic from the client's view."""
        net = Network(latency=0.01)
        realm = sharded_realm(net, shards=2)
        user_on_shard(realm, 0)  # ensure the range is non-empty
        arcs = realm.ring.arcs_of(0)
        lo, hi = max(arcs, key=lambda arc: arc[1] - arc[0])
        # Find a fresh name hashing into the moved range.
        late = None
        for i in range(4096):
            name = f"late{i}"
            if lo <= hash_point(name) < hi:
                late = name
                break
        assert late is not None

        net.runtime.at(
            net.clock.now() + 0.01,
            lambda: realm.add_user(late, f"{late}-pw"),
            label="test.register",
        )
        move_range(realm, lo, hi, 1)
        net.runtime.run_until_idle()
        assert late in realm.shards[1].db.store
        ws = realm.workstation()
        ws.client.kinit(late, f"{late}-pw")


class TestWireCompatibility:
    def test_referral_rides_the_frozen_error_envelope(self):
        """The referral is carried entirely inside the v4 ``ERROR``
        reply — same message type, same two fields — so pre-sharding
        clients decode it as an ordinary typed error and the golden
        wire vectors stay valid."""
        text = referral_text(1, 7, ["18.72.0.5", "18.72.0.6"])
        wire = encode_message(
            MessageType.ERROR,
            ErrorReply(code=ErrorCode.KDC_WRONG_SHARD, text=text),
        )
        plain = encode_message(
            MessageType.ERROR, ErrorReply(code=12, text=text)
        )
        assert wire == plain
        mtype, message = decode_message(wire)
        assert mtype == MessageType.ERROR
        assert message.FIELDS == ErrorReply.FIELDS

    def test_wrong_shard_parses_its_own_text(self):
        err = WrongShard(
            ErrorCode.KDC_WRONG_SHARD,
            referral_text(2, 9, ["18.72.0.7"]),
        )
        assert err.shard == 2
        assert err.ring_epoch == 9
        assert err.kdcs == ["18.72.0.7"]
