"""Chaos: Kerberized-NFS churn — expiry mid-I/O and crash-restart.

A client hammers a fleet server while its authorising ticket dies and
the server itself crash-restarts.  Both interruptions must ride out
through the retry policy plus the auto-remount hook, and — the actual
security property — the server must never *silently* serve with the
wrong credential: every successful secret read returns the right bytes,
and every refusal in the unfriendly world is a typed, trace-joined
``acl_denial`` in the audit log.
"""

import pytest

from repro.apps.nfs import (
    NfsClientError,
    NfsExportConfig,
    UnmappedPolicy,
)
from repro.core import RetryPolicy

from tests.apps.nfs_conformance.conftest import (
    FleetWorld,
    JIS_CRED,
    JIS_UID,
    SECRET,
    TICKET_LIFE,
)

pytestmark = pytest.mark.chaos

#: Generous enough to span the 5 s crash downtime with backoff.
POLICY = RetryPolicy(max_attempts=8, deadline=30.0, base_delay=0.5, jitter=0.25)


def _mounted(world, retry_policy=POLICY):
    ws = world.login("jis")
    site = world.fleet[0]
    client = world.fleet.client(
        ws, 0, uid_on_client=JIS_UID, retry_policy=retry_policy
    )
    client.kerberos_mount(ws.client, site.mount_service)
    client.enable_auto_remount(ws.client, site.mount_service)
    return ws, site, client


class TestExpiryMidIo:
    def test_expiry_rides_out_through_auto_remount(self):
        world = FleetWorld()
        ws, site, client = _mounted(world)
        for _ in range(3):
            assert client.read("/u/jis/secret.txt") == SECRET
        # The ticket dies mid-I/O; a fresh kinit is the user's part,
        # the remount handshake is the client library's.
        world.net.clock.advance(TICKET_LIFE + 60.0)
        ws.client.kinit("jis", "jis-pw")
        for _ in range(3):
            assert client.read("/u/jis/secret.txt") == SECRET
        assert world.net.metrics.total(
            "nfs.stale_mappings_total", server=site.name
        ) == 1

    def test_expiry_without_fresh_tgt_fails_loud_not_wrong(self):
        """With no new TGT the re-mount fails inside the hook — the
        client sees a hard error, never someone else's bytes."""
        world = FleetWorld()
        ws, site, client = _mounted(world)
        world.net.clock.advance(TICKET_LIFE + 60.0)
        with pytest.raises((NfsClientError, Exception)) as excinfo:
            client.read("/u/jis/secret.txt")
        assert "secret" not in str(excinfo.value)


class TestCrashRestart:
    def test_crash_restart_rides_out_through_retry_and_remount(self):
        world = FleetWorld()
        ws, site, client = _mounted(world)
        assert client.read("/u/jis/secret.txt") == SECRET
        # Crash the server under the client: the kernel map dies with
        # it.  The retry policy spans the downtime (its backoff sleeps
        # advance the sim clock through the restart), and the remount
        # hook restores the mapping.
        world.net.crash_host(site.name, downtime=5.0)
        assert client.read("/u/jis/secret.txt") == SECRET
        assert site.server.credmap.entries() == {
            (str(ws.host.address), JIS_UID): JIS_CRED
        }
        assert world.net.metrics.total(
            "nfs.map_losses_total", server=site.name
        ) == 1

    def test_unfriendly_crash_refusals_are_audited_never_silent(self):
        """The no-silent-wrong-credential property, asserted via the
        audit log: in the unfriendly world a post-crash unmapped request
        is refused with a trace-joined ``acl_denial`` — and once
        remounted, reads return exactly the right bytes again."""
        world = FleetWorld(
            config=NfsExportConfig(unmapped_policy=UnmappedPolicy.UNFRIENDLY)
        )
        ws, site, client = _mounted(world, retry_policy=None)
        assert client.read("/u/jis/secret.txt") == SECRET

        world.net.crash_host(site.name, downtime=5.0)
        world.net.clock.advance(6.0)

        # Strip the recovery hook: observe the raw refusal first.
        client.set_remount(None)
        with pytest.raises(NfsClientError, match="NFS access error"):
            client.read("/u/jis/secret.txt")
        denials = [
            e for e in world.net.audit.events("acl_denial")
            if e.host == site.name
        ]
        assert len(denials) == 1
        assert "no mapping" in denials[0].detail
        assert denials[0].trace_id, "refusal must be trace-joined"

        # Re-arm recovery: service restores with the *right* identity.
        client.enable_auto_remount(ws.client, site.mount_service)
        assert client.read("/u/jis/secret.txt") == SECRET
        assert site.server.credmap.entries() == {
            (str(ws.host.address), JIS_UID): JIS_CRED
        }

    def test_no_wrong_bytes_across_sustained_churn(self):
        """A longer pounding: interleave reads with a crash and an
        expiry; every read either raises or returns the true content —
        tallied against the audit log at the end."""
        world = FleetWorld()
        ws, site, client = _mounted(world)
        outcomes = {"ok": 0, "refused": 0}
        for round_no in range(6):
            if round_no == 2:
                world.net.crash_host(site.name, downtime=5.0)
            if round_no == 4:
                world.net.clock.advance(TICKET_LIFE + 60.0)
                ws.client.kinit("jis", "jis-pw")
            try:
                assert client.read("/u/jis/secret.txt") == SECRET
                outcomes["ok"] += 1
            except NfsClientError:
                outcomes["refused"] += 1
        # Auto-remount + retry absorbed every interruption.
        assert outcomes == {"ok": 6, "refused": 0}
        # Each fault's first attempt was refused *loudly* (the nobody
        # credential bounced off the 0700 home after the crash; the
        # stale mapping bounced after expiry) before recovery kicked in
        # — exactly two access errors, no silent serve.
        assert world.net.metrics.total(
            "nfs.access_errors_total", server=site.name
        ) == 2
