"""Chaos: KDC failover under partitions and crashes (Figure 10).

*"To obtain credentials, authentication can run on both master and
slave machines; changes to the database may only be made on the
master."*  These scenarios cut the master off and check that exactly
that split survives: the authentication plane fails over to slaves,
unexpired ticket holders never notice, and only the administrative
plane degrades — loudly and typed.
"""

import pytest

from repro.core import RetryPolicy
from repro.core.applib import krb_rd_req
from repro.kdbm import KdbmClient, KdbmTimeout
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.user import kpasswd

pytestmark = pytest.mark.chaos

REALM_NAME = "ATHENA.MIT.EDU"


def build_realm(seed=101, n_slaves=2):
    net = Network(seed=seed)
    realm = Realm(net, REALM_NAME, n_slaves=n_slaves)
    realm.add_user("jis", "jis-pw")
    realm.add_service("rcmd", "priam")
    realm.propagate()
    return net, realm


class TestMasterPartition:
    def test_fresh_client_fails_over_to_slave_within_deadline(self):
        """The acceptance scenario: master partitioned, a fresh
        workstation still logs in and obtains a service ticket from a
        slave, inside its retry deadline, with the failover visible in
        the metrics."""
        net, realm = build_realm()
        realm.partition_master()

        policy = RetryPolicy(
            max_attempts=6, deadline=30.0, base_delay=0.5, jitter=0.25
        )
        ws = realm.workstation(retry_policy=policy)
        start = net.clock.now()
        ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(Principal("rcmd", "priam", REALM_NAME))
        assert cred is not None
        assert net.clock.now() - start < 2 * policy.deadline

        # Both exchanges answered by a non-primary KDC.
        assert net.metrics.total("kdc.failovers_total", realm=REALM_NAME) == 2
        # First attempt hit the partitioned master, so each op retried.
        assert net.metrics.total("retry.attempts_total", op="as") >= 2
        assert net.metrics.total("retry.attempts_total", op="tgs") >= 2
        assert net.metrics.total("retry.exhausted_total") == 0
        # The load landed on slaves; the master saw nothing.
        master = realm.master_host.name
        assert net.metrics.total("kdc.requests_total", server=master) == 0
        slave_load = sum(
            net.metrics.total("kdc.requests_total", server=s.host.name)
            for s in realm.slaves
        )
        assert slave_load >= 2  # one AS + one TGS, minus nothing

    def test_unexpired_ticket_holders_are_unaffected(self):
        """Section 5 economics: tickets already issued keep working with
        no KDC in the loop at all — the service validates them locally
        against its srvtab."""
        net, realm = build_realm()
        service = Principal("rcmd", "priam", REALM_NAME)
        other, _ = realm.add_service("rcmd", "helen")
        realm.propagate()
        srvtab = realm.srvtab_for(service)

        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        ws.client.get_credential(service)  # cached before the cut

        realm.partition_master()
        # The cached service ticket authenticates with no KDC involved:
        # the server validates it locally against its srvtab.
        request, _, _ = ws.client.mk_req(service)
        ctx = krb_rd_req(
            request, service, srvtab, ws.host.address, net.clock.now()
        )
        assert ctx.client == Principal("jis", "", REALM_NAME)
        # And the cached TGT still buys *new* tickets — from a slave TGS.
        assert ws.client.get_credential(other) is not None
        assert net.metrics.total("kdc.failovers_total", realm=REALM_NAME) >= 1

    def test_admin_plane_degrades_typed_then_recovers(self):
        """While the master is partitioned, kpasswd fails fast with
        KdbmTimeout (never silently, never forever); after heal it
        succeeds and the change propagates."""
        net, realm = build_realm(n_slaves=1)
        ws = realm.workstation()
        kdbm = KdbmClient(
            ws.client,
            realm.master_host.address,
            retry_policy=RetryPolicy(max_attempts=2),
        )

        realm.partition_master()
        with pytest.raises(KdbmTimeout) as exc_info:
            kpasswd(kdbm, "jis", "jis-pw", "summer-88")
        assert exc_info.value.attempts == 2
        assert net.metrics.total("retry.exhausted_total", op="kdbm") == 1

        net.heal()
        out = kpasswd(kdbm, "jis", "jis-pw", "summer-88")
        assert "Password changed" in out
        realm.propagate()
        # The new password now works realm-wide, including on a slave.
        net.set_down(realm.master_host.name)
        ws2 = realm.workstation()
        ws2.client.kinit("jis", "summer-88")


class TestCrashRestart:
    def test_backoff_rides_out_a_kdc_crash(self):
        """A single-KDC realm whose master crashes and restarts: a retry
        policy whose backoff spans the downtime logs in without any
        failover target at all."""
        net, realm = build_realm(n_slaves=0)
        net.crash_host(realm.master_host.name, downtime=10.0)

        ws = realm.workstation(
            retry_policy=RetryPolicy(
                max_attempts=6, base_delay=4.0, multiplier=2.0
            )
        )
        ws.client.kinit("jis", "jis-pw")
        # Attempts at t=0 and t=4 hit a dead host; the t=12 one lands
        # after the t=10 restart.
        assert net.metrics.total("retry.attempts_total", op="as") == 3
        assert net.metrics.total("faults.injected_total", kind="crash") == 1
        assert net.metrics.total("faults.injected_total", kind="restart") == 1
        assert net.metrics.total("kdc.failovers_total") == 0
