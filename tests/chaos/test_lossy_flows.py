"""Chaos: the full protocol under loss + duplication on the KDC port.

The 1988 exchanges ran over UDP; the acceptance bar here is the paper's
own end-to-end story (Figures 5-13) completing over a KDC link that
drops 10% of requests and duplicates many of the rest — with every
duplicated authenticator absorbed by the server-side replay cache
(Section 4.3) and never surfacing to the client.

The whole run is driven by one seeded RNG, so the same seed must
reproduce the same metric snapshot bit-for-bit (the determinism check
at the bottom is what makes chaos results debuggable at all).
"""

import pytest

from repro.apps.kerberized import KerberizedChannel, Protection
from repro.apps.rlogin import RloginServer
from repro.core import RetryPolicy
from repro.kdbm import KdbmClient
from repro.netsim import Duplicate, Loss, Match, Network
from repro.netsim.ports import KERBEROS_PORT, KSHELL_PORT
from repro.principal import Principal
from repro.realm import Realm
from repro.user import kpasswd

pytestmark = pytest.mark.chaos

REALM_NAME = "ATHENA.MIT.EDU"

#: Generous but bounded: the simulated day is cheap, unreachability is not.
CLIENT_POLICY = RetryPolicy(max_attempts=12, base_delay=0.1, jitter=0.5)


def run_figures_5_through_13(seed):
    """One pass over the paper's flows with a hostile KDC link; returns
    the network so callers can interrogate the metrics."""
    net = Network(seed=seed)
    realm = Realm(net, REALM_NAME, n_slaves=1)
    realm.add_user("jis", "jis-pw")
    rcmd, _ = realm.add_service("rcmd", "priam")
    realm.propagate()

    priam = net.add_host("priam")
    rlogind = RloginServer(rcmd, realm.srvtab_for(rcmd)).attach(priam)
    rlogind.add_account("jis")

    # The hostile link: 10% of KDC-bound requests vanish, and half of
    # the survivors arrive twice.  Replies and application/admin/kprop
    # ports are untouched — the KDC port is the stressed resource.
    net.faults.add(Loss(0.10, Match.build(port=KERBEROS_PORT)))
    net.faults.add(Duplicate(0.50, Match.build(port=KERBEROS_PORT)))

    ws = realm.workstation(retry_policy=CLIENT_POLICY)

    # Figures 5/6: initial ticket.  Figures 7/8: service ticket via TGS.
    ws.client.kinit("jis", "jis-pw")
    assert ws.client.get_credential(rcmd) is not None

    # Figure 9: the full rlogin exchange with mutual authentication.
    channel = KerberizedChannel(
        ws.client, rcmd, priam.address, KSHELL_PORT,
        protection=Protection.PRIVATE, mutual=True,
    )
    assert channel.call(b"echo chaos") != b""
    channel.close()

    # Figures 11/12: password change through the KDBM (its own AS
    # exchange rides the same lossy KDC port).
    kdbm = KdbmClient(
        ws.client, realm.master_host.address, retry_policy=CLIENT_POLICY
    )
    assert "Password changed" in kpasswd(kdbm, "jis", "jis-pw", "new-pw")

    # Figure 13: propagation carries the change to the slave, and a
    # fresh login with the new password closes the loop.
    realm.propagate()
    ws2 = realm.workstation(retry_policy=CLIENT_POLICY)
    ws2.client.kinit("jis", "new-pw")
    return net


class TestLossAndDuplication:
    def test_flows_complete_and_replays_are_absorbed(self):
        # Seed chosen so this particular run rolls at least one loss,
        # one duplication, and one replay rejection (seeded = knowable).
        net = run_figures_5_through_13(seed=2025)

        # The link really was hostile.
        assert net.metrics.total("net.drops_total", reason="loss") >= 1
        assert net.metrics.total("net.duplicates_total") >= 1
        assert net.metrics.total("retry.attempts_total") > 0
        assert net.metrics.total("retry.exhausted_total") == 0

        # Every duplicated authenticator-bearing request was rejected by
        # a replay cache, silently: the KDCs' replay rejections account
        # for every RD_AP_REPEAT outcome, and none of them surfaced —
        # all the client calls above succeeded.
        replays = net.metrics.total("replay.checks_total", result="replay")
        repeats = net.metrics.total("kdc.outcomes_total", code="RD_AP_REPEAT")
        assert replays >= 1
        assert replays == repeats
        # Duplicated AS requests carry no authenticator, so only TGS
        # traffic can trip the cache; the AS stays stateless (Section 4.3).
        assert net.metrics.total(
            "kdc.outcomes_total", kind="as", code="RD_AP_REPEAT"
        ) == 0

    def test_same_seed_same_story(self):
        """Satellite determinism check: two runs with one seed produce
        byte-identical metric snapshots — retries, drops, duplicates,
        replay rejections and all."""
        snap_a = (net_a := run_figures_5_through_13(seed=7)).metrics.snapshot(
            now=net_a.clock.now()
        )
        snap_b = (net_b := run_figures_5_through_13(seed=7)).metrics.snapshot(
            now=net_b.clock.now()
        )
        assert snap_a == snap_b

    def test_different_seed_different_fault_schedule(self):
        """...and the seed is actually load-bearing: a different seed
        rolls different faults (drop/duplicate counts diverge)."""
        net_a = run_figures_5_through_13(seed=7)
        net_b = run_figures_5_through_13(seed=8)
        fingerprint = lambda net: (
            net.metrics.total("net.drops_total", reason="loss"),
            net.metrics.total("net.duplicates_total"),
            net.metrics.total("retry.attempts_total"),
        )
        assert fingerprint(net_a) != fingerprint(net_b)
