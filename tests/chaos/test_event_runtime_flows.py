"""Chaos on the event-driven runtime: Figures 5-13 with time in play.

`test_lossy_flows` stresses the KDC *link*; this suite stresses the KDC
*machine* as well.  Datagrams are genuinely in flight (propagation
latency plus jitter), the KDCs run the concurrent service loop (bounded
queue, batching, worker pool), and the link still loses and duplicates
requests.  The paper's end-to-end story must complete through all of it,
and — the runtime's core promise — one seed must reproduce the same
event interleaving bit-for-bit.
"""

import pytest

from repro.apps.kerberized import KerberizedChannel, Protection
from repro.apps.rlogin import RloginServer
from repro.core import RetryPolicy
from repro.kdbm import KdbmClient
from repro.crypto import keycache
from repro.netsim import Duplicate, Jitter, Loss, Match, Network
from repro.netsim.ports import KERBEROS_PORT, KSHELL_PORT
from repro.principal import Principal
from repro.realm import Realm
from repro.runtime import WorkQueueConfig
from repro.user import kpasswd

pytestmark = pytest.mark.chaos

REALM_NAME = "ATHENA.MIT.EDU"

CLIENT_POLICY = RetryPolicy(max_attempts=12, base_delay=0.1, jitter=0.5)

#: Small enough that the flows actually exercise queueing (non-zero
#: service time per batch), roomy enough not to shed closed-loop logins.
KDC_QUEUE = WorkQueueConfig(workers=2, batch_size=4, queue_limit=16)


def run_figures_on_event_runtime(seed):
    """One pass over the paper's flows on a realm where time is real:
    2 ms propagation, jittered delivery, queued KDCs, lossy KDC link."""
    # The key-schedule cache is process-wide; start every run cold so
    # same-seed runs see identical hit/miss traffic in their snapshots.
    keycache.clear()
    net = Network(seed=seed, latency=0.002)
    realm = Realm(net, REALM_NAME, n_slaves=1, kdc_queue=KDC_QUEUE)
    realm.add_user("jis", "jis-pw")
    rcmd, _ = realm.add_service("rcmd", "priam")
    realm.propagate()

    priam = net.add_host("priam")
    rlogind = RloginServer(rcmd, realm.srvtab_for(rcmd)).attach(priam)
    rlogind.add_account("jis")

    # The hostile world: some KDC-bound requests vanish, some arrive
    # twice, and everything wobbles in transit.
    net.faults.add(Loss(0.10, Match.build(port=KERBEROS_PORT)))
    net.faults.add(Duplicate(0.30, Match.build(port=KERBEROS_PORT)))
    net.faults.add(Jitter(0.0, 0.003))

    ws = realm.workstation(retry_policy=CLIENT_POLICY)

    # Figures 5/6 and 7/8: initial ticket, then a service ticket.
    ws.client.kinit("jis", "jis-pw")
    assert ws.client.get_credential(rcmd) is not None

    # Figure 9: the full rlogin exchange with mutual authentication.
    channel = KerberizedChannel(
        ws.client, rcmd, priam.address, KSHELL_PORT,
        protection=Protection.PRIVATE, mutual=True,
    )
    assert channel.call(b"echo chaos") != b""
    channel.close()

    # Figures 11/12: password change through the KDBM.
    kdbm = KdbmClient(
        ws.client, realm.master_host.address, retry_policy=CLIENT_POLICY
    )
    assert "Password changed" in kpasswd(kdbm, "jis", "jis-pw", "new-pw")

    # Figure 13: propagation, then a fresh login with the new password.
    realm.propagate()
    ws2 = realm.workstation(retry_policy=CLIENT_POLICY)
    ws2.client.kinit("jis", "new-pw")
    return net


class TestEventRuntimeFlows:
    def test_flows_complete_with_queued_kdcs_and_jitter(self):
        net = run_figures_on_event_runtime(seed=1988)

        # Time genuinely passed: latency, jitter, and batch service
        # times all advanced the simulated clock.
        assert net.clock.now() > 0.0

        # The KDCs really ran the concurrent service loop.
        assert net.metrics.total("kdc.queue.batches_total") >= 1
        assert net.metrics.total("kdc.queue.submitted_total") >= 1

        # The world really was hostile, and the clients rode it out.
        assert net.metrics.total("faults.injected_total", kind="jitter") >= 1
        assert net.metrics.total("retry.exhausted_total") == 0

    def test_same_seed_same_event_interleaving(self):
        """The tentpole determinism claim: scheduled delivery, seeded
        tie-breaks, queued service — and still bit-identical snapshots
        (metrics *and* final clock) for one seed."""
        # Snapshot each run the moment it finishes: the key-schedule
        # cache mirrors its traffic into every live realm's registry, so
        # a late snapshot of run A would include run B's crypto counts.
        net_a = run_figures_on_event_runtime(seed=41)
        snap_a = net_a.metrics.snapshot(now=net_a.clock.now())
        executed_a = net_a.runtime.executed
        del net_a
        net_b = run_figures_on_event_runtime(seed=41)
        snap_b = net_b.metrics.snapshot(now=net_b.clock.now())
        assert executed_a == net_b.runtime.executed
        assert snap_a == snap_b

    def test_different_seed_different_interleaving(self):
        net_a = run_figures_on_event_runtime(seed=41)
        net_b = run_figures_on_event_runtime(seed=42)
        fingerprint = lambda net: (
            net.runtime.executed,
            net.clock.now(),
            net.metrics.total("retry.attempts_total"),
        )
        assert fingerprint(net_a) != fingerprint(net_b)
