"""register / Hesiod / SMS tests (paper Sections 2.2 and 7.1)."""

import pytest

from repro.apps.hesiod import HesiodServer, hesiod_lookup
from repro.apps.register import RegisterServer, register_user
from repro.apps.sms import SmsServer, sms_validate
from repro.principal import Principal

from tests.apps.conftest import REALM


@pytest.fixture
def signup(world):
    """SMS + register server on the master machine."""
    sms_host = world.net.add_host("sms")
    sms = SmsServer().attach(sms_host)
    sms.add_affiliate("Barbara C. Newuser", "912345678")
    register = RegisterServer(
        world.realm.db, sms_host.address
    ).attach(world.realm.master_host)
    return sms_host, sms, register


class TestHesiod:
    def test_lookup(self, world):
        ws = world.workstation()
        entry = hesiod_lookup(ws.host, world.hesiod_host.address, "jis")
        assert entry.uid == 1001
        assert entry.home_server == "fs1"
        assert entry.home_path == "/u/jis"

    def test_missing_user(self, world):
        ws = world.workstation()
        assert hesiod_lookup(ws.host, world.hesiod_host.address, "nobody") is None

    def test_passwd_line_construction(self, world):
        """The appendix: Hesiod data builds the local passwd entry."""
        entry = world.hesiod.local_lookup("jis")
        line = entry.passwd_line()
        assert line.startswith("jis:*:1001:100:")
        assert "/u/jis" in line

    def test_hesiod_data_travels_in_cleartext(self, world):
        """Section 2.2's design point: non-sensitive data is allowed to
        travel unencrypted."""
        ws = world.workstation()
        captured = []
        world.net.add_tap(lambda d: captured.append(d.payload))
        hesiod_lookup(ws.host, world.hesiod_host.address, "jis")
        assert any(b"/u/jis" in p for p in captured)

    def test_query_counter(self, world):
        ws = world.workstation()
        hesiod_lookup(ws.host, world.hesiod_host.address, "jis")
        hesiod_lookup(ws.host, world.hesiod_host.address, "bcn")
        assert world.hesiod.queries == 2


class TestSms:
    def test_valid_affiliate(self, world, signup):
        sms_host, _, _ = signup
        ws = world.workstation()
        assert sms_validate(
            ws.host, sms_host.address, "Barbara C. Newuser", "912345678"
        )

    def test_unknown_id(self, world, signup):
        sms_host, _, _ = signup
        ws = world.workstation()
        assert not sms_validate(ws.host, sms_host.address, "Anyone", "000000000")

    def test_name_must_match_id(self, world, signup):
        sms_host, _, _ = signup
        ws = world.workstation()
        assert not sms_validate(
            ws.host, sms_host.address, "Wrong Name", "912345678"
        )


class TestRegister:
    def test_successful_signup(self, world, signup):
        ws = world.workstation()
        text = register_user(
            ws.host,
            world.realm.master_host.address,
            "Barbara C. Newuser",
            "912345678",
            "barbn",
            "first-password",
        )
        assert "welcome" in text
        assert world.realm.db.exists(Principal("barbn", "", REALM))
        # And the account actually works.
        ws.client.kinit("barbn", "first-password")

    def test_invalid_affiliate_rejected(self, world, signup):
        ws = world.workstation()
        with pytest.raises(RuntimeError, match="SMS"):
            register_user(
                ws.host,
                world.realm.master_host.address,
                "Impostor",
                "999999999",
                "imp",
                "pw",
            )

    def test_duplicate_username_rejected(self, world, signup):
        """Paper: register checks with Kerberos that the requested username
        is unique."""
        ws = world.workstation()
        with pytest.raises(RuntimeError, match="taken"):
            register_user(
                ws.host,
                world.realm.master_host.address,
                "Barbara C. Newuser",
                "912345678",
                "jis",  # already registered
                "pw",
            )

    def test_password_not_in_cleartext(self, world, signup):
        ws = world.workstation()
        captured = []
        world.net.add_tap(lambda d: captured.append(d.payload))
        register_user(
            ws.host,
            world.realm.master_host.address,
            "Barbara C. Newuser",
            "912345678",
            "barbn",
            "the-new-password",
        )
        assert not any(b"the-new-password" in p for p in captured)

    def test_registration_counter(self, world, signup):
        _, _, register = signup
        ws = world.workstation()
        register_user(
            ws.host,
            world.realm.master_host.address,
            "Barbara C. Newuser",
            "912345678",
            "barbn",
            "pw",
        )
        assert register.registrations == 1
