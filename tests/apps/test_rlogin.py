"""Kerberized rlogin/rsh with .rhosts fallback (paper Section 7.1)."""

import pytest

from repro.apps.rlogin import RloginServer, rlogin, rsh

from tests.apps.conftest import REALM


@pytest.fixture
def priam(world):
    """The timesharing machine priam with its rlogin daemon."""
    service, _ = world.realm.add_service("rcmd", "priam")
    host = world.net.add_host("priam")
    server = RloginServer(service, world.realm.srvtab_for(service)).attach(host)
    server.add_account("jis")
    server.add_account("bcn")
    return service, host, server


class TestKerberosPath:
    def test_rsh_with_tickets(self, world, priam):
        """Paper: a user with valid tickets can rlogin to another Athena
        machine without .rhosts files."""
        service, host, server = priam
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        output = rsh(ws.client, service, host.address, "ls")
        assert "ls" in output
        assert server.kerberos_logins == 1
        assert server.rhosts_logins == 0

    def test_identity_is_authenticated_not_claimed(self, world, priam):
        service, host, server = priam
        outputs = []
        server.accounts["jis"] = lambda cmd: "ran as jis"
        server.accounts["bcn"] = lambda cmd: "ran as bcn"
        ws = world.workstation()
        ws.client.kinit("bcn", "bcn-pw")
        # bcn runs rsh; the account used is bcn's, no matter what they want.
        assert rsh(ws.client, service, host.address, "w") == "ran as bcn"

    def test_no_account_refused(self, world, priam):
        service, host, server = priam
        del server.accounts["jis"]
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        with pytest.raises(PermissionError):
            rsh(ws.client, service, host.address, "ls")

    def test_rlogin_mutual_auth(self, world, priam):
        service, host, _ = priam
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        channel = rlogin(ws.client, service, host.address, port=544)
        assert channel.call(b"whoami").startswith(b"jis")


class TestRhostsFallback:
    def test_fallback_when_no_tickets(self, world, priam):
        """Paper: if the Kerberos authentication fails, the programs fall
        back on their usual methods of authorization."""
        service, host, server = priam
        ws = world.workstation()  # never ran kinit
        server.add_rhosts_entry("jis", "jis", ws.host.address)
        output = rsh(ws.client, service, host.address, "ls", local_user="jis")
        assert server.rhosts_logins == 1
        assert server.kerberos_logins == 0

    def test_fallback_denied_without_rhosts_entry(self, world, priam):
        service, host, _ = priam
        ws = world.workstation()
        with pytest.raises(PermissionError, match="Permission denied"):
            rsh(ws.client, service, host.address, "ls", local_user="jis")

    def test_rhosts_trusts_addresses_hence_spoofable(self, world, priam):
        """The legacy path's flaw, stated in Section 1: it trusts "the
        Internet address from which a connection has been established".
        An attacker who can forge that address gets in with no proof."""
        from repro.apps.rlogin import RSHD_LEGACY_PORT, RhostsReply, RhostsRequest
        from repro.netsim import Datagram

        service, host, server = priam
        victim_ws = world.workstation()
        server.add_rhosts_entry("jis", "jis", victim_ws.host.address)

        forged = Datagram(
            src=victim_ws.host.address,  # forged source!
            src_port=0,
            dst=host.address,
            dst_port=RSHD_LEGACY_PORT,
            payload=RhostsRequest(
                claimed_user="jis", local_user="jis", command="evil"
            ).to_bytes(),
        )
        reply = RhostsReply.from_bytes(world.net.inject(forged))
        assert reply.ok  # the attack SUCCEEDS against .rhosts

    def test_same_spoof_fails_against_kerberos(self, world, priam):
        """And the identical spoof gains nothing against the Kerberized
        path, which demands a ticket no forger can produce."""
        from repro.apps.kerberized import OpenReply, OpenRequest, _Kind
        from repro.netsim import Datagram

        service, host, server = priam
        victim_ws = world.workstation()
        request = OpenRequest(ap_request=b"garbage", protection=0, mutual=False)
        forged = Datagram(
            src=victim_ws.host.address,
            src_port=0,
            dst=host.address,
            dst_port=544,
            payload=bytes([int(_Kind.OPEN)]) + request.to_bytes(),
        )
        reply = OpenReply.from_bytes(world.net.inject(forged))
        assert not reply.ok
