"""Workstation login failure handling: partial failures leave no residue."""

import pytest

from repro.apps.nfs.client import NfsClientError
from repro.user.login import LoginError

from tests.apps.conftest import REALM


class TestLoginFailureCleanup:
    def test_fileserver_down_aborts_login_cleanly(self, world):
        """If the home directory cannot be mounted, the login fails and —
        crucially — no tickets are left behind on the public
        workstation."""
        world.net.set_down("fs1")
        aws = world.athena_workstation()
        with pytest.raises(Exception):
            aws.login("jis", "jis-pw")
        assert aws.current_user is None
        assert aws.session.client.klist() == []
        world.net.set_up("fs1")

    def test_hesiod_down_aborts_login_cleanly(self, world):
        world.net.set_down("hesiod")
        aws = world.athena_workstation()
        with pytest.raises(Exception):
            aws.login("jis", "jis-pw")
        assert aws.current_user is None
        assert aws.session.client.klist() == []
        world.net.set_up("hesiod")

    def test_login_succeeds_after_transient_failure(self, world):
        world.net.set_down("fs1")
        aws = world.athena_workstation()
        with pytest.raises(Exception):
            aws.login("jis", "jis-pw")
        world.net.set_up("fs1")
        home = aws.login("jis", "jis-pw")
        assert home.home_path == "/u/jis"
        aws.logout()

    def test_kdc_down_is_a_login_error(self, world):
        world.net.set_down(world.realm.master_host.name)
        aws = world.athena_workstation()
        with pytest.raises(LoginError):
            aws.login("jis", "jis-pw")
        world.net.set_up(world.realm.master_host.name)

    def test_no_local_account_on_fileserver(self, world):
        """Kerberos and Hesiod know the user, but the fileserver's passwd
        map does not: the mount is refused."""
        world.realm.add_user("stranger", "pw")
        world.hesiod.add_user("stranger", 1099, [100], "fs1", "/u/stranger")
        aws = world.athena_workstation()
        with pytest.raises(Exception, match="no local account"):
            aws.login("stranger", "pw")
        assert aws.current_user is None


class TestNfsClientOperationCoverage:
    def test_all_operations_through_client(self, world):
        aws = world.athena_workstation()
        home = aws.login("jis", "jis-pw")
        nfs = home.nfs
        base = home.home_path

        nfs.mkdir(f"{base}/projects")
        nfs.create(f"{base}/projects/notes.txt")
        assert nfs.write(f"{base}/projects/notes.txt", b"athena") == 6
        assert nfs.read(f"{base}/projects/notes.txt") == b"athena"
        assert nfs.readdir(f"{base}/projects") == ["notes.txt"]

        uid, gid, mode, size = nfs.getattr(f"{base}/projects/notes.txt")
        assert (uid, gid, size) == (1001, 100, 6)
        assert mode == 0o644

        nfs.chmod(f"{base}/projects/notes.txt", 0o600)
        assert nfs.getattr(f"{base}/projects/notes.txt")[2] == 0o600

        nfs.remove(f"{base}/projects/notes.txt")
        assert nfs.readdir(f"{base}/projects") == []
        aws.logout()

    def test_errors_surface_with_reason(self, world):
        aws = world.athena_workstation()
        home = aws.login("jis", "jis-pw")
        with pytest.raises(NfsClientError, match="no such file"):
            home.nfs.read("/u/jis/never-created")
        with pytest.raises(NfsClientError, match="already exists"):
            home.nfs.mkdir("/u/jis")
        aws.logout()
