"""Kerberized POP and Zephyr tests (paper Section 7.1)."""

import pytest

from repro.apps.kerberized import ChannelError
from repro.apps.pop import PopClient, PopServer
from repro.apps.zephyr import ZephyrClient, ZephyrServer

from tests.apps.conftest import REALM


@pytest.fixture
def post_office(world):
    service, _ = world.realm.add_service("pop", "mailhost")
    host = world.net.add_host("mailhost")
    server = PopServer(service, world.realm.srvtab_for(service)).attach(host)
    server.deliver("jis", b"From: bcn\r\n\r\nlunch?")
    server.deliver("jis", b"From: treese\r\n\r\nmeeting at 3")
    server.deliver("bcn", b"From: jis\r\n\r\nsure")
    return service, host, server


@pytest.fixture
def zephyr(world):
    service, _ = world.realm.add_service("zephyr", "zhost")
    host = world.net.add_host("zhost")
    server = ZephyrServer(service, world.realm.srvtab_for(service)).attach(host)
    return service, host, server


def login(world, user, pw):
    ws = world.workstation()
    ws.client.kinit(user, pw)
    return ws


class TestPop:
    def test_retrieve_own_mail(self, world, post_office):
        service, host, _ = post_office
        ws = login(world, "jis", "jis-pw")
        pop = PopClient(ws.client, service, host.address)
        assert pop.stat() == 2
        assert b"lunch?" in pop.retrieve(1)
        pop.quit()

    def test_mailbox_selected_by_authenticated_identity(self, world, post_office):
        """No way to name someone else's mailbox: the principal IS the
        mailbox selector."""
        service, host, _ = post_office
        ws = login(world, "bcn", "bcn-pw")
        pop = PopClient(ws.client, service, host.address)
        assert pop.stat() == 1          # bcn's single message
        assert b"sure" in pop.retrieve(1)

    def test_delete(self, world, post_office):
        service, host, _ = post_office
        ws = login(world, "jis", "jis-pw")
        pop = PopClient(ws.client, service, host.address)
        pop.delete(1)
        assert pop.stat() == 1
        assert b"meeting" in pop.retrieve(1)

    def test_mail_content_encrypted_on_wire(self, world, post_office):
        """POP uses the PRIVATE level: bodies never travel in the clear."""
        service, host, _ = post_office
        ws = login(world, "jis", "jis-pw")
        pop = PopClient(ws.client, service, host.address)
        captured = []
        world.net.add_tap(lambda d: captured.append(d.payload))
        pop.retrieve(1)
        assert not any(b"lunch?" in p for p in captured)

    def test_unauthenticated_no_mail(self, world, post_office):
        from repro.core.errors import KerberosError

        service, host, _ = post_office
        ws = world.workstation()
        with pytest.raises(KerberosError):
            PopClient(ws.client, service, host.address)

    def test_bad_message_index(self, world, post_office):
        service, host, _ = post_office
        ws = login(world, "jis", "jis-pw")
        pop = PopClient(ws.client, service, host.address)
        with pytest.raises(ChannelError, match="no such message"):
            pop.retrieve(99)


class TestZephyr:
    def test_send_and_receive(self, world, zephyr):
        service, host, _ = zephyr
        sender = login(world, "jis", "jis-pw")
        recipient = login(world, "bcn", "bcn-pw")
        zw = ZephyrClient(sender.client, service, host.address)
        zw.zwrite("bcn", "lunch at walker?")
        zr = ZephyrClient(recipient.client, service, host.address)
        notices = zr.poll()
        assert len(notices) == 1
        assert notices[0].body == "lunch at walker?"

    def test_sender_is_authenticated_identity(self, world, zephyr):
        """The server stamps the sender from the session — a client
        cannot send notices as someone else."""
        service, host, _ = zephyr
        sender = login(world, "jis", "jis-pw")
        zw = ZephyrClient(sender.client, service, host.address)
        zw.zwrite("bcn", "hello")
        recipient = login(world, "bcn", "bcn-pw")
        zr = ZephyrClient(recipient.client, service, host.address)
        assert zr.poll()[0].sender == f"jis@{REALM}"

    def test_poll_clears_queue(self, world, zephyr):
        service, host, _ = zephyr
        ws = login(world, "jis", "jis-pw")
        z = ZephyrClient(ws.client, service, host.address)
        z.zwrite("jis", "note to self")
        assert len(z.poll()) == 1
        assert z.poll() == []

    def test_cannot_read_others_queue(self, world, zephyr):
        """POLL only ever returns the authenticated user's notices."""
        service, host, _ = zephyr
        sender = login(world, "jis", "jis-pw")
        z1 = ZephyrClient(sender.client, service, host.address)
        z1.zwrite("bcn", "private note for bcn")
        # jis polls; bcn's queue must be untouched.
        assert z1.poll() == []
        recipient = login(world, "bcn", "bcn-pw")
        z2 = ZephyrClient(recipient.client, service, host.address)
        assert len(z2.poll()) == 1

    def test_opcode_carried(self, world, zephyr):
        service, host, _ = zephyr
        ws = login(world, "jis", "jis-pw")
        z = ZephyrClient(ws.client, service, host.address)
        z.zwrite("jis", "", opcode="LOGIN")
        assert z.poll()[0].opcode == "LOGIN"
