"""Shared fixture: a miniature Athena — realm, Hesiod, fileserver, users."""

import pytest

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsServer
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


class AthenaWorld:
    """Everything the application tests need, pre-wired."""

    def __init__(self):
        self.net = Network()
        self.realm = Realm(self.net, REALM)
        self.realm.add_user("jis", "jis-pw")
        self.realm.add_user("bcn", "bcn-pw")

        # Hesiod.
        self.hesiod_host = self.net.add_host("hesiod")
        self.hesiod = HesiodServer().attach(self.hesiod_host)
        self.hesiod.add_user("jis", 1001, [100], "fs1", "/u/jis", "Jeff Schiller")
        self.hesiod.add_user("bcn", 1002, [100], "fs1", "/u/bcn", "Cliff Neuman")

        # The fileserver with mount daemon (MAPPED mode).
        self.fs_host = self.net.add_host("fs1")
        self.nfs_service, _ = self.realm.add_service("nfs", "fs1")
        self.mount_service, _ = self.realm.add_service("mountd", "fs1")
        srvtab = self.realm.srvtab_for(self.nfs_service, self.mount_service)
        self.nfs_server = NfsServer(
            mode=AuthMode.MAPPED,
            service=self.nfs_service,
            srvtab=srvtab,
        ).attach(self.fs_host)
        self.nfs_server.passwd.add("jis", 1001, [100])
        self.nfs_server.passwd.add("bcn", 1002, [100])
        self.mountd = MountDaemon(
            self.nfs_server, self.mount_service, srvtab
        ).attach(self.fs_host)
        self.nfs_server.fs.install_home("jis", 1001, 100)
        self.nfs_server.fs.install_home("bcn", 1002, 100)

    def workstation(self, **kw):
        return self.realm.workstation(**kw)

    def athena_workstation(self):
        from repro.apps.workstation import AthenaWorkstation

        ws = self.workstation()
        return AthenaWorkstation(
            ws.host,
            ws.client,
            self.hesiod_host.address,
            {"fs1": self.fs_host.address},
            {"fs1": self.mount_service},
        )


@pytest.fixture
def world():
    return AthenaWorld()
