"""The shared-timesharing-machine scenario (paper Section 8).

*"if a user has been authenticated on a system that allows multiple
users, another user with access to root might be able to find the
information needed to use stolen tickets."*

And the level-NONE description (Section 2.1): services may "assume that
further messages from a given network address originate from the
authenticated party" — an assumption that is *false* on multi-user
machines.  These tests show exactly where each protection level draws
the line for a local attacker who shares the victim's host (and thus
its network address).
"""

import pytest

from repro.apps.kerberized import (
    CallReply,
    CallRequest,
    ChannelError,
    KerberizedChannel,
    Protection,
    _Kind,
)
from repro.core.safe_priv import krb_mk_priv, krb_mk_safe

from tests.apps.conftest import REALM

PORT = 5100


@pytest.fixture
def echo(world):
    from tests.apps.test_kerberized import EchoServer

    service, _ = world.realm.add_service("echo", "echohost")
    host = world.net.add_host("echohost")
    server = EchoServer(
        service, world.realm.srvtab_for(service), PORT
    ).attach(host)
    return service, host, server


@pytest.fixture
def victim_session(world, echo):
    """jis authenticates from a shared timesharing machine."""
    service, host, _ = echo
    ws = world.workstation(hostname="shared-machine")
    ws.client.kinit("jis", "jis-pw")
    return ws


def hijack_call(world, victim_ws, server_host, session_id, payload):
    """The local attacker sends from the SAME machine (same address)."""
    raw = victim_ws.host.rpc(
        server_host.address,
        PORT,
        bytes([int(_Kind.CALL)])
        + CallRequest(session_id=session_id, payload=payload).to_bytes(),
    )
    return CallReply.from_bytes(raw)


class TestLocalAttacker:
    def test_level_none_session_hijackable_from_same_host(
        self, world, echo, victim_session
    ):
        """At protection NONE the address check is the only guard, and a
        local attacker shares the address: the hijack *succeeds*.  This
        is the documented cost of the cheapest level — exactly why the
        paper offers three."""
        service, host, server = echo
        channel = KerberizedChannel(
            victim_session.client, service, host.address, PORT,
            protection=Protection.NONE,
        )
        reply = hijack_call(
            world, victim_session, host, channel.session_id, b"as jis!"
        )
        assert reply.ok                      # the hijack worked...
        assert reply.payload.startswith(b"jis:")   # ...as the victim

    def test_safe_level_blocks_local_attacker(self, world, echo, victim_session):
        """At SAFE, every message needs the session key's checksum; the
        local attacker (who stole no keys, only shares the host) fails."""
        service, host, server = echo
        channel = KerberizedChannel(
            victim_session.client, service, host.address, PORT,
            protection=Protection.SAFE,
        )
        # Attacker forges a safe message with a made-up key.
        from repro.crypto import KeyGenerator

        fake_key = KeyGenerator(seed=b"local-attacker").session_key()
        forged = krb_mk_safe(
            b"as jis!", fake_key, victim_session.host.address,
            victim_session.host.clock.now(),
        )
        reply = hijack_call(
            world, victim_session, host, channel.session_id, forged.to_bytes()
        )
        assert not reply.ok
        assert "rejected" in reply.text

    def test_private_level_blocks_local_attacker(self, world, echo, victim_session):
        service, host, server = echo
        channel = KerberizedChannel(
            victim_session.client, service, host.address, PORT,
            protection=Protection.PRIVATE,
        )
        from repro.crypto import KeyGenerator

        fake_key = KeyGenerator(seed=b"local-attacker2").session_key()
        forged = krb_mk_priv(
            b"as jis!", fake_key, victim_session.host.address,
            victim_session.host.clock.now(),
        )
        reply = hijack_call(
            world, victim_session, host, channel.session_id, forged.to_bytes()
        )
        assert not reply.ok

    def test_root_thief_with_the_session_key_beats_safe_too(
        self, world, echo, victim_session
    ):
        """The paper's full scenario: root on the shared machine can read
        the victim's *ticket file* — session keys included — and then no
        protection level helps until the tickets expire."""
        service, host, server = echo
        channel = KerberizedChannel(
            victim_session.client, service, host.address, PORT,
            protection=Protection.SAFE,
        )
        stolen_key = channel._session_key      # root reads process memory
        forged = krb_mk_safe(
            b"as jis!", stolen_key, victim_session.host.address,
            victim_session.host.clock.now(),
        )
        reply = hijack_call(
            world, victim_session, host, channel.session_id, forged.to_bytes()
        )
        assert reply.ok   # Section 8's accepted residual risk, again
