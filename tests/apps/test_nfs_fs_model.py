"""Model-based (stateful) testing of the NFS filesystem substrate.

Hypothesis drives random sequences of filesystem operations against both
the real :class:`FileSystem` and a trivially-correct dict model, as root
(so permissions never interfere with the structural comparison; the
permission logic has its own tests).
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.apps.nfs.fs import FileSystem, FsError, NfsCredential

ROOT = NfsCredential(uid=0)
NAMES = ["alpha", "beta", "gamma", "delta"]


class FileSystemMachine(RuleBasedStateMachine):
    """The model: files maps path -> bytes, dirs is a set of paths."""

    def __init__(self):
        super().__init__()
        self.fs = FileSystem()
        self.files = {}
        self.dirs = {"/"}

    dirs_bundle = Bundle("dirs")
    files_bundle = Bundle("files")

    @initialize(target=dirs_bundle)
    def seed_root(self):
        return "/"

    @initialize(target=files_bundle)
    def seed_file(self):
        return self.make_seed_file()

    @rule(target=dirs_bundle, parent=dirs_bundle, name=st.sampled_from(NAMES))
    def make_dir(self, parent, name):
        path = (parent.rstrip("/") + "/" + name) if parent != "/" else "/" + name
        if path in self.dirs or path in self.files:
            with pytest.raises(FsError):
                self.fs.mkdir(path, ROOT)
            return parent  # no new dir; keep bundle non-empty
        self.fs.mkdir(path, ROOT)
        self.dirs.add(path)
        return path

    @rule(target=files_bundle, parent=dirs_bundle, name=st.sampled_from(NAMES))
    def make_file(self, parent, name):
        path = (parent.rstrip("/") + "/" + name) if parent != "/" else "/" + name
        if path in self.dirs or path in self.files:
            with pytest.raises(FsError):
                self.fs.create(path, ROOT)
            return list(self.files) [0] if self.files else self.make_seed_file()
        self.fs.create(path, ROOT)
        self.files[path] = b""
        return path

    def make_seed_file(self):
        path = "/__seed"
        if path not in self.files:
            self.fs.create(path, ROOT)
            self.files[path] = b""
        return path

    @rule(path=files_bundle, data=st.binary(max_size=64))
    def write_file(self, path, data):
        if path not in self.files:
            return
        self.fs.write(path, data, ROOT)
        self.files[path] = data

    @rule(path=files_bundle)
    def read_file(self, path):
        if path not in self.files:
            with pytest.raises(FsError):
                self.fs.read(path, ROOT)
            return
        assert self.fs.read(path, ROOT) == self.files[path]

    @rule(path=files_bundle)
    def remove_file(self, path):
        if path not in self.files:
            return
        self.fs.remove(path, ROOT)
        del self.files[path]

    @rule(parent=dirs_bundle)
    def list_dir(self, parent):
        if parent not in self.dirs:
            return
        expected = set()
        prefix = parent.rstrip("/") + "/"
        if parent == "/":
            prefix = "/"
        for path in list(self.dirs) + list(self.files):
            if path != "/" and path.startswith(prefix):
                rest = path[len(prefix):]
                if rest and "/" not in rest:
                    expected.add(rest)
        assert set(self.fs.listdir(parent, ROOT)) == expected

    @invariant()
    def all_model_files_exist(self):
        for path in self.files:
            assert self.fs.exists(path)
        for path in self.dirs:
            assert path == "/" or self.fs.exists(path)


FileSystemMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestFileSystemModel = FileSystemMachine.TestCase
