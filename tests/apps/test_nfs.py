"""Kerberized NFS tests — the paper's appendix, end to end (exp NFS)."""

import pytest

from repro.apps.nfs import (
    AuthMode,
    CredentialMap,
    FileSystem,
    FsError,
    MountDaemon,
    NfsClient,
    NfsCredential,
    NfsServer,
    UnmappedPolicy,
)
from repro.apps.nfs.client import NfsClientError
from repro.apps.nfs.fs import NOBODY_UID

from tests.apps.conftest import REALM


def make_server(world, mode, policy=UnmappedPolicy.FRIENDLY, hostname="fsx"):
    host = world.net.add_host(hostname)
    nfs_service, _ = world.realm.add_service("nfs", hostname)
    mount_service, _ = world.realm.add_service("mountd", hostname)
    srvtab = world.realm.srvtab_for(nfs_service, mount_service)
    server = NfsServer(
        mode=mode, unmapped_policy=policy,
        service=nfs_service, srvtab=srvtab,
    ).attach(host)
    server.passwd.add("jis", 1001, [100])
    server.passwd.add("bcn", 1002, [100])
    mountd = MountDaemon(server, mount_service, srvtab).attach(host)
    server.fs.install_home("jis", 1001, 100)
    server.fs.install_home("bcn", 1002, 100)
    # Seed a file in each home.
    server.fs.create("/u/jis/secret.txt", NfsCredential(uid=1001, gids=(100,)))
    server.fs.write(
        "/u/jis/secret.txt", b"jis private data", NfsCredential(uid=1001)
    )
    return host, server, nfs_service, mount_service


class TestFileSystemSubstrate:
    def test_owner_permissions(self):
        fs = FileSystem()
        cred = NfsCredential(uid=5, gids=(10,))
        fs.mkdir("/d", NfsCredential(uid=0), mode=0o777)
        fs.create("/d/f", cred, mode=0o600)
        assert fs.read("/d/f", cred) == b""
        with pytest.raises(FsError):
            fs.read("/d/f", NfsCredential(uid=6))

    def test_group_permissions(self):
        fs = FileSystem()
        owner = NfsCredential(uid=5, gids=(10,))
        fs.mkdir("/d", NfsCredential(uid=0), mode=0o777)
        fs.create("/d/f", owner, mode=0o640)
        groupmate = NfsCredential(uid=6, gids=(10,))
        stranger = NfsCredential(uid=7, gids=(11,))
        fs.read("/d/f", groupmate)
        with pytest.raises(FsError):
            fs.read("/d/f", stranger)

    def test_root_bypasses_checks(self):
        fs = FileSystem()
        fs.mkdir("/d", NfsCredential(uid=0), mode=0o777)
        fs.create("/d/f", NfsCredential(uid=5), mode=0o600)
        assert fs.read("/d/f", NfsCredential(uid=0)) == b""

    def test_private_home_blocks_traversal(self):
        fs = FileSystem()
        fs.install_home("jis", 1001, 100)
        fs.create("/u/jis/f", NfsCredential(uid=1001), mode=0o644)
        # Even a world-readable file inside a 0700 home is unreachable.
        with pytest.raises(FsError, match="traversing"):
            fs.read("/u/jis/f", NfsCredential(uid=NOBODY_UID))

    def test_chmod_owner_only(self):
        fs = FileSystem()
        fs.mkdir("/d", NfsCredential(uid=0), mode=0o777)
        fs.create("/d/f", NfsCredential(uid=5))
        with pytest.raises(FsError):
            fs.chmod("/d/f", 0o777, NfsCredential(uid=6))
        fs.chmod("/d/f", 0o600, NfsCredential(uid=5))

    def test_listing_and_removal(self):
        fs = FileSystem()
        cred = NfsCredential(uid=0)
        fs.mkdir("/d", cred)
        fs.create("/d/a", cred)
        fs.create("/d/b", cred)
        assert fs.listdir("/d", cred) == ["a", "b"]
        fs.remove("/d/a", cred)
        assert fs.listdir("/d", cred) == ["b"]

    def test_relative_paths_rejected(self):
        with pytest.raises(FsError):
            FileSystem().read("no-slash", NfsCredential(uid=0))


class TestCredentialMap:
    def test_add_lookup_delete(self):
        cm = CredentialMap()
        cred = NfsCredential(uid=1001, gids=(100,))
        cm.add("18.72.0.5", 1001, cred)
        assert cm.lookup("18.72.0.5", 1001) == cred
        assert cm.delete("18.72.0.5", 1001)
        assert cm.lookup("18.72.0.5", 1001) is None

    def test_flush_uid(self):
        cm = CredentialMap()
        cred = NfsCredential(uid=1001)
        cm.add("18.72.0.5", 1001, cred)
        cm.add("18.72.0.6", 17, cred)      # same user from another ws
        cm.add("18.72.0.7", 2, NfsCredential(uid=2002))
        assert cm.flush_uid(1001) == 2
        assert len(cm) == 1

    def test_flush_address(self):
        cm = CredentialMap()
        cm.add("18.72.0.5", 1, NfsCredential(uid=1))
        cm.add("18.72.0.5", 2, NfsCredential(uid=2))
        cm.add("18.72.0.6", 1, NfsCredential(uid=1))
        assert cm.flush_address("18.72.0.5") == 2
        assert len(cm) == 1

    def test_lookup_counts(self):
        cm = CredentialMap()
        cm.lookup("1.1.1.1", 1)
        cm.lookup("1.1.1.1", 1)
        assert cm.lookups == 2


class TestUnmodifiedNfs:
    """The appendix's starting point and its flaw."""

    def test_trusted_workstation_can_masquerade(self, world):
        """"it is possible from a trusted workstation to masquerade as
        any valid user of the file service system"."""
        host, server, _, _ = make_server(world, AuthMode.TRUSTED, hostname="fst")
        attacker_ws = world.workstation()
        # The attacker simply *claims* to be uid 1001 (jis).
        nc = NfsClient(attacker_ws.host, host.address, uid_on_client=1001, gids=[100])
        assert nc.read("/u/jis/secret.txt") == b"jis private data"

    def test_untrusted_workstation_gets_nothing(self, world):
        """Paper: untrusted systems cannot access any files at all."""
        host, server, _, _ = make_server(world, AuthMode.UNTRUSTED, hostname="fsu")
        ws = world.workstation()
        nc = NfsClient(ws.host, host.address, uid_on_client=1001, gids=[100])
        with pytest.raises(NfsClientError, match="access error"):
            nc.read("/u/jis/secret.txt")


class TestMappedNfs:
    """The shipped hybrid design."""

    def test_mount_then_access(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)  # any local uid
        nc.kerberos_mount(ws.client, mount_service)
        assert nc.read("/u/jis/secret.txt") == b"jis private data"

    def test_mapping_keyed_by_address_and_uid(self, world):
        """The mapping is ⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ — a different
        local uid on the same workstation is NOT mapped."""
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        other = NfsClient(ws.host, host.address, uid_on_client=778)
        with pytest.raises(NfsClientError):
            other.read("/u/jis/secret.txt")

    def test_gids_in_claimed_credential_ignored(self, world):
        """"all information in the client-generated credential except the
        UID-ON-CLIENT is discarded" — claiming group 100 gains nothing."""
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("bcn", "bcn-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=5, gids=[0, 100])
        nc.kerberos_mount(ws.client, mount_service)
        # bcn's mapping is to uid 1002; jis's 0700 home stays closed no
        # matter what groups the request claims.
        with pytest.raises(NfsClientError):
            nc.read("/u/jis/secret.txt")

    def test_friendly_unmapped_becomes_nobody(self, world):
        host, server, _, _ = make_server(
            world, AuthMode.MAPPED, UnmappedPolicy.FRIENDLY, hostname="fsf"
        )
        # World-readable file outside any private home.
        server.fs.create("/motd", NfsCredential(uid=0), mode=0o644)
        server.fs.write("/motd", b"welcome to athena", NfsCredential(uid=0))
        ws = world.workstation()
        nc = NfsClient(ws.host, host.address, uid_on_client=1001)
        assert nc.read("/motd") == b"welcome to athena"  # as nobody
        with pytest.raises(NfsClientError):
            nc.read("/u/jis/secret.txt")                  # but nothing private

    def test_unfriendly_unmapped_is_error(self, world):
        """Paper: unfriendly servers return an NFS access error."""
        host, server, _, _ = make_server(
            world, AuthMode.MAPPED, UnmappedPolicy.UNFRIENDLY, hostname="fsh"
        )
        server.fs.create("/motd", NfsCredential(uid=0), mode=0o644)
        ws = world.workstation()
        nc = NfsClient(ws.host, host.address, uid_on_client=1001)
        with pytest.raises(NfsClientError, match="access error"):
            nc.read("/motd")

    def test_unmount_removes_mapping(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        assert nc.unmount()
        with pytest.raises(NfsClientError):
            nc.read("/u/jis/secret.txt")

    def test_logout_flushes_all_mappings_for_user(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        assert "flushed 1" in nc.logout()
        assert len(server.credmap) == 0

    def test_mount_requires_real_tickets(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()  # no kinit
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        from repro.core.errors import KerberosError

        with pytest.raises(KerberosError):
            nc.kerberos_mount(ws.client, mount_service)

    def test_uid_on_client_rides_inside_authenticator(self, world):
        """The UID-ON-CLIENT is sealed in the authenticator; an attacker
        rewriting the mount request cannot change which local uid gets
        mapped (it would break the seal)."""
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        captured = []
        world.net.add_tap(lambda d: captured.append(d))
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        mount_packets = [d for d in captured if d.dst_port == 635]
        assert mount_packets
        # 777 encoded big-endian must not appear in the clear anywhere.
        assert not any(
            (777).to_bytes(4, "big") in d.payload for d in mount_packets
        )


class TestSecurityImplications:
    """The appendix's own honest security assessment."""

    def test_forgery_while_logged_in_succeeds(self, world):
        """Paper: the address/uid pair "could be forged and thus security
        compromised", but "this form of attack is limited to when the
        user in question is logged in"."""
        from repro.apps.nfs.protocol import NfsOp, NfsReply, NfsRequest
        from repro.netsim import Datagram

        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        victim_ws = world.workstation()
        victim_ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(victim_ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(victim_ws.client, mount_service)

        # The attacker forges the victim's address AND local uid.
        forged = Datagram(
            src=victim_ws.host.address,
            src_port=0,
            dst=host.address,
            dst_port=2049,
            payload=NfsRequest(
                op=int(NfsOp.READ), path="/u/jis/secret.txt", data=b"",
                mode=0, claimed_uid=777, claimed_gids=[], ap_request=b"",
            ).to_bytes(),
        )
        reply = NfsReply.from_bytes(world.net.inject(forged))
        assert reply.ok  # the attack works... while jis is logged in

    def test_forgery_after_logout_fails(self, world):
        """Paper: "When a user is not logged in, no amount of IP address
        forgery will permit unauthorized access to her/his files"."""
        from repro.apps.nfs.protocol import NfsOp, NfsReply, NfsRequest
        from repro.netsim import Datagram

        host, server, _, mount_service = make_server(world, AuthMode.MAPPED)
        victim_ws = world.workstation()
        victim_ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(victim_ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(victim_ws.client, mount_service)
        nc.logout()

        forged = Datagram(
            src=victim_ws.host.address,
            src_port=0,
            dst=host.address,
            dst_port=2049,
            payload=NfsRequest(
                op=int(NfsOp.READ), path="/u/jis/secret.txt", data=b"",
                mode=0, claimed_uid=777, claimed_gids=[], ap_request=b"",
            ).to_bytes(),
        )
        reply = NfsReply.from_bytes(world.net.inject(forged))
        assert not reply.ok


class TestPerRpcKerberos:
    """The rejected design, kept for the appendix benchmark."""

    def test_per_rpc_mode_works(self, world):
        host, server, nfs_service, mount_service = make_server(
            world, AuthMode.KERBEROS_RPC, hostname="fsk"
        )
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=1001)
        nc.enable_per_rpc_kerberos(ws.client, nfs_service)
        assert nc.read("/u/jis/secret.txt") == b"jis private data"
        assert server.kerberos_verifications == 1

    def test_per_rpc_every_op_verified(self, world):
        host, server, nfs_service, _ = make_server(
            world, AuthMode.KERBEROS_RPC, hostname="fsk2"
        )
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=1001)
        nc.enable_per_rpc_kerberos(ws.client, nfs_service)
        for _ in range(5):
            nc.read("/u/jis/secret.txt")
        assert server.kerberos_verifications == 5

    def test_per_rpc_without_ap_request_rejected(self, world):
        host, server, _, _ = make_server(
            world, AuthMode.KERBEROS_RPC, hostname="fsk3"
        )
        ws = world.workstation()
        nc = NfsClient(ws.host, host.address, uid_on_client=1001)
        with pytest.raises(NfsClientError, match="access error"):
            nc.read("/u/jis/secret.txt")


class TestFullWorkstationLogin:
    """The appendix's opening narrative, end to end."""

    def test_login_mount_work_logout(self, world):
        aws = world.athena_workstation()
        home = aws.login("jis", "jis-pw")
        assert home.home_path == "/u/jis"
        home.nfs.create("/u/jis/.cshrc")
        home.nfs.write("/u/jis/.cshrc", b"setenv ATHENA yes")
        assert home.nfs.read("/u/jis/.cshrc") == b"setenv ATHENA yes"
        assert "jis" in aws.passwd_file
        aws.logout()
        assert aws.current_user is None
        assert len(world.nfs_server.credmap) == 0

    def test_wrong_password_no_mount(self, world):
        from repro.user.login import LoginError

        aws = world.athena_workstation()
        with pytest.raises(LoginError, match="Incorrect password"):
            aws.login("jis", "wrong")
        assert len(world.nfs_server.credmap) == 0

    def test_next_user_cannot_see_previous_files(self, world):
        aws = world.athena_workstation()
        home = aws.login("jis", "jis-pw")
        home.nfs.create("/u/jis/diary")
        home.nfs.write("/u/jis/diary", b"private thoughts")
        aws.logout()

        home2 = aws.login("bcn", "bcn-pw")
        with pytest.raises(NfsClientError):
            home2.nfs.read("/u/jis/diary")
        aws.logout()

    def test_hesiod_missing_entry_aborts_login(self, world):
        from repro.user.login import LoginError

        world.realm.add_user("ghost", "pw")  # Kerberos yes, Hesiod no
        aws = world.athena_workstation()
        with pytest.raises(LoginError, match="Hesiod"):
            aws.login("ghost", "pw")
        # And no tickets are left behind by the failed login.
        assert aws.session.username is None


class TestRename:
    def test_rename_within_home(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED,
                                                     hostname="fsr")
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        nc.rename("/u/jis/secret.txt", "/u/jis/renamed.txt")
        assert nc.read("/u/jis/renamed.txt") == b"jis private data"
        with pytest.raises(NfsClientError):
            nc.read("/u/jis/secret.txt")

    def test_rename_cannot_steal_into_own_home(self, world):
        """bcn cannot rename jis's file into bcn's home — the source
        parent is unwritable (and untraversable) to bcn."""
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED,
                                                     hostname="fsr2")
        ws = world.workstation()
        ws.client.kinit("bcn", "bcn-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=5)
        nc.kerberos_mount(ws.client, mount_service)
        with pytest.raises(NfsClientError):
            nc.rename("/u/jis/secret.txt", "/u/bcn/stolen.txt")

    def test_rename_target_collision(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED,
                                                     hostname="fsr3")
        from repro.apps.nfs.fs import NfsCredential

        server.fs.create("/u/jis/other", NfsCredential(uid=1001, gids=(100,)))
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        with pytest.raises(NfsClientError, match="already exists"):
            nc.rename("/u/jis/secret.txt", "/u/jis/other")

    def test_rename_directory(self, world):
        host, server, _, mount_service = make_server(world, AuthMode.MAPPED,
                                                     hostname="fsr4")
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        nc = NfsClient(ws.host, host.address, uid_on_client=777)
        nc.kerberos_mount(ws.client, mount_service)
        nc.mkdir("/u/jis/old-dir")
        nc.create("/u/jis/old-dir/f")
        nc.rename("/u/jis/old-dir", "/u/jis/new-dir")
        assert nc.readdir("/u/jis/new-dir") == ["f"]
