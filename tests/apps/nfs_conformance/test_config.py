"""The declarative export config itself: validation, longest-prefix
resolution, client ranges, squashing, diffing, and round-tripping."""

import pytest

from repro.apps.nfs import (
    AuthMode,
    ClientRange,
    ConfigError,
    ExportSpec,
    NfsExportConfig,
    SquashMode,
    UnmappedPolicy,
)

pytestmark = pytest.mark.nfs


class TestValidation:
    def test_default_config_is_valid(self):
        NfsExportConfig().validate()

    def test_relative_export_path_rejected(self):
        with pytest.raises(ConfigError, match="absolute"):
            ExportSpec("u/jis")

    def test_trailing_slash_rejected(self):
        with pytest.raises(ConfigError, match="end in"):
            ExportSpec("/u/")

    def test_root_export_path_is_allowed(self):
        assert ExportSpec("/").path == "/"

    def test_empty_client_list_rejected(self):
        with pytest.raises(ConfigError, match="allows no clients"):
            ExportSpec("/u", allowed=())

    def test_duplicate_export_paths_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            NfsExportConfig(exports=(ExportSpec("/u"), ExportSpec("/u")))

    def test_no_exports_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            NfsExportConfig(exports=())

    def test_bad_auth_mode_rejected(self):
        with pytest.raises(ConfigError, match="auth_mode"):
            NfsExportConfig(auth_mode="mapped")

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError, match="unmapped_policy"):
            NfsExportConfig(unmapped_policy="friendly")


class TestClientRange:
    def test_contains_own_network(self):
        assert ClientRange("18.72.0.0/16").contains("18.72.3.9")

    def test_excludes_other_network(self):
        assert not ClientRange("18.72.0.0/16").contains("18.73.0.1")

    def test_zero_prefix_matches_everything(self):
        assert ClientRange("0.0.0.0/0").contains("1.2.3.4")

    def test_full_prefix_is_one_host(self):
        r = ClientRange("18.72.0.5/32")
        assert r.contains("18.72.0.5")
        assert not r.contains("18.72.0.6")

    def test_missing_prefix_rejected(self):
        with pytest.raises(ConfigError, match="/prefix"):
            ClientRange("18.72.0.0")

    def test_out_of_range_prefix_rejected(self):
        with pytest.raises(ConfigError, match="prefix length"):
            ClientRange("18.72.0.0/33")

    def test_host_bits_below_mask_rejected(self):
        with pytest.raises(ConfigError, match="host bits"):
            ClientRange("18.72.0.1/16")


class TestResolution:
    def test_component_prefix_not_string_prefix(self):
        spec = ExportSpec("/u")
        assert spec.covers("/u")
        assert spec.covers("/u/jis")
        assert not spec.covers("/usr")

    def test_root_export_covers_everything(self):
        assert ExportSpec("/").covers("/anything/at/all")

    def test_longest_prefix_wins(self):
        cfg = NfsExportConfig(exports=(
            ExportSpec("/"),
            ExportSpec("/scratch", read_only=True),
        ))
        assert cfg.export_for("/scratch/pad.txt").read_only
        assert not cfg.export_for("/u/jis/notes.txt").read_only

    def test_uncovered_path_resolves_to_none(self):
        cfg = NfsExportConfig(exports=(ExportSpec("/u"),))
        assert cfg.export_for("/etc/passwd") is None


class TestDiff:
    def test_identical_configs_diff_empty(self):
        assert NfsExportConfig().diff(NfsExportConfig()) == []

    def test_diff_names_every_change(self):
        before = NfsExportConfig()
        after = NfsExportConfig(
            auth_mode=AuthMode.KERBEROS_RPC,
            unmapped_policy=UnmappedPolicy.UNFRIENDLY,
            exports=(
                ExportSpec("/", read_only=True),
                ExportSpec("/scratch", squash=SquashMode.ALL),
            ),
        )
        assert before.diff(after) == [
            "auth_mode: mapped -> kerberos-rpc",
            "unmapped_policy: friendly -> unfriendly",
            "export added: /scratch",
            "export changed: /",
        ]

    def test_diff_reports_removals(self):
        before = NfsExportConfig(exports=(ExportSpec("/"), ExportSpec("/u")))
        after = NfsExportConfig(exports=(ExportSpec("/"),))
        assert before.diff(after) == ["export removed: /u"]


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        cfg = NfsExportConfig(
            auth_mode=AuthMode.MAPPED,
            unmapped_policy=UnmappedPolicy.UNFRIENDLY,
            exports=(
                ExportSpec("/", squash=SquashMode.ROOT),
                ExportSpec(
                    "/scratch",
                    read_only=True,
                    squash=SquashMode.ALL,
                    allowed=(ClientRange("18.72.0.0/16"),),
                ),
            ),
        )
        restored = NfsExportConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        assert cfg.diff(restored) == []

    def test_snapshot_is_json_safe(self):
        import json

        doc = json.loads(json.dumps(NfsExportConfig().to_dict()))
        assert NfsExportConfig.from_dict(doc) == NfsExportConfig()

    def test_builders_change_exactly_one_axis(self):
        base = NfsExportConfig()
        assert base.with_mode(AuthMode.TRUSTED).auth_mode == AuthMode.TRUSTED
        assert base.with_mode(AuthMode.TRUSTED).exports == base.exports
        flipped = base.with_policy(UnmappedPolicy.UNFRIENDLY)
        assert flipped.unmapped_policy == UnmappedPolicy.UNFRIENDLY
        assert flipped.auth_mode == base.auth_mode
