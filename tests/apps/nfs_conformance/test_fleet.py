"""Fleet lifecycle: bootstrap, config apply/restore, and the churn
semantics — unmount flush, mode-change flush, crash map loss, ticket
expiry mid-I/O, and auto-remount recovery."""

import pytest

from repro.apps.nfs import (
    AuthMode,
    NfsClientError,
    NfsExportConfig,
    STALE_MAPPING,
    UnmappedPolicy,
)
from repro.realm import NfsFleet, NfsUserSpec

from tests.apps.nfs_conformance.conftest import (
    FleetWorld,
    JIS_CRED,
    JIS_UID,
    SECRET,
    TICKET_LIFE,
)

pytestmark = pytest.mark.nfs


def _mounted_client(world, index=0):
    ws = world.login("jis")
    client = world.fleet.client(ws, index, uid_on_client=JIS_UID)
    client.kerberos_mount(ws.client, world.fleet[index].mount_service)
    return ws, client


class TestBootstrap:
    def test_fleet_brings_up_n_isolated_servers(self):
        world = FleetWorld(n_servers=4)
        fleet = world.fleet
        assert len(fleet) == 4
        assert [site.name for site in fleet.servers] == [
            "nfs1", "nfs2", "nfs3", "nfs4",
        ]
        # Distinct hosts, distinct service identities, distinct maps.
        assert len({site.address for site in fleet.servers}) == 4
        assert len({site.nfs_service for site in fleet.servers}) == 4
        assert world.net.metrics.total("nfs.fleet_servers") == 4

    def test_users_provisioned_on_every_server(self):
        world = FleetWorld(n_servers=3)
        for site in world.fleet.servers:
            assert site.server.passwd.credential_for("jis") == JIS_CRED
            assert site.server.fs.exists("/u/jis")

    def test_add_user_after_bootstrap_reaches_all_servers(self):
        world = FleetWorld()
        world.fleet.add_user(NfsUserSpec("don", 1003, (101,)))
        for site in world.fleet.servers:
            cred = site.server.passwd.credential_for("don")
            assert cred is not None and cred.uid == 1003

    def test_srvtabs_are_per_machine(self):
        world = FleetWorld()
        a, b = world.fleet[0], world.fleet[1]
        # One fileserver's srvtab must not hold its sibling's keys.
        assert str(a.nfs_service) in a.srvtab.services()
        assert str(b.nfs_service) not in a.srvtab.services()

    def test_mounts_land_on_the_chosen_server_only(self):
        world = FleetWorld(n_servers=3)
        _ws, _client = _mounted_client(world, index=1)
        by_server = world.fleet.mappings_by_server()
        assert [len(v) for v in by_server.values()] == [0, 1, 0]
        assert world.fleet.total_mappings() == 1


class TestConfigSurface:
    def test_apply_reaches_every_server_with_change_list(self):
        world = FleetWorld(n_servers=3)
        changes = world.fleet.apply_config(
            world.fleet.config.with_policy(UnmappedPolicy.UNFRIENDLY)
        )
        assert set(changes) == {"nfs1", "nfs2", "nfs3"}
        for per_server in changes.values():
            assert per_server == ["unmapped_policy: friendly -> unfriendly"]
        for site in world.fleet.servers:
            assert site.server.unmapped_policy == UnmappedPolicy.UNFRIENDLY

    def test_mode_change_flushes_every_kernel_map(self):
        world = FleetWorld()
        _ws, _client = _mounted_client(world)
        assert world.fleet.total_mappings() == 1
        world.fleet.apply_config(
            world.fleet.config.with_mode(AuthMode.TRUSTED)
        )
        assert world.fleet.total_mappings() == 0

    def test_policy_change_keeps_kernel_maps(self):
        world = FleetWorld()
        _ws, _client = _mounted_client(world)
        world.fleet.apply_config(
            world.fleet.config.with_policy(UnmappedPolicy.UNFRIENDLY)
        )
        assert world.fleet.total_mappings() == 1

    def test_snapshot_restore_round_trip(self):
        world = FleetWorld()
        snapshot = world.fleet.snapshot_config()
        world.fleet.apply_config(
            world.fleet.config.with_mode(AuthMode.UNTRUSTED)
        )
        changes = world.fleet.restore_config(snapshot)
        assert all(
            per_server == ["auth_mode: untrusted -> mapped"]
            for per_server in changes.values()
        )
        assert world.fleet.config == NfsExportConfig()


class TestChurn:
    def test_unmount_flushes_the_mapping(self):
        world = FleetWorld()
        ws, client = _mounted_client(world)
        assert client.read("/u/jis/secret.txt") == SECRET
        assert client.unmount()
        assert world.fleet[0].server.credmap.entries() == {}
        with pytest.raises(NfsClientError):
            client.read("/u/jis/secret.txt")

    def test_expiry_mid_io_forces_remount(self):
        world = FleetWorld()
        ws, client = _mounted_client(world)
        assert client.read("/u/jis/secret.txt") == SECRET
        world.net.clock.advance(TICKET_LIFE + 60.0)
        with pytest.raises(NfsClientError, match=STALE_MAPPING):
            client.read("/u/jis/secret.txt")
        # The stale entry was purged by that lookup; a fresh kinit and
        # mount handshake restores service.
        assert world.fleet[0].server.credmap.entries() == {}
        ws.client.kinit("jis", "jis-pw")
        client.kerberos_mount(ws.client, world.fleet[0].mount_service)
        assert client.read("/u/jis/secret.txt") == SECRET

    def test_crash_restart_loses_kernel_map(self):
        world = FleetWorld()
        site = world.fleet[0]
        ws, client = _mounted_client(world)
        world.net.crash_host(site.name, downtime=5.0)
        world.net.clock.advance(6.0)
        assert site.server.credmap.entries() == {}
        assert world.net.metrics.total(
            "nfs.map_losses_total", server=site.name
        ) == 1
        # Friendly policy: the unmapped read now squashes to nobody,
        # which cannot traverse the 0700 home — no silent wrong answer.
        with pytest.raises(NfsClientError, match="permission denied"):
            client.read("/u/jis/secret.txt")

    def test_auto_remount_rides_out_crash_restart(self):
        world = FleetWorld()
        site = world.fleet[0]
        ws, client = _mounted_client(world)
        client.enable_auto_remount(ws.client, site.mount_service)
        world.net.crash_host(site.name, downtime=5.0)
        world.net.clock.advance(6.0)
        # The retried read re-runs the mountd handshake transparently.
        assert client.read("/u/jis/secret.txt") == SECRET
        assert site.server.credmap.entries() == {
            (str(ws.host.address), JIS_UID): JIS_CRED
        }

    def test_auto_remount_rides_out_expiry_with_fresh_tgt(self):
        world = FleetWorld()
        ws, client = _mounted_client(world)
        client.enable_auto_remount(ws.client, world.fleet[0].mount_service)
        world.net.clock.advance(TICKET_LIFE + 60.0)
        ws.client.kinit("jis", "jis-pw")
        assert client.read("/u/jis/secret.txt") == SECRET

    def test_stale_mapping_is_counted(self):
        world = FleetWorld()
        site = world.fleet[0]
        _ws, client = _mounted_client(world)
        world.net.clock.advance(TICKET_LIFE + 60.0)
        with pytest.raises(NfsClientError):
            client.read("/motd")
        assert world.net.metrics.total(
            "nfs.stale_mappings_total", server=site.name
        ) == 1
