"""The fleet conformance matrix: {AuthMode × UnmappedPolicy × config
transition × fault}, 216 generated cells.

Every cell builds a fresh two-server fleet, establishes a client under
the initial config (mount handshake in MAPPED mode, per-RPC Kerberos in
KERBEROS_RPC mode), applies one config **transition**, injects one
**fault**, then runs a fixed operation battery and asserts:

* every operation's outcome against an independent oracle (a small
  model of the export/credential contract, written below — not a copy
  of the server code paths);
* the **full kernel credential-map state** on both servers, before and
  after the battery (expiry is lazy: a stale entry survives until the
  first MAPPED lookup purges it);
* the **filesystem state** (writes that must land landed; writes that
  must be refused left no trace);
* that both servers run exactly the transitioned config;
* the audit log: every expected ``acl_denial`` was emitted on the
  serving host, trace-joined to its request.

The battery tries, in order: read the user's 0600 secret, read the
world-readable /motd, read /scratch/readme.txt, write the user's own
notes file, write the world-writable /scratch/pad.txt.
"""

import pytest

from repro.apps.nfs import (
    AuthMode,
    ClientRange,
    ExportSpec,
    NfsClientError,
    NfsCredential,
    NfsExportConfig,
    SquashMode,
    STALE_MAPPING,
    UnmappedPolicy,
)
from repro.core.errors import KerberosError

from tests.apps.nfs_conformance.conftest import (
    FleetWorld,
    JIS_CRED,
    JIS_UID,
    MOTD,
    NEW_NOTES,
    NOTES,
    ROOT_CRED,
    SCRATCH_README,
    SECRET,
    TICKET_LIFE,
)

pytestmark = pytest.mark.nfs

NOBODY = NfsCredential.nobody()

#: The operation battery: (name, path, is_write, payload).
BATTERY = (
    ("read_secret", "/u/jis/secret.txt", False, None),
    ("read_motd", "/motd", False, None),
    ("read_scratch", "/scratch/readme.txt", False, None),
    ("write_notes", "/u/jis/notes.txt", True, NEW_NOTES),
    ("write_pad", "/scratch/pad.txt", True, b"pad"),
)

#: What each fixture file must read back as, keyed by battery op.
READ_BACK = {
    "read_secret": SECRET,
    "read_motd": MOTD,
    "read_scratch": SCRATCH_README,
}

#: auth-mode cycle used by the ``mode_cycle`` transition.
NEXT_MODE = {
    AuthMode.TRUSTED: AuthMode.MAPPED,
    AuthMode.UNTRUSTED: AuthMode.TRUSTED,
    AuthMode.MAPPED: AuthMode.KERBEROS_RPC,
    AuthMode.KERBEROS_RPC: AuthMode.MAPPED,
}

#: A client range that matches no simulated host (hosts are 18.72.x.y).
NOWHERE = ClientRange("18.73.0.0/16")


def _transition_config(name: str, base: NfsExportConfig) -> NfsExportConfig:
    """The post-transition config document for each transition kind."""
    if name in ("noop", "restore"):
        return base
    if name == "policy_flip":
        flipped = (
            UnmappedPolicy.UNFRIENDLY
            if base.unmapped_policy == UnmappedPolicy.FRIENDLY
            else UnmappedPolicy.FRIENDLY
        )
        return base.with_policy(flipped)
    if name == "mode_cycle":
        return base.with_mode(NEXT_MODE[base.auth_mode])
    if name == "add_export":
        # Longest-prefix override: /scratch goes read-only while the
        # rest of the tree stays writable under "/".
        return base.with_exports(
            ExportSpec("/"), ExportSpec("/scratch", read_only=True)
        )
    if name == "drop_root_export":
        return base.with_exports(ExportSpec("/u"))
    if name == "restrict_clients":
        return base.with_exports(ExportSpec("/", allowed=(NOWHERE,)))
    if name == "read_only":
        return base.with_exports(ExportSpec("/", read_only=True))
    if name == "squash_all":
        return base.with_exports(ExportSpec("/", squash=SquashMode.ALL))
    raise ValueError(name)


TRANSITIONS = (
    "noop",
    "policy_flip",
    "mode_cycle",
    "add_export",
    "drop_root_export",
    "restrict_clients",
    "read_only",
    "squash_all",
    "restore",
)

FAULTS = ("none", "crash_restart", "expiry")


class Oracle:
    """An independent model of the conformance contract for one cell."""

    def __init__(self, cfg, mounted, mode_changed, fault, perrpc, client_addr):
        self.cfg = cfg
        self.client_addr = client_addr
        self.perrpc = perrpc
        self.tgt_expired = fault == "expiry"
        self.acl_denials = 0
        if not mounted or mode_changed or fault == "crash_restart":
            # Never mounted, flushed by the mode change, or lost with
            # the crashed kernel.
            self.mapping = "absent"
        elif fault == "expiry":
            self.mapping = "stale"
        else:
            self.mapping = "valid"

    def mapping_present(self) -> bool:
        """Is the ⟨CLIENT-IP, UID⟩ entry still in the kernel table?
        (A stale entry survives until a lookup purges it.)"""
        return self.mapping in ("valid", "stale")

    def expect(self, path: str, is_write: bool):
        """The oracle's verdict for one battery op: ("ok", cred) or
        ("err"/"krb", message-substring).  Mirrors the declared
        contract: export policy first, then credential resolution,
        then squashing, then classic Unix permission checks."""
        if self.perrpc and self.tgt_expired:
            # Per-RPC mode fetches a fresh service ticket for *every*
            # call, client-side, before the request is even sent — an
            # expired TGT fails there, ahead of any export policy.
            return "krb", "no valid ticket-granting ticket"
        spec = self.cfg.export_for(path)
        if spec is None:
            self.acl_denials += 1
            return "err", "is not exported"
        if not spec.admits(self.client_addr):
            self.acl_denials += 1
            return "err", "not permitted"
        if spec.read_only and is_write:
            self.acl_denials += 1
            return "err", "read-only export"

        mode = self.cfg.auth_mode
        if mode == AuthMode.UNTRUSTED:
            return "err", "NFS access error"
        if mode == AuthMode.KERBEROS_RPC:
            if not self.perrpc:
                return "err", "NFS access error"
            cred = JIS_CRED
        elif mode == AuthMode.TRUSTED:
            cred = JIS_CRED
        else:  # MAPPED
            if self.mapping == "stale":
                self.mapping = "absent"
                return "err", STALE_MAPPING
            if self.mapping == "absent":
                if self.cfg.unmapped_policy == UnmappedPolicy.UNFRIENDLY:
                    self.acl_denials += 1
                    return "err", "NFS access error"
                cred = NOBODY
            else:
                cred = JIS_CRED

        if spec.squash == SquashMode.ALL:
            cred = NOBODY
        return self._fs_verdict(path, cred)

    @staticmethod
    def _fs_verdict(path: str, cred: NfsCredential):
        """Unix permissions on the fixture tree for the effective cred."""
        if path.startswith("/u/jis/") and cred.uid != JIS_UID:
            # /u/jis is 0700: nobody cannot even traverse into it.
            return "err", "permission denied traversing"
        return "ok", cred


def _attempt(fn):
    try:
        return "ok", fn()
    except NfsClientError as exc:
        return "err", str(exc)
    except KerberosError as exc:
        return "krb", str(exc)


def _run_battery(client, oracle):
    """Run every battery op, checking each outcome against the oracle;
    returns the set of ops the oracle said must succeed."""
    succeeded = set()
    for op, path, is_write, payload in BATTERY:
        want_kind, want = oracle.expect(path, is_write)
        if is_write:
            kind, result = _attempt(lambda: client.write(path, payload))
        else:
            kind, result = _attempt(lambda: client.read(path))
        if want_kind == "ok":
            assert kind == "ok", (
                f"{op}: expected success, got {kind}: {result}"
            )
            if not is_write:
                assert result == READ_BACK[op], f"{op}: wrong bytes"
            succeeded.add(op)
        else:
            assert kind == want_kind and want in str(result), (
                f"{op}: expected {want_kind} {want!r}, got {kind}: {result}"
            )
    return succeeded


@pytest.mark.parametrize("fault", FAULTS)
@pytest.mark.parametrize("transition", TRANSITIONS)
@pytest.mark.parametrize(
    "policy", list(UnmappedPolicy), ids=lambda p: p.value
)
@pytest.mark.parametrize("mode", list(AuthMode), ids=lambda m: m.value)
def test_conformance_cell(mode, policy, transition, fault):
    base = NfsExportConfig(auth_mode=mode, unmapped_policy=policy)
    world = FleetWorld(config=base)
    fleet = world.fleet
    site = fleet[0]
    snapshot = fleet.snapshot_config()

    # -- establish the client under the initial config ---------------------
    ws = world.login("jis")
    client = fleet.client(ws, 0, uid_on_client=JIS_UID, gids=[100])
    mounted = False
    if mode == AuthMode.MAPPED:
        client.kerberos_mount(ws.client, site.mount_service)
        mounted = True
        assert len(site.server.credmap) == 1
    elif mode == AuthMode.KERBEROS_RPC:
        client.enable_per_rpc_kerberos(ws.client, site.nfs_service)

    # -- transition --------------------------------------------------------------
    cfg2 = _transition_config(transition, base)
    if transition == "restore":
        # Mutate away from the base config, then restore the snapshot.
        mutated = base.with_policy(
            UnmappedPolicy.UNFRIENDLY
            if policy == UnmappedPolicy.FRIENDLY
            else UnmappedPolicy.FRIENDLY
        ).with_exports(ExportSpec("/", read_only=True))
        fleet.apply_config(mutated)
        changes = fleet.restore_config(snapshot)
        assert all(per_server for per_server in changes.values()), (
            "restoring over a mutated config must report changes"
        )
    else:
        changes = fleet.apply_config(cfg2)
        if transition == "noop":
            assert all(not per_server for per_server in changes.values())
        else:
            assert all(per_server for per_server in changes.values()), (
                f"{transition} must report a change on every server"
            )
    for other in fleet.servers:
        assert other.server.config == cfg2, (
            f"{other.name} is not running the transitioned config"
        )

    # -- fault -----------------------------------------------------------------
    if fault == "crash_restart":
        world.net.crash_host(site.name, downtime=5.0)
        world.net.clock.advance(6.0)
    elif fault == "expiry":
        world.net.clock.advance(TICKET_LIFE + 60.0)

    # -- oracle + credmap state before the battery -----------------------------
    oracle = Oracle(
        cfg2,
        mounted=mounted,
        mode_changed=cfg2.auth_mode != mode,
        fault=fault,
        perrpc=mode == AuthMode.KERBEROS_RPC,
        client_addr=ws.host.address,
    )
    entry_key = (str(ws.host.address), JIS_UID)
    expected_entries = (
        {entry_key: JIS_CRED} if oracle.mapping_present() else {}
    )
    assert site.server.credmap.entries() == expected_entries
    assert fleet[1].server.credmap.entries() == {}

    # -- the battery, op by op against the oracle ----------------------------
    acl_before = len([
        e for e in world.net.audit.events("acl_denial")
        if e.host == site.name
    ])
    succeeded = _run_battery(client, oracle)

    # -- full post-state: credmap, fs, audit ---------------------------------
    expected_entries = (
        {entry_key: JIS_CRED} if oracle.mapping_present() else {}
    )
    assert site.server.credmap.entries() == expected_entries, (
        "kernel map in the wrong state after the battery"
    )
    assert fleet[1].server.credmap.entries() == {}

    fs = site.server.fs
    want_notes = NEW_NOTES if "write_notes" in succeeded else NOTES
    assert fs.read("/u/jis/notes.txt", ROOT_CRED) == want_notes
    want_pad = b"pad" if "write_pad" in succeeded else b""
    assert fs.read("/scratch/pad.txt", ROOT_CRED) == want_pad
    # The untouched sibling server never saw a write.
    assert fleet[1].server.fs.read("/u/jis/notes.txt", ROOT_CRED) == NOTES

    denials = [
        e for e in world.net.audit.events("acl_denial")
        if e.host == site.name
    ][acl_before:]
    assert len(denials) == oracle.acl_denials, (
        f"expected {oracle.acl_denials} acl_denial events, "
        f"got {len(denials)}: {[e.detail for e in denials]}"
    )
    for event in denials:
        assert event.trace_id, (
            f"acl_denial not trace-joined: {event.detail}"
        )
