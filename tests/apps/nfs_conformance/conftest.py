"""Shared world-builder for the Kerberized-NFS fleet conformance suite.

Every matrix cell gets a *fresh* two-server fleet (worlds are ~1 ms to
build on the sim clock) so no state leaks between cells.  Users carry a
deliberately short ticket life (:data:`TICKET_LIFE`) so the "credential
expiry mid-I/O" fault is one modest ``clock.advance`` away.
"""

import pytest

from repro.apps.nfs import NfsCredential
from repro.netsim import Network
from repro.realm import NfsFleet, NfsUserSpec, Realm

REALM = "ATHENA.MIT.EDU"

#: Short ticket life: the expiry fault advances past it.
TICKET_LIFE = 600.0

JIS_UID, BCN_UID = 1001, 1002

#: Fixture file contents — what reads must come back with.
SECRET = b"top secret"
MOTD = b"welcome to athena"
NOTES = b"old-notes"
NEW_NOTES = b"new-notes"
SCRATCH_README = b"scratch-readme"

ROOT_CRED = NfsCredential(uid=0)
JIS_CRED = NfsCredential(uid=JIS_UID, gids=(100,))


class FleetWorld:
    """Realm + N-server NFS fleet + provisioned users + fixture files."""

    def __init__(self, config=None, n_servers=2, seed=11):
        self.net = Network(seed=seed)
        self.realm = Realm(self.net, REALM)
        self.realm.add_user("jis", "jis-pw", max_life=TICKET_LIFE)
        self.realm.add_user("bcn", "bcn-pw", max_life=TICKET_LIFE)
        self.fleet = NfsFleet(
            self.realm,
            n_servers=n_servers,
            config=config,
            users=[
                NfsUserSpec("jis", JIS_UID, (100,)),
                NfsUserSpec("bcn", BCN_UID, (100,)),
            ],
        )
        for site in self.fleet.servers:
            self._install_fixture_files(site.server.fs)

    @staticmethod
    def _install_fixture_files(fs):
        fs.create("/motd", ROOT_CRED, mode=0o644)
        fs.write("/motd", MOTD, ROOT_CRED)
        fs.create("/u/jis/secret.txt", JIS_CRED, mode=0o600)
        fs.write("/u/jis/secret.txt", SECRET, JIS_CRED)
        fs.create("/u/jis/notes.txt", JIS_CRED, mode=0o644)
        fs.write("/u/jis/notes.txt", NOTES, JIS_CRED)
        fs.mkdir("/scratch", ROOT_CRED, mode=0o777)
        fs.create("/scratch/readme.txt", ROOT_CRED, mode=0o644)
        fs.write("/scratch/readme.txt", SCRATCH_README, ROOT_CRED)
        fs.create("/scratch/pad.txt", ROOT_CRED, mode=0o666)

    def login(self, username="jis", password="jis-pw"):
        ws = self.realm.workstation()
        ws.client.kinit(username, password)
        return ws


@pytest.fixture
def fleet_world():
    return FleetWorld()
