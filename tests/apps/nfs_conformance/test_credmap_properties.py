"""Property-based fuzzing of the kernel credential map's flush
semantics.

Hypothesis drives randomized interleavings of the new system call's
operations — add, delete, flush-by-server-UID, flush-by-address, clear,
and timed lookups — against a trivial dict model.  After every step the
kernel table must agree with the model exactly: same entries, same
expiries, and the same return value from the operation itself.
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.apps.nfs import CredentialMap, NfsCredential
from repro.netsim import IPAddress

pytestmark = pytest.mark.nfs

#: A deliberately tiny keyspace so interleavings collide constantly.
ADDRESSES = ["18.72.0.1", "18.72.0.2", "18.72.0.3"]
CLIENT_UIDS = [100, 200, 300]
SERVER_UIDS = [1001, 1002]

addresses = st.sampled_from(ADDRESSES)
client_uids = st.sampled_from(CLIENT_UIDS)
server_uids = st.sampled_from(SERVER_UIDS)
expiries = st.one_of(st.none(), st.floats(min_value=1.0, max_value=100.0))
clocks = st.floats(min_value=0.0, max_value=120.0)


class CredMapMachine(RuleBasedStateMachine):
    """The kernel table vs. a dict model, one operation at a time."""

    def __init__(self):
        super().__init__()
        self.kernel = CredentialMap()
        self.model = {}     # (addr-str, uid) -> NfsCredential
        self.expiry = {}    # (addr-str, uid) -> float

    @rule(addr=addresses, uid=client_uids, suid=server_uids, expires=expiries)
    def add(self, addr, uid, suid, expires):
        cred = NfsCredential(uid=suid, gids=(100,))
        self.kernel.add(addr, uid, cred, expires=expires)
        self.model[(addr, uid)] = cred
        if expires is None:
            self.expiry.pop((addr, uid), None)
        else:
            self.expiry[(addr, uid)] = expires

    @rule(addr=addresses, uid=client_uids)
    def delete(self, addr, uid):
        removed = self.kernel.delete(addr, uid)
        assert removed == ((addr, uid) in self.model)
        self.model.pop((addr, uid), None)
        self.expiry.pop((addr, uid), None)

    @rule(suid=server_uids)
    def flush_uid(self, suid):
        doomed = [k for k, v in self.model.items() if v.uid == suid]
        assert self.kernel.flush_uid(suid) == len(doomed)
        for key in doomed:
            del self.model[key]
            self.expiry.pop(key, None)

    @rule(addr=addresses)
    def flush_address(self, addr):
        doomed = [k for k in self.model if k[0] == addr]
        assert self.kernel.flush_address(addr) == len(doomed)
        for key in doomed:
            del self.model[key]
            self.expiry.pop(key, None)

    @rule()
    def clear(self):
        assert self.kernel.clear() == len(self.model)
        self.model.clear()
        self.expiry.clear()

    @rule(addr=addresses, uid=client_uids, now=clocks)
    def resolve(self, addr, uid, now):
        cred, status = self.kernel.resolve(addr, uid, now=now)
        key = (addr, uid)
        expires = self.expiry.get(key)
        if key not in self.model:
            assert (cred, status) == (None, "miss")
        elif expires is not None and now >= expires:
            # Lazy expiry: the lookup purges the dead entry.
            assert (cred, status) == (None, "expired")
            del self.model[key]
            del self.expiry[key]
        else:
            assert status == "hit" and cred == self.model[key]

    @rule(addr=addresses, uid=client_uids)
    def untimed_lookup_never_expires(self, addr, uid):
        # Without a clock, even a long-dead entry is still served — the
        # kernel cannot know.  (Callers on a host always pass now.)
        cred = self.kernel.lookup(addr, uid)
        assert cred == self.model.get((addr, uid))

    @invariant()
    def tables_agree(self):
        assert self.kernel.entries() == dict(self.model)
        assert len(self.kernel) == len(self.model)
        for (addr, uid), expires in self.expiry.items():
            assert self.kernel.expiry_of(addr, uid) == expires


TestCredMapFlushSemantics = CredMapMachine.TestCase
TestCredMapFlushSemantics.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)


@given(
    st.lists(
        st.tuples(addresses, client_uids, server_uids),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=50, deadline=None)
def test_flush_uid_is_exhaustive(entries):
    """flush_uid removes *every* entry mapping to the UID and nothing
    else, whatever insertion order produced the table."""
    cm = CredentialMap()
    final = {}
    for addr, uid, suid in entries:
        cm.add(addr, uid, NfsCredential(uid=suid))
        final[(addr, uid)] = suid
    target = entries[0][2]
    removed = cm.flush_uid(target)
    assert removed == sum(1 for suid in final.values() if suid == target)
    assert all(cred.uid != target for cred in cm.entries().values())
    kept = {k: v for k, v in final.items() if v != target}
    assert {k: c.uid for k, c in cm.entries().items()} == kept


@given(
    st.lists(
        st.tuples(addresses, client_uids, st.floats(1.0, 50.0)),
        min_size=1,
        max_size=12,
        unique_by=lambda t: (t[0], t[1]),
    ),
    clocks,
)
@settings(max_examples=50, deadline=None)
def test_expiry_partition(entries, now):
    """At any instant, timed lookups partition the table exactly into
    live entries (served) and dead ones (purged)."""
    cm = CredentialMap()
    for addr, uid, expires in entries:
        cm.add(addr, uid, NfsCredential(uid=999), expires=expires)
    live = {(a, u) for a, u, e in entries if now < e}
    for addr, uid, _ in entries:
        cred, status = cm.resolve(addr, uid, now=now)
        assert status == ("hit" if (addr, uid) in live else "expired")
    assert set(cm.entries()) == live
    assert cm.lookups == len(entries)


def test_addresses_normalise_across_types():
    """The same address as a string or IPAddress is one map key."""
    cm = CredentialMap()
    cm.add("18.72.0.1", 100, NfsCredential(uid=1))
    assert cm.lookup(IPAddress("18.72.0.1"), 100).uid == 1
    assert cm.delete(IPAddress("18.72.0.1"), 100)
    assert len(cm) == 0
