"""The Kerberizing framework: sessions, protection levels, mutual auth."""

import pytest

from repro.apps.kerberized import (
    ChannelError,
    KerberizedChannel,
    KerberizedServer,
    Protection,
)
from repro.principal import Principal

from tests.apps.conftest import REALM

PORT = 5000


class EchoServer(KerberizedServer):
    """Test service: replies with who-said-what."""

    def handle(self, session, data: bytes) -> bytes:
        return f"{session.client.name}:".encode() + data


@pytest.fixture
def echo(world):
    service, _ = world.realm.add_service("echo", "echohost")
    host = world.net.add_host("echohost")
    server = EchoServer(
        service, world.realm.srvtab_for(service), PORT
    ).attach(host)
    return service, host, server


@pytest.fixture
def logged_in_ws(world):
    ws = world.workstation()
    ws.client.kinit("jis", "jis-pw")
    return ws


class TestSessions:
    def test_authenticated_call(self, world, echo, logged_in_ws):
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT
        )
        assert channel.call(b"hello") == b"jis:hello"

    def test_unauthenticated_call_refused(self, world, echo, logged_in_ws):
        from repro.apps.kerberized import CallReply, CallRequest, _Kind

        service, host, _ = echo
        raw = logged_in_ws.host.rpc(
            host.address,
            PORT,
            bytes([int(_Kind.CALL)])
            + CallRequest(session_id=77, payload=b"x").to_bytes(),
        )
        assert not CallReply.from_bytes(raw).ok

    def test_no_tickets_no_session(self, world, echo):
        service, host, _ = echo
        ws = world.workstation()
        from repro.core.errors import KerberosError

        with pytest.raises(KerberosError):
            KerberizedChannel(ws.client, service, host.address, PORT)

    def test_session_closed(self, world, echo, logged_in_ws):
        service, host, server = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT
        )
        channel.close()
        assert server.sessions == {}
        with pytest.raises(ChannelError):
            channel.call(b"x")

    def test_session_bound_to_address(self, world, echo, logged_in_ws):
        """Level-NONE still checks the network address on every call."""
        from repro.apps.kerberized import CallReply, CallRequest, _Kind
        from repro.netsim import Datagram

        service, host, server = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT
        )
        # An attacker on another machine knows the session id (it is not
        # secret) and tries to use the session.
        attacker = world.net.add_host("attacker")
        raw = attacker.rpc(
            host.address,
            PORT,
            bytes([int(_Kind.CALL)])
            + CallRequest(
                session_id=channel.session_id, payload=b"evil"
            ).to_bytes(),
        )
        assert not CallReply.from_bytes(raw).ok

    def test_two_sessions_isolated(self, world, echo):
        service, host, _ = echo
        ws1, ws2 = world.workstation(), world.workstation()
        ws1.client.kinit("jis", "jis-pw")
        ws2.client.kinit("bcn", "bcn-pw")
        ch1 = KerberizedChannel(ws1.client, service, host.address, PORT)
        ch2 = KerberizedChannel(ws2.client, service, host.address, PORT)
        assert ch1.call(b"x") == b"jis:x"
        assert ch2.call(b"x") == b"bcn:x"


class TestProtectionLevels:
    @pytest.mark.parametrize(
        "protection", [Protection.NONE, Protection.SAFE, Protection.PRIVATE]
    )
    def test_round_trip_each_level(self, world, echo, logged_in_ws, protection):
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT,
            protection=protection,
        )
        assert channel.call(b"payload") == b"jis:payload"

    def test_private_hides_content(self, world, echo, logged_in_ws):
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT,
            protection=Protection.PRIVATE,
        )
        captured = []
        world.net.add_tap(lambda d: captured.append(d.payload))
        channel.call(b"TOP-SECRET-CONTENT")
        assert not any(b"TOP-SECRET-CONTENT" in p for p in captured)

    def test_none_level_content_visible(self, world, echo, logged_in_ws):
        """Level NONE trades privacy for speed — content is on the wire."""
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT,
            protection=Protection.NONE,
        )
        captured = []
        world.net.add_tap(lambda d: captured.append(d.payload))
        channel.call(b"VISIBLE-CONTENT")
        assert any(b"VISIBLE-CONTENT" in p for p in captured)

    def test_safe_level_detects_tampering(self, world, echo, logged_in_ws):
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT,
            protection=Protection.SAFE,
        )

        def corrupt(datagram):
            # Flip a bit inside the SAFE payload of CALL requests only.
            if datagram.dst_port == PORT and datagram.payload[0] == 2:
                payload = bytearray(datagram.payload)
                payload[12] ^= 0x01  # inside the safe message's data
                return type(datagram)(
                    src=datagram.src, src_port=datagram.src_port,
                    dst=datagram.dst, dst_port=datagram.dst_port,
                    payload=bytes(payload),
                )
            return datagram

        world.net.add_interceptor(corrupt)
        with pytest.raises(ChannelError, match="rejected"):
            channel.call(b"data")


class TestMutualAuth:
    def test_mutual_open_succeeds_with_real_server(
        self, world, echo, logged_in_ws
    ):
        service, host, _ = echo
        channel = KerberizedChannel(
            logged_in_ws.client, service, host.address, PORT, mutual=True
        )
        assert channel.call(b"x") == b"jis:x"

    def test_auth_failure_counted(self, world, echo):
        service, host, server = echo
        ws = world.workstation()
        ws.client.kinit("jis", "jis-pw")
        # Tamper every OPEN so authentication fails at the server.
        def corrupt(datagram):
            if datagram.dst_port == PORT:
                payload = bytearray(datagram.payload)
                if len(payload) > 50:
                    payload[30] ^= 0xFF
                return type(datagram)(
                    src=datagram.src, src_port=datagram.src_port,
                    dst=datagram.dst, dst_port=datagram.dst_port,
                    payload=bytes(payload),
                )
            return datagram

        world.net.add_interceptor(corrupt)
        with pytest.raises(Exception):
            KerberizedChannel(ws.client, service, host.address, PORT)
        world.net.remove_interceptor(corrupt)
        assert server.auth_failures >= 1
