"""The bounded work queue: batching, worker scaling, admission control."""

import pytest

from repro.netsim import SimClock
from repro.runtime import EventScheduler, WorkQueue, WorkQueueConfig


def make(config, **kwargs):
    clock = SimClock()
    sched = EventScheduler(clock, seed=0)
    batches = []
    queue = WorkQueue(sched, config, batches.append, **kwargs)
    return clock, sched, queue, batches


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkQueueConfig(workers=0)
        with pytest.raises(ValueError):
            WorkQueueConfig(batch_size=0)
        with pytest.raises(ValueError):
            WorkQueueConfig(queue_limit=0)
        with pytest.raises(ValueError):
            WorkQueueConfig(per_item_cost=-0.1)

    def test_batch_cost_amortizes_overhead(self):
        config = WorkQueueConfig(per_item_cost=0.002, batch_overhead=0.004)
        assert config.batch_cost(1) == pytest.approx(0.006)
        assert config.batch_cost(8) == pytest.approx(0.020)
        # Per-item cost falls with batch size — the amortization claim.
        assert config.batch_cost(8) / 8 < config.batch_cost(1)


class TestBatching:
    def test_items_batch_behind_a_busy_worker(self):
        """The first arrival goes straight into service; arrivals during
        that service time coalesce into batch_size groups."""
        _, sched, queue, batches = make(WorkQueueConfig(batch_size=3))
        for i in range(7):
            assert queue.submit(i)
        sched.run_until_idle()
        assert batches == [[0], [1, 2, 3], [4, 5, 6]]
        assert queue.completed == 7 and queue.batches == 3

    def test_batch_completes_after_its_service_time(self):
        clock, sched, queue, batches = make(
            WorkQueueConfig(per_item_cost=0.002, batch_overhead=0.004)
        )
        queue.submit("warm")  # occupies the worker until 0.006
        queue.submit("a")
        queue.submit("b")
        sched.run_until_idle()
        assert batches == [["warm"], ["a", "b"]]
        # 0.006 for the warm batch, then batch_cost(2) = 0.008.
        assert clock.now() == pytest.approx(0.006 + 0.008)

    def test_single_worker_serializes_batches(self):
        clock, sched, queue, _ = make(
            WorkQueueConfig(workers=1, batch_size=1,
                            per_item_cost=0.01, batch_overhead=0.0)
        )
        for i in range(4):
            queue.submit(i)
        sched.run_until_idle()
        assert clock.now() == pytest.approx(0.04)  # back to back

    def test_worker_pool_runs_batches_concurrently(self):
        clock, sched, queue, _ = make(
            WorkQueueConfig(workers=4, batch_size=1,
                            per_item_cost=0.01, batch_overhead=0.0)
        )
        for i in range(4):
            queue.submit(i)
        assert queue.busy_workers == 4
        sched.run_until_idle()
        assert clock.now() == pytest.approx(0.01)  # all four in parallel

    def test_work_queued_during_service_is_picked_up(self):
        clock, sched, queue, batches = make(
            WorkQueueConfig(workers=1, batch_size=8,
                            per_item_cost=0.01, batch_overhead=0.0)
        )
        queue.submit("first")
        sched.at(0.005, lambda: queue.submit("late"))  # mid-service
        sched.run_until_idle()
        assert batches == [["first"], ["late"]]
        assert queue.idle


class TestAdmissionControl:
    def test_overflow_is_shed(self):
        shed = []
        clock = SimClock()
        sched = EventScheduler(clock)
        config = WorkQueueConfig(workers=1, batch_size=1, queue_limit=2)
        queue = WorkQueue(sched, config, lambda b: None, shed=shed.append)
        # Worker takes the first item immediately; two more fill the
        # queue; the fourth is refused.
        assert queue.submit(1) and queue.submit(2) and queue.submit(3)
        assert queue.submit(4) is False
        assert shed == [4]
        assert queue.shed_count == 1

    def test_shedding_counts_in_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        clock = SimClock()
        sched = EventScheduler(clock)
        config = WorkQueueConfig(workers=1, batch_size=1, queue_limit=1)
        queue = WorkQueue(
            sched, config, lambda b: None,
            label="kdc.queue", metrics=registry, labels={"server": "kdc"},
        )
        queue.submit(1)
        queue.submit(2)
        queue.submit(3)  # shed
        assert registry.total("kdc.queue.shed_total", server="kdc") == 1
        assert registry.total("kdc.queue.submitted_total", server="kdc") == 2

    def test_drained_queue_admits_again(self):
        clock, sched, queue, batches = make(
            WorkQueueConfig(workers=1, batch_size=1, queue_limit=1)
        )
        queue.submit(1)
        queue.submit(2)
        assert queue.submit(3) is False
        sched.run_until_idle()
        assert queue.submit(3) is True
        sched.run_until_idle()
        assert [b[0] for b in batches] == [1, 2, 3]


class TestCrash:
    def test_drop_pending_empties_queue(self):
        clock, sched, queue, batches = make(
            WorkQueueConfig(workers=1, batch_size=1, queue_limit=10)
        )
        for i in range(5):
            queue.submit(i)
        dropped = queue.drop_pending()
        assert dropped == [1, 2, 3, 4]  # 0 is already in service
        sched.run_until_idle()
        assert batches == [[0]]  # the in-flight batch still completes
