"""The discrete-event scheduler: ordering, determinism, cancellation.

The runtime's contract is the one the chaos suite leans on: same seed ⇒
identical event order and identical final state; ties at one simulated
instant are shuffled by the seeded tie-break, not by insertion accident.
"""

import pytest

from repro.netsim import SimClock
from repro.runtime import EventScheduler, SchedulerError


def make(seed=0, start=0.0):
    clock = SimClock(start)
    return clock, EventScheduler(clock, seed=seed)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        clock, sched = make()
        log = []
        sched.at(3.0, lambda: log.append("c"))
        sched.at(1.0, lambda: log.append("a"))
        sched.at(2.0, lambda: log.append("b"))
        sched.run_until_idle()
        assert log == ["a", "b", "c"]
        assert clock.now() == 3.0

    def test_step_advances_clock_to_the_event(self):
        clock, sched = make()
        sched.at(5.0, lambda: None)
        assert sched.step() is True
        assert clock.now() == 5.0
        assert sched.step() is False  # idle

    def test_after_schedules_relative_to_now(self):
        clock, sched = make(start=100.0)
        fired = []
        sched.after(2.5, lambda: fired.append(clock.now()))
        sched.run_until_idle()
        assert fired == [102.5]

    def test_past_times_clamp_to_now(self):
        clock, sched = make(start=50.0)
        fired = []
        sched.at(1.0, lambda: fired.append(clock.now()))
        sched.run_until_idle()
        assert fired == [50.0]

    def test_negative_delay_rejected(self):
        _, sched = make()
        with pytest.raises(SchedulerError):
            sched.after(-1.0, lambda: None)

    def test_clock_callbacks_interleave_with_events(self):
        """A clock.call_at daemon due *between* two events fires between
        them — the two schedules share one timeline."""
        clock, sched = make()
        log = []
        sched.at(1.0, lambda: log.append("event@1"))
        clock.call_at(2.0, lambda: log.append("daemon@2"))
        sched.at(3.0, lambda: log.append("event@3"))
        sched.run_until_idle()
        assert log == ["event@1", "daemon@2", "event@3"]

    def test_horizon_stops_early(self):
        clock, sched = make()
        log = []
        sched.at(1.0, lambda: log.append(1))
        sched.at(10.0, lambda: log.append(10))
        ran = sched.run_until_idle(horizon=5.0)
        assert ran == 1 and log == [1]
        assert sched.pending() == 1

    def test_run_for_advances_to_window_end(self):
        clock, sched = make()
        sched.at(1.0, lambda: None)
        sched.run_for(4.0)
        assert clock.now() == 4.0  # past the event, to the horizon
        sched.run_for(2.0)  # empty window still advances
        assert clock.now() == 6.0

    def test_event_may_schedule_more_events(self):
        clock, sched = make()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sched.after(1.0, lambda: chain(n + 1))

        sched.at(0.0, lambda: chain(0))
        sched.run_until_idle()
        assert log == [0, 1, 2, 3]
        assert clock.now() == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        clock, sched = make()
        log = []
        event = sched.at(1.0, lambda: log.append("no"))
        sched.at(2.0, lambda: log.append("yes"))
        sched.cancel(event)
        sched.run_until_idle()
        assert log == ["yes"]

    def test_cancelled_head_does_not_advance_clock(self):
        clock, sched = make()
        event = sched.at(10.0, lambda: None)
        sched.cancel(event)
        assert sched.next_time() is None
        assert clock.now() == 0.0

    def test_pending_excludes_cancelled(self):
        _, sched = make()
        event = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        assert sched.pending() == 2
        sched.cancel(event)
        assert sched.pending() == 1


class TestDeterminism:
    @staticmethod
    def _run(seed):
        """Many events colliding at the same instants; return the exact
        firing order plus the final snapshot (clock, executed count)."""
        clock, sched = make(seed=seed)
        order = []
        for i in range(40):
            when = float(i % 4)  # ten-way ties at t=0..3
            sched.at(when, lambda i=i: order.append(i))
        sched.run_until_idle()
        return order, clock.now(), sched.executed

    def test_same_seed_identical_order_and_snapshot(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_shuffles_ties(self):
        order_a, *_ = self._run(11)
        order_b, *_ = self._run(12)
        assert sorted(order_a) == sorted(order_b)  # same work...
        assert order_a != order_b  # ...different tie-break order

    def test_ties_are_not_insertion_ordered(self):
        """The tie-break is a seeded shuffle, not FIFO — concurrent
        arrivals at a busy server must not serialize by call order."""
        _, sched = make(seed=3)
        order = []
        for i in range(20):
            sched.at(1.0, lambda i=i: order.append(i))
        sched.run_until_idle()
        assert order != sorted(order)
