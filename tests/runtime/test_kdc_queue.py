"""The KDC's concurrent service loop: queueing, shedding, crash, batching.

Section 9's busy hour makes the KDC a queueing system.  These tests pin
the admission-control contract (a full queue answers *now* with a typed
``KDC_OVERLOADED`` the failover path rides out), the crash semantics
(queued requests die silently; senders time out and fail over), and the
batch amortization claim (shared DB rows are fetched once per batch).
"""

import pytest

from repro.core.errors import ErrorCode, KdcOverloaded
from repro.core.messages import (
    AsRequest,
    MessageType,
    decode_message,
    encode_message,
)
from repro.netsim import Datagram, DeferredReply, Network, Unreachable
from repro.netsim.ports import KERBEROS_PORT
from repro.principal import Principal, tgs_principal
from repro.realm import Realm
from repro.runtime import WorkQueueConfig
from repro.workload import AthenaWorkload

REALM = "ATHENA.MIT.EDU"

#: One worker, one queue slot: the third concurrent request is shed.
TINY = WorkQueueConfig(workers=1, batch_size=1, queue_limit=1)


def build_realm(net=None, n_slaves=0, queue=None, workers=None):
    net = net or Network(seed=5)
    realm = Realm(
        net, REALM, n_slaves=n_slaves, kdc_queue=queue, kdc_workers=workers
    )
    realm.add_user("jis", "jis-pw")
    if n_slaves:
        realm.propagate()
    return net, realm


def as_req_wire(realm, username="jis", now=0.0):
    request = AsRequest(
        client=Principal(username, "", realm.name),
        service=tgs_principal(realm.name),
        requested_life=3600.0,
        timestamp=now,
    )
    return encode_message(MessageType.AS_REQ, request)


def fill_queue(realm, n):
    """Occupy the KDC's worker and queue slots with valid AS requests."""
    wire = as_req_wire(realm, now=realm.net.clock.now())
    src = realm.net.add_host("filler")
    for _ in range(n):
        datagram = Datagram(
            src=src.address, src_port=0,
            dst=realm.master_host.address, dst_port=KERBEROS_PORT,
            payload=wire,
        )
        realm.kdc.workqueue.submit((datagram, DeferredReply()))


class TestQueuedService:
    def test_login_completes_through_the_queue(self):
        net, realm = build_realm(workers=2)
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None
        # Service took simulated time: one batch, non-zero cost.
        assert realm.kdc.workqueue.batches >= 1
        assert net.clock.now() > 0.0

    def test_inline_kdc_has_no_queue(self):
        net, realm = build_realm()
        assert realm.kdc.workqueue is None
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None


class TestShedding:
    def test_single_kdc_overload_exhausts_retries(self):
        """With nowhere to fail over to, a saturated KDC sheds every
        retransmission at the same instant and the client gives up."""
        net, realm = build_realm(queue=TINY)
        fill_queue(realm, 2)  # worker busy + queue full
        ws = realm.workstation()
        with pytest.raises(Unreachable):
            ws.client.kinit("jis", "jis-pw")
        assert net.metrics.total(
            "kdc.outcomes_total", code="KDC_OVERLOADED"
        ) >= 3  # every retransmission was shed
        assert net.metrics.total("kdc.queue.shed_total") >= 3
        assert net.metrics.total("retry.exhausted_total") == 1

    def test_shed_reply_decodes_to_typed_overload_error(self):
        net, realm = build_realm(queue=TINY)
        fill_queue(realm, 2)
        ws = realm.workstation()
        raw = ws.host.rpc(
            realm.master_host.address, KERBEROS_PORT, as_req_wire(realm)
        )
        mtype, message = decode_message(raw)
        assert mtype == MessageType.ERROR
        assert message.code == ErrorCode.KDC_OVERLOADED
        # The error surface maps the code to the typed exception, and
        # the type is an Unreachable — that is what failover rides.
        with pytest.raises(KdcOverloaded):
            message.raise_()
        assert issubclass(KdcOverloaded, Unreachable)

    def test_failover_rides_out_the_overload(self):
        """Figure 10 under load: the master sheds, the client fails over
        to the slave, the login succeeds anyway."""
        net, realm = build_realm(n_slaves=1, queue=TINY)
        fill_queue(realm, 2)  # only the master is saturated
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None
        assert net.metrics.total("kdc.failovers_total") == 1
        assert net.metrics.total(
            "kdc.outcomes_total", code="KDC_OVERLOADED"
        ) >= 1


class TestCrash:
    def test_crash_drops_queued_requests_silently(self):
        net, realm = build_realm(queue=TINY)
        ws = realm.workstation()
        wire = as_req_wire(realm)
        first = ws.host.rpc_async(
            realm.master_host.address, KERBEROS_PORT, wire
        )
        second = ws.host.rpc_async(
            realm.master_host.address, KERBEROS_PORT, wire
        )
        net.runtime.run_until_idle(horizon=net.clock.now())  # arrivals only
        assert realm.kdc.workqueue.busy_workers == 1
        assert realm.kdc.workqueue.depth == 1
        net.set_down(realm.master_host.name)
        net.runtime.run_until_idle()
        # Both senders hear nothing: the queued one died at crash time,
        # the in-service one's completion found the host down.
        assert isinstance(first.error, Unreachable)
        assert isinstance(second.error, Unreachable)

    def test_client_fails_over_past_a_crashed_queued_master(self):
        net, realm = build_realm(n_slaves=1, workers=2)
        net.crash_host(realm.master_host.name)
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None
        assert net.metrics.total("kdc.failovers_total") == 1

    def test_restart_serves_again(self):
        net, realm = build_realm(queue=TINY)
        net.crash_host(realm.master_host.name, downtime=10.0)
        net.clock.advance(11.0)
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None
        assert realm.kdc.workqueue.idle


class TestBatchAmortization:
    def test_shared_rows_fetched_once_per_batch(self):
        """Every AS request in a batch wants the TGS principal's row;
        the batch memo fetches it once and counts the savings."""
        net = Network(seed=9)
        realm = Realm(
            net, REALM,
            kdc_queue=WorkQueueConfig(workers=1, batch_size=8,
                                      queue_limit=64),
        )
        workload = AthenaWorkload(realm, n_users=12, n_services=0, seed=1)
        stations = workload.workstations(12, spread_kdcs=False)
        result = workload.login_burst(stations, window=0.001)
        assert result.completed == 12
        assert net.metrics.total("kdc.batch_lookups_saved_total") > 0

    def test_burst_digest_is_seed_stable(self):
        def run():
            net = Network(seed=31)
            realm = Realm(net, REALM, kdc_workers=2)
            workload = AthenaWorkload(realm, n_users=8, n_services=0, seed=2)
            stations = workload.workstations(8, spread_kdcs=False)
            return workload.login_burst(stations, window=0.01)

        a, b = run(), run()
        assert a.digest == b.digest
        assert a.completed == b.completed == 8
