"""Scenario engine mechanics: registry, SLO evaluation, percentiles,
outcome accounting, and the burst-result failure split they consume."""

import pytest

from repro.netsim import Network
from repro.realm import Realm
from repro.scenarios.engine import (
    CampaignResult,
    SloSpec,
    StationRecord,
    percentile,
)
import repro.scenarios as scenarios
from repro.workload import AthenaWorkload

REALM = "ATHENA.MIT.EDU"


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 0.99) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == percentile(
            [1.0, 2.0, 3.0], 0.5
        )


class TestSlo:
    def test_min_kind(self):
        spec = SloSpec("success_rate", "min", 0.99)
        assert spec.check(1.0).passed
        assert spec.check(0.99).passed
        assert not spec.check(0.98).passed

    def test_max_kind(self):
        spec = SloSpec("p95", "max", 5.0)
        assert spec.check(5.0).passed
        assert not spec.check(5.01).passed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloSpec("x", "between", 1.0).check(0.5)


class TestAccounting:
    def records(self):
        return [
            StationRecord("ws1", "u1", "ok", 1.0),
            StationRecord("ws2", "u2", "ok", 3.0),
            StationRecord("ws3", "u3", "unavailable", 30.0),
        ]

    def test_outcomes_and_percentiles(self):
        result = CampaignResult("t", 1, {})
        result.account(self.records())
        assert result.outcomes == {"ok": 2, "unavailable": 1}
        assert result.success_rate() == pytest.approx(2 / 3)
        # Percentiles are over successful operations only.
        assert result.latency_p95 == 3.0

    def test_digest_is_order_sensitive_and_stable(self):
        a = CampaignResult("t", 1, {})
        b = CampaignResult("t", 1, {})
        c = CampaignResult("t", 1, {})
        a.account(self.records())
        b.account(self.records())
        c.account(list(reversed(self.records())))
        assert a.digest == b.digest
        assert c.digest != a.digest

    def test_evaluate_missing_observation_counts_as_zero(self):
        result = CampaignResult("t", 1, {})
        result.evaluate([SloSpec("absent", "min", 1.0)], {})
        assert not result.passed
        assert result.checks[0].observed == 0.0


class TestRegistry:
    def test_library_is_registered(self):
        assert set(scenarios.names()) >= {
            "morning_login_storm",
            "slave_outage_peak",
            "master_assassination",
            "rolling_kdc_upgrade",
            "clock_skew_epidemic",
            "lossy_wan_degradation",
        }

    def test_unknown_campaign_is_a_clear_error(self):
        with pytest.raises(KeyError, match="no campaign"):
            scenarios.run("nonexistent_drill")

    def test_unknown_override_is_rejected(self):
        with pytest.raises(KeyError, match="no parameter"):
            scenarios.run("morning_login_storm", n_typo=3)

    def test_run_stamps_name_seed_params(self):
        result = scenarios.run(
            "morning_login_storm", seed=5, n_stations=4, n_users=4,
            window=2.0,
        )
        assert result.name == "morning_login_storm"
        assert result.seed == 5
        assert result.params["n_stations"] == 4
        summary = result.summary()
        assert summary["passed"] == result.passed
        assert summary["digest"] == result.digest


class TestBurstFailureSplit:
    """BurstResult.failed is now derived from typed loss buckets."""

    def build(self):
        net = Network(seed=4)
        realm = Realm(net, REALM)
        workload = AthenaWorkload(realm, n_users=6, n_services=1, seed=4)
        return net, realm, workload

    def test_crashed_kdc_counts_as_host_down(self):
        net, realm, workload = self.build()
        stations = workload.workstations(6)
        net.set_down(realm.master_host.name)
        result = workload.login_burst(stations, window=0.01)
        assert result.host_down == 6
        assert result.timed_out == 0
        assert result.failed == 6                # derived
        assert result.completed == 0

    def test_healthy_kdc_has_no_losses(self):
        net, realm, workload = self.build()
        stations = workload.workstations(6)
        result = workload.login_burst(stations, window=0.01)
        assert result.completed == 6
        assert result.failed == 0
        assert result.host_down == 0 and result.timed_out == 0

    def test_lost_requests_count_as_timed_out(self):
        from repro.netsim import Loss, Match
        from repro.netsim.ports import KERBEROS_PORT

        net, realm, workload = self.build()
        stations = workload.workstations(6)
        net.faults.add(Loss(1.0, Match.build(port=KERBEROS_PORT)))
        result = workload.login_burst(stations, window=0.01)
        assert result.timed_out == 6
        assert result.host_down == 0
        assert result.failed == 6
