"""Campaign runs: one fast smoke drill in tier-1, the full sweep and
the CLI behind ``-m scenario``."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.scenarios as scenarios

REPO = Path(__file__).resolve().parents[2]


class TestSmoke:
    """Small-parameter drills that keep the self-healing loop honest in
    every tier-1 run."""

    def test_morning_login_storm_smoke(self):
        result = scenarios.run(
            "morning_login_storm", seed=2026,
            n_stations=8, n_users=8, window=4.0,
        )
        assert result.passed, [c.as_dict() for c in result.checks]
        assert result.outcomes == {"ok": 8}
        assert len(result.digest) == 64

    def test_master_assassination_smoke(self):
        """The acceptance drill, at smoke scale: the supervisor — not a
        test hand — promotes, and the audit event carries a trace."""
        result = scenarios.run(
            "master_assassination", seed=2026,
            n_stations=6, n_users=6, window=120.0,
            kill_at=20.0, downtime=90.0, run_for=220.0,
        )
        assert result.passed, [c.as_dict() for c in result.checks]
        assert result.notes["promotions"] == 1
        assert result.notes["new_master"] != result.notes["old_master"]

    def test_request_plane_saturation_smoke(self):
        """The ISSUE 8 overload drill at smoke scale: the storm really
        exceeds capacity, sheds are typed, and nobody crashes."""
        result = scenarios.run(
            "request_plane_saturation", seed=2026,
            n_stations=24, n_users=12, queue_limit=4,
            overload_factor=3.0,
        )
        assert result.passed, [c.as_dict() for c in result.checks]
        assert result.notes["shed_total"] >= 1
        assert result.notes["arrival_rate_req_s"] > (
            result.notes["capacity_req_s"]
        )

    @pytest.mark.shard
    def test_shard_rebalance_under_load_smoke(self):
        """The sharding acceptance drill at smoke scale: a live
        move_range mid-storm loses zero logins, records really stream,
        and stale stations are repaired by referrals."""
        result = scenarios.run(
            "shard_rebalance_under_load", seed=2026,
            n_stations=10, n_users=10, window=6.0, move_at=2.0,
        )
        assert result.passed, [c.as_dict() for c in result.checks]
        assert result.outcomes == {"ok": 10}
        assert result.notes["entries_moved"] >= 1
        assert result.notes["ring_epoch"] == 2
        assert result.notes["referral_follows"] >= 1

    @pytest.mark.nfs
    def test_nfs_fleet_mount_storm_smoke(self):
        """The fleet PR's drill at smoke scale: every station mounts,
        does its I/O, probes for a leak (refused), and unmounts clean."""
        result = scenarios.run(
            "nfs_fleet_mount_storm", seed=2026,
            n_servers=2, n_stations=8, n_users=4, window=8.0,
        )
        assert result.passed, [c.as_dict() for c in result.checks]
        assert result.outcomes == {"ok": 8}
        assert result.notes["leaks"] == []
        assert result.notes["residual_mappings"] == 0
        assert result.notes["mounts_mapped"] == 8

    def test_same_seed_summary_is_identical(self):
        kwargs = dict(n_stations=6, n_users=6, window=3.0)
        a = scenarios.run("slave_outage_peak", seed=31, **kwargs)
        b = scenarios.run("slave_outage_peak", seed=31, **kwargs)
        assert json.dumps(a.summary(), sort_keys=True) == json.dumps(
            b.summary(), sort_keys=True
        )

    def test_different_seed_changes_the_digest(self):
        kwargs = dict(n_stations=6, n_users=6, window=3.0)
        a = scenarios.run("morning_login_storm", seed=1, **kwargs)
        b = scenarios.run("morning_login_storm", seed=2, **kwargs)
        assert a.digest != b.digest


@pytest.mark.scenario
class TestFullSweep:
    """Every registered campaign at its default (fleet) scale."""

    @pytest.mark.parametrize("name", sorted(scenarios.names()))
    def test_campaign_meets_its_slos(self, name):
        result = scenarios.run(name, seed=1988)
        assert result.passed, (
            f"{name} missed SLOs: "
            f"{[c.as_dict() for c in result.checks if not c.passed]}"
        )
        assert sum(result.outcomes.values()) >= 1
        assert result.makespan > 0.0


@pytest.mark.scenario
class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.scenarios", *args],
            capture_output=True, text=True, timeout=600,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src")},
        )

    def test_list(self):
        proc = self.run_cli("--list")
        assert proc.returncode == 0
        for name in scenarios.names():
            assert name in proc.stdout

    def test_single_campaign_with_overrides_and_json(self, tmp_path):
        out = tmp_path / "out.json"
        proc = self.run_cli(
            "morning_login_storm", "--seed", "7", "--json", str(out),
            "-p", "n_stations=6", "-p", "n_users=6", "-p", "window=3.0",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "[PASS] morning_login_storm" in proc.stdout
        data = json.loads(out.read_text())
        assert data["seed"] == 7
        summary = data["campaigns"]["morning_login_storm"]
        assert summary["passed"] is True
        assert summary["params"]["n_stations"] == 6

    def test_failing_slo_exits_nonzero(self):
        # An impossible latency budget: sub-microsecond p95.
        proc = self.run_cli(
            "lossy_wan_degradation", "-p", "n_stations=4", "-p",
            "n_users=4", "-p", "window=2.0", "-p", "loss_rate=0.9",
        )
        assert proc.returncode == 1
        assert "[FAIL]" in proc.stdout
