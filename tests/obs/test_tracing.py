"""Span tracer: nesting, request-ID threading, error capture."""

import pytest

from repro.netsim import SimClock
from repro.obs import Tracer, TracingError, format_span_tree


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpanLifecycle:
    def test_root_span_gets_fresh_request_id(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.request_id == "req-000001"
        assert b.request_id == "req-000002"

    def test_children_inherit_request_id(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.request_id == root.request_id
        assert grandchild.request_id == root.request_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_durations_follow_sim_clock(self, clock, tracer):
        span = tracer.start_span("op")
        clock.advance(1.5)
        tracer.end_span(span)
        assert span.duration == pytest.approx(1.5)

    def test_open_span_duration_zero(self, tracer):
        span = tracer.start_span("op")
        assert not span.finished
        assert span.duration == 0.0
        tracer.end_span(span)

    def test_end_must_be_innermost(self, tracer):
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        with pytest.raises(TracingError):
            tracer.end_span(outer)
        tracer.end_span(inner)
        tracer.end_span(outer)

    def test_exception_recorded_and_span_closed(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("op") as span:
                raise ValueError("boom")
        assert span.finished
        assert span.attrs["error"] == "ValueError: boom"
        assert tracer.current is None

    def test_attrs_pass_through(self, tracer):
        with tracer.span("op", client="jis", port=750) as span:
            pass
        assert span.attrs == {"client": "jis", "port": 750}


class TestQueries:
    def test_current_request_id_tracks_stack(self, tracer):
        assert tracer.current_request_id is None
        with tracer.span("a") as a:
            assert tracer.current_request_id == a.request_id
            with tracer.span("b"):
                assert tracer.current_request_id == a.request_id
        assert tracer.current_request_id is None

    def test_by_request_and_request_ids(self, tracer):
        with tracer.span("first"):
            with tracer.span("inner"):
                pass
        with tracer.span("second"):
            pass
        rids = tracer.request_ids()
        assert len(rids) == 2
        assert [s.name for s in tracer.by_request(rids[0])] == [
            "first", "inner",
        ]

    def test_roots_and_children(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("c1"):
                pass
            with tracer.span("c2"):
                pass
        assert tracer.roots() == [root]
        assert [s.name for s in tracer.children(root)] == ["c1", "c2"]

    def test_clear_keeps_open_spans(self, tracer):
        with tracer.span("done"):
            pass
        live = tracer.start_span("live")
        tracer.clear()
        assert tracer.spans == [live]
        tracer.end_span(live)  # the stack stayed balanced


class TestFormatting:
    def test_span_tree_indents_children(self, clock, tracer):
        with tracer.span("root"):
            clock.advance(0.25)
            with tracer.span("child", step=1):
                clock.advance(0.5)
        tree = format_span_tree(tracer)
        lines = tree.splitlines()
        assert "root" in lines[0]
        assert lines[1].startswith("req-000001    child")
        assert "step=1" in lines[1]

    def test_span_tree_filters_by_request(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        tree = format_span_tree(tracer, request_id="req-000002")
        assert "second" in tree and "first" not in tree
