"""Trace propagation: out-of-band context on datagrams, transit legs,
queue-wait spans, frozen wire bytes, and deterministic export."""

import pytest

from repro.netsim import Datagram, IPAddress, Network, Unreachable
from repro.netsim.faults import Loss
from repro.obs import TraceContext, render_chrome_trace
from repro.obs.tracing import Tracer
from repro.realm import Realm
from repro.runtime import WorkQueueConfig

pytestmark = pytest.mark.obs

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def net():
    return Network(latency=0.001)


@pytest.fixture
def pair(net):
    """A client host and a server whose handler joins the propagated
    trace — the minimal two-host propagation scenario."""
    server = net.add_host("server")
    client = net.add_host("client")

    def handler(datagram):
        with net.tracer.span_under(datagram.trace, "srv.handle", host="server"):
            return b"ok:" + datagram.payload

    server.bind(7, handler)
    return client, server


class TestContextPropagation:
    def test_rpc_stamps_the_open_span_context(self, net, pair):
        client, server = pair
        with net.tracer.span("op", host="client") as root:
            client.rpc(server.address, 7, b"x")
        (handled,) = [s for s in net.tracer.spans if s.name == "srv.handle"]
        assert handled.request_id == root.request_id

    def test_wire_bytes_unchanged_by_tracing(self, net, pair):
        """The context is sim-side metadata: two datagrams with the same
        wire fields are equal (and hash alike) whatever they carry."""
        a = Datagram(IPAddress("18.0.0.1"), 1, IPAddress("18.0.0.2"), 7, b"x")
        b = Datagram(
            IPAddress("18.0.0.1"), 1, IPAddress("18.0.0.2"), 7, b"x",
            trace=TraceContext("req-000001", 5),
        )
        assert a == b
        assert hash(a) == hash(b)
        assert b.reply_with(b"y").trace == b.trace

    def test_untraced_send_carries_no_context(self, net, pair):
        client, server = pair
        client.rpc(server.address, 7, b"x")  # no span open
        (handled,) = [s for s in net.tracer.spans if s.name == "srv.handle"]
        # The handler still spans — under a fresh trace of its own, not
        # glued onto anything.
        assert handled.parent_id is None

    def test_untraced_arrival_does_not_join_the_pumping_caller(self, net):
        """A server that *sends while handling* an untraced request must
        not leak its own open span into an unrelated trace tree."""
        server = net.add_host("server")
        client = net.add_host("client")

        def handler(datagram):
            with net.tracer.span_under(datagram.trace, "srv.handle"):
                return b"ok"

        server.bind(7, handler)
        with net.tracer.span("client.unrelated") as unrelated:
            client.send(server.address, 7, b"fire-and-forget")
        net.runtime.run_until_idle()
        (handled,) = [s for s in net.tracer.spans if s.name == "srv.handle"]
        # send() under a span *does* propagate; handled joins that trace.
        assert handled.request_id == unrelated.request_id

    def test_disabled_tracer_records_nothing_and_propagates_nothing(
        self, net, pair
    ):
        client, server = pair
        net.tracer.enabled = False
        with net.tracer.span("op") as span:
            client.rpc(server.address, 7, b"x")
        assert span.span_id == 0  # detached
        assert net.tracer.spans == []
        assert net.tracer.propagation_context() is None


class TestTransitSpans:
    def test_request_and_reply_legs_bracket_the_handler(self, net, pair):
        client, server = pair
        with net.tracer.span("op"):
            client.rpc(server.address, 7, b"x")
        legs = [s for s in net.tracer.spans if s.name == "net.transit"]
        assert [s.attrs["leg"] for s in legs] == ["request", "reply"]
        for leg in legs:
            assert leg.finished
            assert leg.duration == pytest.approx(0.001)

    def test_dropped_datagram_closes_transit_with_reason(self, net, pair):
        client, server = pair
        net.faults.add(Loss(1.0))
        with pytest.raises(Unreachable):
            with net.tracer.span("op"):
                client.rpc(server.address, 7, b"x")
        dropped = [
            s for s in net.tracer.spans
            if s.name == "net.transit" and "dropped" in s.attrs
        ]
        assert dropped and dropped[0].attrs["dropped"] == "loss"


class TestQueueWaitSpans:
    @pytest.fixture
    def queued_world(self):
        net = Network(latency=0.001, seed=7)
        realm = Realm(
            net, REALM, kdc_queue=WorkQueueConfig(workers=1, batch_size=4)
        )
        realm.add_user("jis", "jis-pw")
        return net, realm

    def test_queue_wait_span_and_breakdown_attrs(self, queued_world):
        net, realm = queued_world
        ws = realm.workstation()
        with net.tracer.span("login") as root:
            ws.client.kinit("jis", "jis-pw")
        (wait,) = [s for s in net.tracer.spans if s.name == "kdc.queue.wait"]
        (kdc,) = [s for s in net.tracer.spans if s.name == "kdc.as"]
        assert wait.request_id == kdc.request_id == root.request_id
        assert wait.end <= kdc.start
        assert kdc.attrs["batch_size"] == 1
        assert kdc.attrs["queue_wait"] == pytest.approx(
            wait.end - wait.start
        )
        assert kdc.attrs["service_time"] > 0
        assert kdc.attrs["crypto_ops"] > 0
        hist = net.metrics.get(
            "kdc.queue.wait_seconds", {"server": realm.master_host.name}
        )
        assert hist.count == 1


class TestBounds:
    def test_span_overflow_drops_and_counts(self, net):
        tracer = net.tracer
        tracer.max_spans = 3
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert len(tracer.spans) == 3
        assert net.metrics.total("trace.spans_dropped_total") == 2


class TestDeterministicExport:
    def test_same_seed_byte_identical_chrome_trace(self):
        def run():
            net = Network(latency=0.001, seed=11)
            realm = Realm(net, REALM)
            realm.add_user("jis", "jis-pw")
            service, _ = realm.add_service("rlogin", "priam")
            ws = realm.workstation()
            with net.tracer.span("user.session", user="jis"):
                ws.client.kinit("jis", "jis-pw")
                ws.client.mk_req(service)
            return render_chrome_trace(net.tracer)

        first, second = run(), run()
        assert first == second
        assert '"ph": "X"' in first
