"""Service-API lint: no raw port binding or scheduler bypass in src/.

The unified :class:`repro.core.service.Service` lifecycle is only a
contract if daemons actually use it.  Two AST walks keep it honest:

* **no raw binds** — ``host.bind(...)`` / ``host.rebind(...)`` outside
  :mod:`repro.netsim` (which implements them) and
  :mod:`repro.core.service` (which is the one sanctioned caller).
  ``repro/threat/`` is exempt: an attacker squatting on a port does not
  use polite interfaces, and forcing the masquerade tooling through
  Service would miss the point of the threat model;
* **no inline handler invocation** — looking a handler up via
  ``handler_for(...)`` and calling it directly would deliver a datagram
  without going through the event scheduler, silently breaking latency,
  fault injection, and same-seed determinism.  Only the network's own
  delivery path under ``repro/netsim/`` may do that.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Attribute calls that constitute a raw port binding.
BIND_ATTRS = {"bind", "rebind"}

#: Paths (relative to src/repro) where raw binds are legitimate.
BIND_ALLOWED_PREFIXES = ("netsim/", "threat/")
BIND_ALLOWED_FILES = {"core/service.py"}


def _relative(path: Path) -> str:
    return str(path.relative_to(SRC)).replace("\\", "/")


def _bind_allowed(rel: str) -> bool:
    return rel in BIND_ALLOWED_FILES or rel.startswith(BIND_ALLOWED_PREFIXES)


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = _relative(path) if path.is_relative_to(SRC) else path.name
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # <receiver>.bind(port, handler) — raw binding outside the
        # Service lifecycle.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in BIND_ATTRS
            and not _bind_allowed(rel)
        ):
            found.append((node.lineno, f".{func.attr}(...)"))
        # <host>.handler_for(port)(datagram) — calling a looked-up
        # handler inline, bypassing the scheduler.
        if (
            isinstance(func, ast.Call)
            and isinstance(func.func, ast.Attribute)
            and func.func.attr == "handler_for"
            and not rel.startswith("netsim/")
        ):
            found.append((node.lineno, "handler_for(...)(...)"))
    return found


def test_no_raw_binds_or_scheduler_bypass_under_src_repro():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        violations = _violations(path)
        if violations:
            bad[str(path.relative_to(SRC.parent))] = violations
    assert not bad, (
        "raw port bindings / scheduler bypasses found "
        "(attach a repro.core.service.Service instead):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, calls in bad.items()
            for line, what in calls
        )
    )


def test_lint_covers_every_daemon_module():
    """The modules that used to carry ad-hoc binds are inside the
    linted tree."""
    modules = {_relative(p) for p in SRC.rglob("*.py")}
    for daemon in (
        "core/kdc.py",
        "kdbm/server.py",
        "replication/kpropd.py",
        "apps/nfs/server.py",
        "apps/nfs/mountd.py",
        "apps/register.py",
        "apps/rlogin.py",
    ):
        assert daemon in modules


def test_the_attacker_exemption_is_real():
    """The masquerade tooling still binds raw (by design) and the lint
    does not flag it."""
    masquerade = SRC / "threat" / "masquerade.py"
    assert ".bind(" in masquerade.read_text(encoding="utf-8")
    assert _violations(masquerade) == []


def test_lint_catches_a_raw_bind(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "def start(host):\n"
        "    host.bind(750, lambda d: b'')\n"
        "    host.rebind(751, lambda d: b'')\n"
    )
    violations = {what for _, what in _violations(planted)}
    assert violations == {".bind(...)", ".rebind(...)"}


def test_lint_catches_inline_handler_invocation(tmp_path):
    planted = tmp_path / "bypass.py"
    planted.write_text(
        "def shortcut(host, datagram):\n"
        "    return host.handler_for(750)(datagram)\n"
    )
    violations = {what for _, what in _violations(planted)}
    assert "handler_for(...)(...)" in violations


def test_lint_permits_lookup_without_call(tmp_path):
    """Looking a handler up (e.g. to check a port is bound) is fine;
    only *calling* it inline is a bypass."""
    planted = tmp_path / "lookup.py"
    planted.write_text(
        "def is_bound(host):\n"
        "    return host.handler_for(750) is not None\n"
    )
    assert _violations(planted) == []
