"""Metrics registry: identity, label cardinality, histogram edges,
snapshot determinism."""

import pytest

from repro.netsim import SimClock
from repro.obs import (
    MetricsError,
    MetricsRegistry,
    labels_key,
    render_prometheus,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestIdentity:
    def test_same_name_same_labels_same_instrument(self, registry):
        a = registry.counter("x.total", {"kind": "as"})
        b = registry.counter("x.total", {"kind": "as"})
        assert a is b

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("x.total", {"a": "1", "b": "2"})
        b = registry.counter("x.total", {"b": "2", "a": "1"})
        assert a is b

    def test_label_values_stringified(self, registry):
        a = registry.counter("x.total", {"port": 750})
        b = registry.counter("x.total", {"port": "750"})
        assert a is b

    def test_different_labels_different_instruments(self, registry):
        a = registry.counter("x.total", {"kind": "as"})
        b = registry.counter("x.total", {"kind": "tgs"})
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_labels_key_normalizes(self):
        assert labels_key({"b": 2, "a": "1"}) == (("a", "1"), ("b", "2"))
        assert labels_key(None) == ()
        assert labels_key({}) == ()

    def test_kind_clash_rejected(self, registry):
        registry.counter("x.total")
        with pytest.raises(MetricsError):
            registry.gauge("x.total")
        with pytest.raises(MetricsError):
            registry.histogram("x.total", (1.0,))

    def test_kind_clash_rejected_across_label_sets(self, registry):
        registry.counter("x.total", {"kind": "as"})
        with pytest.raises(MetricsError):
            registry.gauge("x.total", {"kind": "tgs"})

    def test_counter_cannot_decrease(self, registry):
        counter = registry.counter("x.total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("x.size")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4


class TestCardinality:
    def test_cap_on_label_sets_per_name(self):
        registry = MetricsRegistry(max_series_per_name=8)
        for i in range(8):
            registry.counter("x.total", {"user": str(i)})
        with pytest.raises(MetricsError):
            registry.counter("x.total", {"user": "8"})

    def test_existing_series_unaffected_by_cap(self):
        registry = MetricsRegistry(max_series_per_name=1)
        counter = registry.counter("x.total", {"user": "0"})
        # Re-fetching the existing series is fine even at the cap.
        assert registry.counter("x.total", {"user": "0"}) is counter

    def test_cap_is_per_name(self):
        registry = MetricsRegistry(max_series_per_name=1)
        registry.counter("x.total", {"a": "1"})
        registry.counter("y.total", {"a": "1"})  # different name: fine


class TestHistogram:
    def test_value_on_boundary_counts_in_bucket(self, registry):
        hist = registry.histogram("h", (1.0, 2.0))
        hist.observe(1.0)  # le-semantics: value <= bound
        assert hist.cumulative_buckets() == [(1.0, 1), (2.0, 1)]

    def test_value_above_all_boundaries_only_in_count(self, registry):
        hist = registry.histogram("h", (1.0, 2.0))
        hist.observe(99.0)
        assert hist.cumulative_buckets() == [(1.0, 0), (2.0, 0)]
        assert hist.count == 1
        assert hist.sum == 99.0

    def test_cumulative_counts_accumulate(self, registry):
        hist = registry.histogram("h", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        assert hist.cumulative_buckets() == [(1.0, 1), (2.0, 3), (4.0, 4)]
        assert hist.count == 5

    def test_boundaries_must_ascend(self, registry):
        with pytest.raises(MetricsError):
            registry.histogram("h", (2.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("h2", (1.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("h3", ())

    def test_boundary_mismatch_rejected(self, registry):
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("h", (1.0, 3.0), {"kind": "as"})

    def test_total_refuses_histograms(self, registry):
        registry.histogram("h", (1.0,))
        with pytest.raises(MetricsError):
            registry.total("h")


class TestHistogramEdges:
    def test_identical_reregistration_returns_same_instrument(self, registry):
        first = registry.histogram("h", (1.0, 2.0), {"kind": "as"})
        again = registry.histogram("h", (1.0, 2.0), {"kind": "as"})
        assert again is first
        # Same name, same bounds, different labels: a sibling series.
        sibling = registry.histogram("h", (1.0, 2.0), {"kind": "tgs"})
        assert sibling is not first

    def test_different_bounds_rejected_even_for_new_label_set(self, registry):
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("h", (1.0, 2.0, 4.0), {"kind": "as"})

    def test_empty_histogram_percentile_is_zero(self, registry):
        hist = registry.histogram("h", (1.0, 2.0))
        assert hist.percentile(0.5) == 0.0
        assert hist.percentile(1.0) == 0.0

    def test_percentile_quantile_must_be_in_range(self, registry):
        hist = registry.histogram("h", (1.0,))
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(MetricsError):
                hist.percentile(bad)

    def test_percentile_nearest_rank_on_bucket_bounds(self, registry):
        hist = registry.histogram("h", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            hist.observe(v)
        # Ranks 1..4 land in buckets 1.0, 2.0, 2.0, 4.0.
        assert hist.percentile(0.25) == 1.0
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(1.0) == 4.0

    def test_percentile_above_all_bounds_is_inf(self, registry):
        import math

        hist = registry.histogram("h", (1.0,))
        hist.observe(99.0)
        assert hist.percentile(0.5) == math.inf

    def test_empty_histogram_exports_zero_series(self, registry):
        registry.histogram("lat_seconds", (0.5, 1.0))
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="0.5"} 0' in text
        assert 'lat_seconds_bucket{le="+Inf"} 0' in text
        assert "lat_seconds_sum 0" in text
        assert "lat_seconds_count 0" in text


class TestQueries:
    def test_total_sums_over_label_filter(self, registry):
        registry.counter("x.total", {"kind": "as", "code": "OK"}).inc(2)
        registry.counter("x.total", {"kind": "as", "code": "ERR"}).inc(1)
        registry.counter("x.total", {"kind": "tgs", "code": "OK"}).inc(5)
        assert registry.total("x.total") == 8
        assert registry.total("x.total", kind="as") == 3
        assert registry.total("x.total", kind="as", code="OK") == 2
        assert registry.total("x.total", kind="nope") == 0

    def test_get_by_labels(self, registry):
        counter = registry.counter("x.total", {"kind": "as"})
        assert registry.get("x.total", {"kind": "as"}) is counter
        assert registry.get("x.total", {"kind": "tgs"}) is None

    def test_reset_zeroes_but_keeps_schema(self, registry):
        registry.counter("net.total").inc(5)
        registry.counter("kdc.total").inc(3)
        registry.reset(prefix="net.")
        assert registry.total("net.total") == 0
        assert registry.total("kdc.total") == 3
        # Schema survives: the instrument is still registered.
        assert registry.get("net.total") is not None


class TestSnapshot:
    def _drive(self, registry, clock):
        registry.counter("a.total", {"k": "1"}).inc(3)
        registry.gauge("b.size").set(2)
        hist = registry.histogram("c.seconds", (0.5, 1.0))
        clock.advance(0.75)
        hist.observe(clock.now())
        return registry.snapshot(now=clock.now())

    def test_snapshot_deterministic_under_sim_clock(self):
        """Two identical runs over seeded simulated time yield
        byte-identical snapshots."""
        import json

        snaps = [
            self._drive(MetricsRegistry(), SimClock(start=10.0))
            for _ in range(2)
        ]
        assert json.dumps(snaps[0], sort_keys=True) == json.dumps(
            snaps[1], sort_keys=True
        )
        assert snaps[0]["clock"] == 10.75

    def test_snapshot_orders_instruments(self):
        registry = MetricsRegistry()
        # Register out of order; snapshot must sort.
        registry.counter("z.total").inc()
        registry.counter("a.total", {"k": "2"}).inc()
        registry.counter("a.total", {"k": "1"}).inc()
        names = [
            (e["name"], tuple(sorted(e["labels"].items())))
            for e in registry.snapshot()["counters"]
        ]
        assert names == sorted(names)

    def test_snapshot_histogram_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        (entry,) = registry.snapshot()["histograms"]
        assert entry["buckets"] == [[1.0, 1], [2.0, 1]]
        assert entry["count"] == 2
        assert entry["sum"] == 5.5


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("kdc.requests_total", {"kind": "as"}).inc(4)
        registry.gauge("replay.entries", {"server": "kerberos"}).set(2)
        text = render_prometheus(registry)
        assert "# TYPE kdc_requests_total counter" in text
        assert 'kdc_requests_total{kind="as"} 4' in text
        assert 'replay_entries{server="kerberos"} 2' in text

    def test_histogram_expansion(self, registry):
        hist = registry.histogram("h.seconds", (0.5, 1.0))
        hist.observe(0.25)
        hist.observe(7.0)
        text = render_prometheus(registry)
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_sum 7.25" in text
        assert "h_seconds_count 2" in text

    def test_type_header_once_per_name(self, registry):
        registry.counter("x.total", {"k": "1"})
        registry.counter("x.total", {"k": "2"})
        text = render_prometheus(registry)
        assert text.count("# TYPE x_total counter") == 1

    def test_label_values_escaped_per_spec(self, registry):
        """Quotes, backslashes, and newlines in label values render as
        ``\\"``, ``\\\\``, and ``\\n`` — not raw, which would corrupt
        the exposition format."""
        registry.counter(
            "x.total", {"detail": 'say "hi"\\now\nplease'}
        ).inc()
        text = render_prometheus(registry)
        assert (
            'x_total{detail="say \\"hi\\"\\\\now\\nplease"} 1' in text
        )
        assert "\nplease" not in text  # no raw newline inside a label

    def test_histogram_series_order_is_spec_deterministic(self, registry):
        """Per series: buckets ascending, then +Inf, then _sum, then
        _count — the order scrapers expect, stable across runs."""
        hist = registry.histogram("h.seconds", (0.5, 1.0))
        hist.observe(0.25)
        text = render_prometheus(registry)
        positions = [
            text.index('h_seconds_bucket{le="0.5"}'),
            text.index('h_seconds_bucket{le="1"}'),
            text.index('h_seconds_bucket{le="+Inf"}'),
            text.index("h_seconds_sum"),
            text.index("h_seconds_count"),
        ]
        assert positions == sorted(positions)
