"""End-to-end observability: a full AS→TGS→AP flow yields one trace
whose spans and wire records correlate through a shared request ID."""

import json

import pytest

from repro.netsim import Network
from repro.obs import render_prometheus, write_json_snapshot
from repro.realm import Realm
from repro.trace import ProtocolTracer, correlated_report

REALM = "ATHENA.MIT.EDU"

pytestmark = pytest.mark.obs


@pytest.fixture
def world():
    net = Network(latency=0.001)
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    return net, realm, service


def run_flow(net, realm, service):
    """One login + one service use, under a single root span."""
    ws = realm.workstation()
    with net.tracer.span("user.session", user="jis"):
        ws.client.kinit("jis", "jis-pw")
        ws.client.mk_req(service)
    return ws


class TestFigure9SpanTree:
    def test_single_flow_single_trace(self, world):
        net, realm, service = world
        run_flow(net, realm, service)
        rids = net.tracer.request_ids()
        assert len(rids) == 1

    def test_span_tree_shape(self, world):
        """Parent span with one child per exchange; each exchange holds
        its two wire legs (request/reply transit) bracketing the KDC
        handler span the request triggered on the other host."""
        net, realm, service = world
        run_flow(net, realm, service)
        (root,) = net.tracer.roots()
        assert root.name == "user.session"
        children = net.tracer.children(root)
        assert [s.name for s in children] == [
            "client.as_exchange", "client.tgs_exchange", "client.ap_request",
        ]
        as_span, tgs_span, _ = children
        assert [s.name for s in net.tracer.children(as_span)] == [
            "net.transit", "kdc.as", "net.transit",
        ]
        assert [s.name for s in net.tracer.children(tgs_span)] == [
            "net.transit", "kdc.tgs", "net.transit",
        ]
        legs = [
            s.attrs["leg"]
            for s in net.tracer.children(as_span)
            if s.name == "net.transit"
        ]
        assert legs == ["request", "reply"]

    def test_trace_spans_three_hosts(self, world):
        """The acceptance shape: one chaos-free Figure 9 flow is a single
        trace whose spans cover client, KDC, and service hosts."""
        from repro.apps.kerberized import KerberizedChannel, KerberizedServer

        net, realm, service = world

        class Echo(KerberizedServer):
            def handle(self, session, data):
                return data

        app_host = net.add_host("priam")
        Echo(service, realm.srvtab_for(service), 5000).attach(app_host)
        ws = realm.workstation()
        with net.tracer.span("user.session", user="jis"):
            ws.client.kinit("jis", "jis-pw")
            channel = KerberizedChannel(
                ws.client, service, app_host.address, 5000
            )
            channel.call(b"ls")
            channel.close()
        (rid,) = net.tracer.request_ids()
        hosts = net.tracer.hosts(rid)
        assert len(hosts) >= 3
        assert ws.host.name in hosts
        assert realm.master_host.name in hosts
        assert "priam" in hosts

    def test_spans_time_on_the_sim_clock(self, world):
        net, realm, service = world
        run_flow(net, realm, service)
        (root,) = net.tracer.roots()
        # Four one-way trips at 1ms latency happened under the root span.
        assert root.duration == pytest.approx(0.004)
        for span in net.tracer.by_request(root.request_id):
            assert span.finished
            assert root.start <= span.start <= span.end <= root.end

    def test_wire_records_carry_the_request_id(self, world):
        net, realm, service = world
        wire = ProtocolTracer(net)
        run_flow(net, realm, service)
        (rid,) = net.tracer.request_ids()
        tagged = wire.for_request(rid)
        assert len(tagged) == 4  # AS-REQ, AS-REP, TGS-REQ, TGS-REP
        text = "\n".join(r.format() for r in tagged)
        assert "AS-REQ" in text and "TGS-REP" in text
        assert f"rid={rid}" in text

    def test_correlated_report_merges_both_views(self, world):
        net, realm, service = world
        wire = ProtocolTracer(net)
        run_flow(net, realm, service)
        # Uninstrumented traffic (no span open) lands in the orphan
        # section.
        plain = net.add_host("printer")
        plain.bind(9100, lambda d: b"ok")
        realm.master_host.rpc(plain.address, 9100, b"lpr")
        report = correlated_report(wire)
        assert "user.session" in report
        assert "kdc.as" in report
        assert "AS-REQ" in report
        assert "(no active span)" in report


class TestMetricsEndToEnd:
    def test_kdc_and_network_counters(self, world):
        net, realm, service = world
        run_flow(net, realm, service)
        m = net.metrics
        assert m.total("kdc.requests_total", kind="as") == 1
        assert m.total("kdc.requests_total", kind="tgs") == 1
        assert m.total("kdc.outcomes_total", code="OK") == 2
        # Requests hit port 750; replies return to the ephemeral port.
        assert m.total("net.datagrams_total", port="750") == 2
        assert m.total("net.datagrams_total") == 4
        assert m.total("replay.checks_total", result="fresh") >= 1

    def test_error_outcome_labelled_by_code(self, world):
        net, realm, service = world
        ws = realm.workstation()
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            ws.client.kinit("nobody", "x")
        m = net.metrics
        assert m.total("kdc.outcomes_total", kind="as", code="OK") == 0
        assert m.total("kdc.requests_total", kind="as") == 1
        # Exactly one non-OK outcome, labelled with the error code name.
        assert m.total("kdc.outcomes_total", kind="as") == 1
        assert realm.kdc.errors == 1

    def test_exchange_latency_histogram(self, world):
        net, realm, service = world
        run_flow(net, realm, service)
        hist = net.metrics.get("client.exchange_seconds", {"type": "as"})
        assert hist.count == 1
        # 2ms round trip falls in the 2ms bucket, not below.
        cum = dict(hist.cumulative_buckets())
        assert cum[0.001] == 0
        assert cum[0.002] == 1

    def test_prometheus_dump_covers_the_flow(self, world):
        net, realm, service = world
        run_flow(net, realm, service)
        text = render_prometheus(net.metrics)
        assert 'kdc_requests_total{kind="as",server=' in text
        assert "net_datagrams_total" in text
        assert "client_exchange_seconds_bucket" in text

    def test_json_snapshot_round_trips(self, world, tmp_path):
        net, realm, service = world
        run_flow(net, realm, service)
        path = tmp_path / "metrics.json"
        written = write_json_snapshot(
            net.metrics, path, now=net.clock.now(), extra={"logins": 1}
        )
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["clock"] == net.clock.now()
        assert loaded["bench"] == {"logins": 1}
        names = {e["name"] for e in loaded["counters"]}
        assert "kdc.outcomes_total" in names
        assert "net.datagrams_total" in names
