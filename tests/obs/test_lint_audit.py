"""Audit-plane lint: :class:`repro.obs.audit.AuditEvent` may only be
constructed inside ``repro/obs/audit.py``.

Every security event must flow through :meth:`AuditLog.emit` — that is
where the kind vocabulary is enforced, the sequence number and simulated
timestamp are stamped, and the ``audit.events_total`` series is counted.
A hand-rolled ``AuditEvent(...)`` anywhere else would bypass all three,
so an AST walk bans it the same way the no-wallclock lint bans ambient
time."""

import ast
from pathlib import Path

import pytest

pytestmark = pytest.mark.obs

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The one module allowed to construct the record type.
ALLOWED = {"obs/audit.py"}


def _constructions(path: Path) -> list:
    """Line numbers of ``AuditEvent(...)`` calls (bare or attribute)."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "AuditEvent":
            found.append(node.lineno)
    return found


def test_audit_events_only_constructed_in_the_audit_module():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        rel = str(path.relative_to(SRC))
        if rel in ALLOWED:
            continue
        lines = _constructions(path)
        if lines:
            bad[rel] = lines
    assert not bad, (
        "AuditEvent constructed outside repro/obs/audit.py "
        "(emit through AuditLog.emit instead):\n"
        + "\n".join(f"  {mod}:{line}" for mod, ls in bad.items() for line in ls)
    )


def test_the_audit_module_itself_constructs_the_event():
    """Sanity: the walk finds the one legitimate construction site."""
    assert _constructions(SRC / "obs" / "audit.py")


def test_lint_catches_a_planted_construction(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "from repro.obs.audit import AuditEvent\n"
        "import repro.obs.audit as audit\n"
        "e1 = AuditEvent(1, 0.0, 'auth_failure', 'h', '', '', '')\n"
        "e2 = audit.AuditEvent(2, 0.0, 'auth_failure', 'h', '', '', '')\n"
        "ok = audit.AuditLog(None)\n"
    )
    assert _constructions(planted) == [3, 4]
