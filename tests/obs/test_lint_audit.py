"""Audit-plane lint: :class:`repro.obs.audit.AuditEvent` may only be
constructed inside ``repro/obs/audit.py``.

Every security event must flow through :meth:`AuditLog.emit` — that is
where the kind vocabulary is enforced, the sequence number and simulated
timestamp are stamped, and the ``audit.events_total`` series is counted.
A hand-rolled ``AuditEvent(...)`` anywhere else would bypass all three,
so an AST walk bans it the same way the no-wallclock lint bans ambient
time."""

import ast
from pathlib import Path

import pytest

pytestmark = pytest.mark.obs

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The one module allowed to construct the record type.
ALLOWED = {"obs/audit.py"}


def _constructions(path: Path) -> list:
    """Line numbers of ``AuditEvent(...)`` calls (bare or attribute)."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "AuditEvent":
            found.append(node.lineno)
    return found


def test_audit_events_only_constructed_in_the_audit_module():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        rel = str(path.relative_to(SRC))
        if rel in ALLOWED:
            continue
        lines = _constructions(path)
        if lines:
            bad[rel] = lines
    assert not bad, (
        "AuditEvent constructed outside repro/obs/audit.py "
        "(emit through AuditLog.emit instead):\n"
        + "\n".join(f"  {mod}:{line}" for mod, ls in bad.items() for line in ls)
    )


def test_the_audit_module_itself_constructs_the_event():
    """Sanity: the walk finds the one legitimate construction site."""
    assert _constructions(SRC / "obs" / "audit.py")


def _emitted_kinds(path: Path) -> list:
    """(kind, lineno) for every literal-kind ``*.emit("...")`` call."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            found.append((first.value, node.lineno))
    return found


def test_every_emitted_kind_is_in_the_vocabulary():
    """A literal kind at any ``emit()`` call site must be a member of
    the closed vocabulary — catching typos at lint time instead of at
    the first runtime hit of that code path."""
    from repro.obs.audit import AUDIT_KINDS

    bad = {}
    for path in sorted(SRC.rglob("*.py")):
        rel = str(path.relative_to(SRC))
        for kind, line in _emitted_kinds(path):
            if kind not in AUDIT_KINDS:
                bad.setdefault(rel, []).append((line, kind))
    assert not bad, (
        "emit() called with a kind outside AUDIT_KINDS:\n"
        + "\n".join(
            f"  {mod}:{line}: {kind!r}"
            for mod, pairs in bad.items()
            for line, kind in pairs
        )
    )


def test_every_vocabulary_kind_is_emitted_somewhere():
    """The vocabulary carries no dead entries: each kind has at least
    one emitting call site in src (OBSERVABILITY.md documents them)."""
    from repro.obs.audit import AUDIT_KINDS

    emitted = set()
    for path in sorted(SRC.rglob("*.py")):
        if path == SRC / "obs" / "audit.py":
            continue  # defining the vocabulary is not emitting it
        tree = ast.parse(path.read_text(encoding="utf-8"))
        calls_emit = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            for node in ast.walk(tree)
        )
        if not calls_emit:
            continue
        # Kinds may reach emit() through a variable (kdc.py picks
        # between two), so count every string constant in an emitting
        # module, not just literal first arguments.
        emitted.update(
            node.value
            for node in ast.walk(tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        )
    missing = set(AUDIT_KINDS) - emitted
    assert not missing, (
        f"audit kinds never emitted anywhere in src: {sorted(missing)}"
    )


def test_lint_catches_a_planted_construction(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "from repro.obs.audit import AuditEvent\n"
        "import repro.obs.audit as audit\n"
        "e1 = AuditEvent(1, 0.0, 'auth_failure', 'h', '', '', '')\n"
        "e2 = audit.AuditEvent(2, 0.0, 'auth_failure', 'h', '', '', '')\n"
        "ok = audit.AuditLog(None)\n"
    )
    assert _constructions(planted) == [3, 4]
