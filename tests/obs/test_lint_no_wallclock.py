"""Determinism lint: no module under src/repro/ may read the wall clock
or draw from the process-global RNG.

All timing flows from the seeded :class:`SimClock`; a stray
``time.time()`` would silently break run-to-run reproducibility of
snapshots and traces.  Likewise all randomness — including the fault
plane (``netsim/faults.py``) and retry backoff jitter
(``core/retry.py``) — must come from explicitly seeded
``random.Random`` instances; a call through the module-global RNG
(``random.random()``, ``random.randint()``, ...) would make chaos runs
unrepeatable.  A simple AST walk keeps both invariants honest.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Wall-clock (or otherwise ambient-time) callables, by attribute name
#: on the ``time``/``datetime`` modules.
FORBIDDEN_TIME_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "localtime", "gmtime",
}
FORBIDDEN_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: Draws on the module-global RNG (``random.Random(seed)`` instances are
#: fine — the *global* state is the ambient dependency).
FORBIDDEN_RANDOM_ATTRS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "getrandbits", "randbytes", "seed",
}


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    imported_time_names = set()
    for node in ast.walk(tree):
        # from time import time / perf_counter ...
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in FORBIDDEN_TIME_ATTRS:
                    imported_time_names.add(alias.asname or alias.name)
                    found.append(
                        (node.lineno, f"from time import {alias.name}")
                    )
        # from random import random / randint ... (global-RNG draws)
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in FORBIDDEN_RANDOM_ATTRS:
                    found.append(
                        (node.lineno, f"from random import {alias.name}")
                    )
        if isinstance(node, ast.Call):
            func = node.func
            # time.time(), time.monotonic(), ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in FORBIDDEN_TIME_ATTRS
            ):
                found.append((node.lineno, f"time.{func.attr}()"))
            # datetime.now(), date.today(), ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")
                and func.attr in FORBIDDEN_DATETIME_ATTRS
            ):
                found.append(
                    (node.lineno, f"{func.value.id}.{func.attr}()")
                )
            # random.random(), random.randint(), ... on the global RNG.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in FORBIDDEN_RANDOM_ATTRS
            ):
                found.append((node.lineno, f"random.{func.attr}()"))
            # Bare call to an imported wall-clock name.
            if (
                isinstance(func, ast.Name)
                and func.id in imported_time_names
            ):
                found.append((node.lineno, f"{func.id}()"))
    return found


def test_no_wall_clock_reads_under_src_repro():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        violations = _violations(path)
        if violations:
            bad[str(path.relative_to(SRC.parent))] = violations
    assert not bad, (
        "wall-clock reads found (use the simulated clock instead):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, calls in bad.items()
            for line, what in calls
        )
    )


def test_lint_covers_the_resilience_modules():
    """The fault plane and retry policy — the modules whose determinism
    the chaos suite depends on — are inside the linted tree."""
    modules = {str(p.relative_to(SRC)) for p in SRC.rglob("*.py")}
    assert "core/retry.py" in modules
    assert "netsim/faults.py" in modules


def test_lint_covers_the_observability_modules():
    """The tracing/audit/flight planes promise byte-identical same-seed
    output — ambient time anywhere in them would break that, so they
    must sit inside the linted tree too."""
    modules = {str(p.relative_to(SRC)) for p in SRC.rglob("*.py")}
    for module in (
        "obs/tracing.py",
        "obs/audit.py",
        "obs/flight.py",
        "obs/export.py",
        "obs/report.py",
    ):
        assert module in modules


def test_lint_catches_a_violation(tmp_path):
    """The walk itself works — it flags a planted offender."""
    planted = tmp_path / "offender.py"
    planted.write_text(
        "import time\n"
        "from time import perf_counter\n"
        "def f():\n"
        "    return time.time() + perf_counter()\n"
    )
    violations = _violations(planted)
    assert ("time.time()" in {w for _, w in violations})
    assert any("perf_counter" in w for _, w in violations)


def test_lint_catches_global_rng(tmp_path):
    """Global-RNG draws are flagged; seeded Random instances are not."""
    planted = tmp_path / "rng_offender.py"
    planted.write_text(
        "import random\n"
        "from random import randint\n"
        "ok = random.Random(7)\n"
        "def f():\n"
        "    ok.random()\n"            # seeded instance: fine
        "    return random.random()\n"  # global RNG: flagged
    )
    violations = {w for _, w in _violations(planted)}
    assert "random.random()" in violations
    assert "from random import randint" in violations
    assert not any("Random" in w for w in violations)
