"""Determinism lint: no module under src/repro/ may read the wall clock.

All timing flows from the seeded :class:`SimClock`; a stray
``time.time()`` would silently break run-to-run reproducibility of
snapshots and traces.  A simple AST walk keeps that invariant honest.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Wall-clock (or otherwise ambient-time) callables, by attribute name
#: on the ``time``/``datetime`` modules.
FORBIDDEN_TIME_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "localtime", "gmtime",
}
FORBIDDEN_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    imported_time_names = set()
    for node in ast.walk(tree):
        # from time import time / perf_counter ...
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in FORBIDDEN_TIME_ATTRS:
                    imported_time_names.add(alias.asname or alias.name)
                    found.append(
                        (node.lineno, f"from time import {alias.name}")
                    )
        if isinstance(node, ast.Call):
            func = node.func
            # time.time(), time.monotonic(), ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in FORBIDDEN_TIME_ATTRS
            ):
                found.append((node.lineno, f"time.{func.attr}()"))
            # datetime.now(), date.today(), ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")
                and func.attr in FORBIDDEN_DATETIME_ATTRS
            ):
                found.append(
                    (node.lineno, f"{func.value.id}.{func.attr}()")
                )
            # Bare call to an imported wall-clock name.
            if (
                isinstance(func, ast.Name)
                and func.id in imported_time_names
            ):
                found.append((node.lineno, f"{func.id}()"))
    return found


def test_no_wall_clock_reads_under_src_repro():
    modules = sorted(SRC.rglob("*.py"))
    assert modules, f"no modules found under {SRC}"
    bad = {}
    for path in modules:
        violations = _violations(path)
        if violations:
            bad[str(path.relative_to(SRC.parent))] = violations
    assert not bad, (
        "wall-clock reads found (use the simulated clock instead):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, calls in bad.items()
            for line, what in calls
        )
    )


def test_lint_catches_a_violation(tmp_path):
    """The walk itself works — it flags a planted offender."""
    planted = tmp_path / "offender.py"
    planted.write_text(
        "import time\n"
        "from time import perf_counter\n"
        "def f():\n"
        "    return time.time() + perf_counter()\n"
    )
    violations = _violations(planted)
    assert ("time.time()" in {w for _, w in violations})
    assert any("perf_counter" in w for _, w in violations)
