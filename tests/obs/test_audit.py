"""The audit plane: closed vocabulary, trace joins, bounded append-only log."""

import pytest

from repro.netsim import Network, SimClock
from repro.obs import AUDIT_KINDS, AuditError, AuditLog, MetricsRegistry
from repro.obs.tracing import TraceContext
from repro.realm import Realm

pytestmark = pytest.mark.obs


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def log(clock):
    return AuditLog(clock, metrics=MetricsRegistry())


class TestEmission:
    def test_unknown_kind_rejected(self, log):
        with pytest.raises(AuditError):
            log.emit("password_sighted")

    def test_every_declared_kind_accepted(self, log):
        for kind in AUDIT_KINDS:
            log.emit(kind, host="h")
        assert log.count() == len(AUDIT_KINDS)

    def test_events_stamped_on_sim_clock_with_sequence(self, clock, log):
        first = log.emit("auth_success", host="kdc")
        clock.advance(2.5)
        second = log.emit("auth_failure", host="kdc")
        assert (first.seq, second.seq) == (1, 2)
        assert first.time == 0.0
        assert second.time == pytest.approx(2.5)

    def test_trace_accepts_context_string_or_none(self, log):
        ctx = TraceContext("req-000042", 7)
        assert log.emit("auth_success", trace=ctx).trace_id == "req-000042"
        assert log.emit("auth_success", trace="req-000007").trace_id == "req-000007"
        assert log.emit("auth_success", trace=None).trace_id == ""

    def test_counts_per_kind(self, log):
        log.emit("replay_detected", host="srv")
        log.emit("replay_detected", host="srv")
        log.emit("acl_denial", host="master")
        m = log.metrics
        assert m.total("audit.events_total", kind="replay_detected") == 2
        assert m.total("audit.events_total", kind="acl_denial") == 1


class TestQueries:
    def test_filter_by_kind_and_trace(self, log):
        log.emit("auth_success", trace="req-000001")
        log.emit("auth_failure", trace="req-000002")
        log.emit("replay_detected", trace="req-000001")
        assert [e.kind for e in log.for_trace("req-000001")] == [
            "auth_success", "replay_detected",
        ]
        assert log.count("auth_failure") == 1

    def test_format_marks_principal_and_rid_only_when_present(self, log):
        tagged = log.emit(
            "auth_failure", host="kdc", principal="mallory", trace="req-000009"
        )
        bare = log.emit("replay_detected", host="srv")
        assert "principal=mallory" in tagged.format()
        assert "rid=req-000009" in tagged.format()
        assert "rid=" not in bare.format()

    def test_to_dicts_round_trips_fields(self, log):
        log.emit("overload_shed", host="kdc", detail="queue full")
        (d,) = log.to_dicts()
        assert d["kind"] == "overload_shed"
        assert d["host"] == "kdc"
        assert d["detail"] == "queue full"
        assert d["trace_id"] == ""


class TestBounds:
    def test_overflow_drops_and_counts(self, clock):
        log = AuditLog(clock, metrics=MetricsRegistry(), max_events=2)
        for _ in range(5):
            log.emit("auth_failure")
        assert len(log) == 2
        assert log.metrics.total("audit.events_total") == 2
        assert log.metrics.total("audit.events_dropped_total") == 3


class TestRealmWiring:
    """The detection points actually emit into ``net.audit``."""

    @pytest.fixture
    def world(self):
        net = Network(latency=0.001)
        realm = Realm(net, "AUDIT.REALM")
        realm.add_user("jis", "jis-pw")
        service, _ = realm.add_service("rlogin", "priam")
        return net, realm, service

    def test_kdc_success_and_failure(self, world):
        from repro.core.errors import KerberosError

        net, realm, service = world
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        with pytest.raises(KerberosError):
            realm.workstation().client.kinit("mallory", "guess")
        (ok,) = net.audit.events("auth_success")
        (bad,) = net.audit.events("auth_failure")
        assert ok.principal == "jis@AUDIT.REALM"
        assert ok.host == realm.master_host.name
        assert "KDC_PR_UNKNOWN" in bad.detail

    def test_replay_detected_is_context_less(self, world):
        from repro.threat.replayer import Replayer

        net, realm, service = world
        replayer = Replayer(net, match=lambda d: d.dst_port == 750)
        ws = realm.workstation()
        with net.tracer.span("login"):
            ws.client.kinit("jis", "jis-pw")
            ws.client.mk_req(service)
        replayer.replay(1)  # the captured TGS-REQ, byte-identical
        (event,) = net.audit.events("replay_detected")
        assert event.principal == "jis@AUDIT.REALM"
        # The attacker cannot forge the out-of-band trace context, so
        # the replay shows up with an empty trace ID — unlike the
        # legitimate exchanges, which all joined the login trace.
        assert event.trace_id == ""
        assert net.audit.events("auth_success")[0].trace_id == "req-000001"
