"""The flight recorder: cadence, bounded ring, prefix filters, determinism."""

import pytest

from repro.netsim import SimClock
from repro.obs import FlightRecorder, MetricsRegistry, series_key
from repro.runtime import EventScheduler

pytestmark = pytest.mark.obs


@pytest.fixture
def world():
    clock = SimClock()
    scheduler = EventScheduler(clock)
    registry = MetricsRegistry()
    return clock, scheduler, registry


def drive(scheduler, registry, ticks, gap=1.0):
    """Schedule ``ticks`` gauge updates ``gap`` seconds apart and run.

    Updates land at half-gap offsets (0.5, 1.5, ...) so they never tie
    with whole-second sample boundaries — a tied tick samples before the
    same-instant scheduler event runs."""
    for i in range(ticks):
        scheduler.at(
            (i + 0.5) * gap,
            lambda i=i: registry.gauge("kdc.queue_depth").set(i + 1),
            label="drive",
        )
    scheduler.run_until_idle()


class TestSampling:
    def test_start_samples_immediately_then_per_interval(self, world):
        clock, scheduler, registry = world
        registry.gauge("kdc.queue_depth").set(3)
        recorder = FlightRecorder(registry, scheduler, interval=1.0).start()
        assert len(recorder) == 1  # the start() sample at t=0
        drive(scheduler, registry, ticks=4)  # last update at t=3.5
        # run_until_idle returned (the self-rescheduling tick rides the
        # SimClock, not the scheduler queue) with one sample per second.
        assert [when for when, _ in recorder.samples] == [0.0, 1.0, 2.0, 3.0]

    def test_samples_capture_gauge_values_at_tick_time(self, world):
        clock, scheduler, registry = world
        registry.gauge("kdc.queue_depth").set(0)
        recorder = FlightRecorder(registry, scheduler, interval=1.0).start()
        drive(scheduler, registry, ticks=3)
        series = recorder.series()["kdc.queue_depth"]
        assert series == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]

    def test_labelled_gauges_get_stable_series_keys(self, world):
        clock, scheduler, registry = world
        registry.gauge("replay.entries", {"server": "kdc-1"}).set(7)
        recorder = FlightRecorder(registry, scheduler).start()
        (sample,) = [values for _, values in recorder.samples]
        assert sample == {"replay.entries{server=kdc-1}": 7.0}

    def test_prefix_filter(self, world):
        clock, scheduler, registry = world
        registry.gauge("kdc.queue_depth").set(1)
        registry.gauge("replay.entries").set(2)
        recorder = FlightRecorder(
            registry, scheduler, prefixes=("kdc.",)
        ).start()
        (sample,) = [values for _, values in recorder.samples]
        assert list(sample) == ["kdc.queue_depth"]

    def test_samples_counted_in_registry(self, world):
        clock, scheduler, registry = world
        recorder = FlightRecorder(registry, scheduler, interval=1.0).start()
        drive(scheduler, registry, ticks=2)  # clock reaches 1.5
        assert registry.total("obs.samples_total") == recorder.taken == 2


class TestBounds:
    def test_ring_keeps_only_the_last_capacity_samples(self, world):
        clock, scheduler, registry = world
        registry.gauge("kdc.queue_depth").set(0)
        recorder = FlightRecorder(
            registry, scheduler, interval=1.0, capacity=3
        ).start()
        drive(scheduler, registry, ticks=10)  # clock reaches 9.5
        assert recorder.taken == 10
        assert [when for when, _ in recorder.samples] == [7.0, 8.0, 9.0]

    def test_stop_halts_sampling_but_keeps_the_ring(self, world):
        clock, scheduler, registry = world
        recorder = FlightRecorder(registry, scheduler, interval=1.0).start()
        drive(scheduler, registry, ticks=2)
        recorder.stop()
        taken = recorder.taken
        drive(scheduler, registry, ticks=3, gap=10.0)
        assert recorder.taken == taken
        assert len(recorder) == taken

    def test_bad_parameters_rejected(self, world):
        clock, scheduler, registry = world
        with pytest.raises(ValueError):
            FlightRecorder(registry, scheduler, interval=0.0)
        with pytest.raises(ValueError):
            FlightRecorder(registry, scheduler, capacity=0)


class TestDeterminism:
    def test_same_run_same_ring(self):
        def run():
            clock = SimClock()
            scheduler = EventScheduler(clock)
            registry = MetricsRegistry()
            recorder = FlightRecorder(
                registry, scheduler, interval=0.5
            ).start()
            drive(scheduler, registry, ticks=6, gap=0.7)
            return recorder.to_dicts()

        assert run() == run()


class TestSeriesKey:
    def test_unlabelled_is_bare_name(self):
        assert series_key("kdc.queue_depth", ()) == "kdc.queue_depth"

    def test_labels_render_sorted_tuple(self):
        key = series_key(
            "replay.entries", (("server", "kdc-1"), ("site", "slave"))
        )
        assert key == "replay.entries{server=kdc-1,site=slave}"
