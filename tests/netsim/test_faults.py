"""The composable fault plane: loss, duplication, reordering, jitter,
partitions, crash/restart — all seeded, all observable."""

import pytest

from repro.netsim import (
    Duplicate,
    FaultError,
    Jitter,
    Loss,
    Match,
    Network,
    Partition,
    Reorder,
    Unreachable,
)


def world(seed=0, **kwargs):
    net = Network(seed=seed, **kwargs)
    server = net.add_host("server")
    client = net.add_host("client")
    log = []
    server.bind(7, lambda d: log.append(d.payload) or b"ok:" + d.payload)
    return net, server, client, log


class TestMatch:
    def test_port_scoping(self):
        net, server, client, log = world()
        server.bind(8, lambda d: b"other")
        net.faults.add(Loss(1.0, Match.build(port=7)))
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert client.rpc(server.address, 8, b"y") == b"other"

    def test_src_port_targets_the_reply_leg(self):
        """Dropping only replies from port 7: the server processes every
        request, the client never hears back."""
        net, server, client, log = world()
        net.faults.add(Loss(1.0, Match.build(src_port=7)))
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert log == [b"x"]  # request arrived; the reply was eaten

    def test_address_scoping(self):
        net, server, client, log = world()
        bystander = net.add_host("bystander")
        net.faults.add(Loss(1.0, Match.build(src=client.address)))
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert bystander.rpc(server.address, 7, b"y") == b"ok:y"

    def test_invalid_rates(self):
        with pytest.raises(FaultError):
            Loss(1.5)
        with pytest.raises(FaultError):
            Duplicate(-0.1)
        with pytest.raises(FaultError):
            Jitter(0.5, 0.1)


class TestDuplicate:
    def test_handler_runs_twice_one_reply(self):
        net, server, client, log = world()
        net.faults.add(Duplicate(1.0, Match.build(port=7)))
        assert client.rpc(server.address, 7, b"x") == b"ok:x"
        assert log == [b"x", b"x"]
        assert net.metrics.total("net.duplicates_total") == 1
        assert net.metrics.total("faults.injected_total", kind="duplicate") == 1

    def test_replies_are_not_duplicated(self):
        """A duplicated RPC reply is invisible; the plane spends no
        draws on the reply leg."""
        net, server, client, log = world()
        net.faults.add(Duplicate(1.0))  # matches everything
        assert client.rpc(server.address, 7, b"x") == b"ok:x"
        # One duplicate (the request), not two.
        assert net.metrics.total("net.duplicates_total") == 1


class TestReorder:
    def test_hold_and_release_swaps_order(self):
        net, server, client, log = world()
        net.faults.add(Reorder(1.0, Match.build(port=7)))
        # First request is held: its sender sees silence.
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"first")
        # Second request releases the first — delivered late, after it.
        assert client.rpc(server.address, 7, b"second") == b"ok:second"
        assert log == [b"second", b"first"]
        assert net.metrics.total("net.reordered_total") == 1
        # Third passes clean (the one-slot buffer drained, and with
        # rate 1.0 it is held again).
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"third")

    def test_held_datagram_without_successor_is_lost(self):
        net, server, client, log = world()
        net.faults.add(Reorder(1.0, Match.build(port=7)))
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"only")
        assert log == []
        assert net.metrics.total("net.reordered_total") == 0


class TestJitter:
    def test_jitter_advances_clock_within_bounds(self):
        net, server, client, log = world(latency=0.001)
        net.faults.add(Jitter(0.01, 0.02))
        client.rpc(server.address, 7, b"x")
        # Two hops: 2x base latency, plus 2x jitter in [0.01, 0.02].
        elapsed = net.clock.now()
        assert 0.002 + 0.02 <= elapsed <= 0.002 + 0.04
        assert net.metrics.total("faults.injected_total", kind="jitter") == 2

    def test_jitter_is_deterministic_per_seed(self):
        def run():
            net, server, client, _ = world(seed=42)
            net.faults.add(Jitter(0.0, 0.05))
            client.rpc(server.address, 7, b"x")
            return net.clock.now()

        assert run() == run()


class TestPartition:
    def test_cuts_both_directions(self):
        net, server, client, log = world()
        rule = net.partition(["server"])
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert net.metrics.total("net.drops_total", reason="partition") >= 1
        net.heal(rule)
        assert client.rpc(server.address, 7, b"x") == b"ok:x"

    def test_two_sided_groups(self):
        net, server, client, log = world()
        third = net.add_host("third")
        net.partition([server.address], [client.address])
        # client <-> server is cut; third still reaches the server.
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert third.rpc(server.address, 7, b"y") == b"ok:y"

    def test_heal_all(self):
        net, server, client, log = world()
        net.partition(["server"])
        net.partition(["client"])
        net.heal()
        assert client.rpc(server.address, 7, b"x") == b"ok:x"

    def test_overlapping_groups_rejected(self):
        with pytest.raises(FaultError):
            Partition(["1.2.3.4"], ["1.2.3.4"])
        with pytest.raises(FaultError):
            Partition([])


class TestCrashRestart:
    def test_crash_then_scheduled_restart(self):
        net, server, client, log = world()
        net.crash_host("server", downtime=30.0)
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        net.clock.advance(31.0)
        assert client.rpc(server.address, 7, b"x") == b"ok:x"
        assert net.metrics.total("faults.injected_total", kind="crash") == 1
        assert net.metrics.total("faults.injected_total", kind="restart") == 1

    def test_crash_without_downtime_stays_down(self):
        net, server, client, log = world()
        net.crash_host("server")
        net.clock.advance(3600.0)
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        net.restart_host("server")
        assert client.rpc(server.address, 7, b"x") == b"ok:x"

    def test_invalid_downtime(self):
        net, *_ = world()
        with pytest.raises(ValueError):
            net.crash_host("server", downtime=0.0)


class TestLossRule:
    """The loss_rate constructor shim is gone; Loss rules are the API."""

    def test_shim_removed(self):
        with pytest.raises(TypeError):
            Network(loss_rate=0.25)
        assert not hasattr(Network(), "loss_rate")

    def test_rule_add_and_remove(self):
        net = Network()
        rule = net.faults.add(Loss(0.25))
        assert len(net.faults.rules("loss")) == 1
        net.faults.remove(rule)
        assert len(net.faults.rules("loss")) == 0

    def test_drops_counted_with_loss_reason(self):
        net, server, client, _ = world(seed=7)
        net.faults.add(Loss(0.999999))
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
        assert net.metrics.total("net.drops_total", reason="loss") >= 1
        assert net.metrics.total("faults.injected_total", kind="loss") >= 1


class TestRulePause:
    def test_disabled_rule_is_inert(self):
        net, server, client, _ = world()
        rule = net.faults.add(Loss(1.0, Match.build(port=7)))
        rule.enabled = False
        assert client.rpc(server.address, 7, b"x") == b"ok:x"
        rule.enabled = True
        with pytest.raises(Unreachable):
            client.rpc(server.address, 7, b"x")
