"""Protocol tracer tests."""

import pytest

from repro.netsim import Network
from repro.realm import Realm
from repro.trace import ProtocolTracer, describe_payload

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    return net, realm, service


class TestTracer:
    def test_figure9_trace_shape(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        ws.client.get_credential(service)
        text = tracer.format()
        # The trace reads like Figure 9.
        assert "AS-REQ" in text
        assert "AS-REP" in text
        assert "TGS-REQ" in text
        assert "TGS-REP" in text
        assert len(tracer) == 4

    def test_sealed_parts_stay_sealed(self, world):
        """The tracer sees what any observer sees — descriptions name
        sealed blobs by size only."""
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        tgt = ws.client.kinit("jis", "jis-pw")
        assert "sealed" in tracer.format()
        assert tgt.session_key.key_bytes.hex() not in tracer.format()

    def test_error_replies_described(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            ws.client.kinit("nobody", "x")
        assert "ERROR" in tracer.format()

    def test_clear_and_detach(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        tracer.clear()
        assert len(tracer) == 0
        tracer.detach()
        ws.client.get_credential(service)
        assert len(tracer) == 0

    def test_non_kerberos_ports_show_sizes(self):
        assert describe_payload(b"hello", 109) == "[5 bytes]"

    def test_undecodable_kerberos_payload(self):
        assert "bytes" in describe_payload(b"\xff\xff", 750)
