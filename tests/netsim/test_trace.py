"""Protocol tracer tests."""

import pytest

from repro.netsim import Network
from repro.realm import Realm
from repro.trace import ProtocolTracer, describe_payload

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    return net, realm, service


class TestTracer:
    def test_figure9_trace_shape(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        ws.client.get_credential(service)
        text = tracer.format()
        # The trace reads like Figure 9.
        assert "AS-REQ" in text
        assert "AS-REP" in text
        assert "TGS-REQ" in text
        assert "TGS-REP" in text
        assert len(tracer) == 4

    def test_sealed_parts_stay_sealed(self, world):
        """The tracer sees what any observer sees — descriptions name
        sealed blobs by size only."""
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        tgt = ws.client.kinit("jis", "jis-pw")
        assert "sealed" in tracer.format()
        assert tgt.session_key.key_bytes.hex() not in tracer.format()

    def test_error_replies_described(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            ws.client.kinit("nobody", "x")
        assert "ERROR" in tracer.format()

    def test_clear_and_detach(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        tracer.clear()
        assert len(tracer) == 0
        tracer.detach()
        ws.client.get_credential(service)
        assert len(tracer) == 0

    def test_non_kerberos_ports_show_sizes(self):
        assert describe_payload(b"hello", 109) == "[5 bytes]"

    def test_undecodable_kerberos_payload(self):
        assert "bytes" in describe_payload(b"\xff\xff", 750)


class TestPayloadDirections:
    """Decoding triggers when *either* end is the Kerberos port."""

    @pytest.fixture
    def as_reply(self, world):
        net, realm, service = world
        captured = []
        net.add_tap(captured.append)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        net.remove_tap(captured.append)
        # Second datagram: the KDC's reply, 750 -> ephemeral.
        return captured[1]

    def test_reply_decoded_with_source_port(self, as_reply):
        assert as_reply.src_port == 750
        described = describe_payload(
            as_reply.payload, as_reply.dst_port, as_reply.src_port
        )
        assert described.startswith("AS-REP")

    def test_reply_decoded_without_source_port_legacy(self, as_reply):
        # Older callers pass only the destination; replies to the
        # ephemeral port are still tried.
        assert describe_payload(
            as_reply.payload, as_reply.dst_port
        ).startswith("AS-REP")

    def test_known_src_port_suppresses_non_kerberos_guess(self):
        # With both ports known and neither the KDC's, no decode attempt.
        assert describe_payload(b"hello", 0, 109) == "[5 bytes]"

    def test_request_ids_on_trace_records(self, world):
        net, realm, service = world
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        with net.tracer.span("login"):
            ws.client.kinit("jis", "jis-pw")
        assert all(
            r.request_id == "req-000001" for r in tracer.records
        )
        assert "rid=req-000001" in tracer.format()
