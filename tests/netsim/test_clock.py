"""Simulated clock tests: advancement, scheduling, per-host skew."""

import pytest

from repro.netsim import HostClock, SimClock
from repro.netsim.clock import HOUR, MINUTE


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(5.5)
        clock.advance(4.5)
        assert clock.now() == 10.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_call_at_fires_when_due(self):
        clock = SimClock()
        fired = []
        clock.call_at(10.0, lambda: fired.append(clock.now()))
        clock.advance(9.9)
        assert fired == []
        clock.advance(0.2)
        assert fired == [10.0]

    def test_call_at_fires_at_scheduled_instant(self):
        """A big jump still runs the callback at its scheduled time."""
        clock = SimClock()
        seen = []
        clock.call_at(3.0, lambda: seen.append(clock.now()))
        clock.advance(100.0)
        assert seen == [3.0]
        assert clock.now() == 100.0

    def test_call_at_in_past_rejected(self):
        clock = SimClock()
        clock.advance(10)
        with pytest.raises(ValueError):
            clock.call_at(5.0, lambda: None)

    def test_callbacks_fire_in_order(self):
        clock = SimClock()
        order = []
        clock.call_at(2.0, lambda: order.append("b"))
        clock.call_at(1.0, lambda: order.append("a"))
        clock.call_at(3.0, lambda: order.append("c"))
        clock.advance(5)
        assert order == ["a", "b", "c"]

    def test_same_time_callbacks_fifo(self):
        clock = SimClock()
        order = []
        clock.call_at(1.0, lambda: order.append(1))
        clock.call_at(1.0, lambda: order.append(2))
        clock.advance(2)
        assert order == [1, 2]

    def test_call_every_keeps_cadence(self):
        """Models the paper's hourly database dump (Fig. 13)."""
        clock = SimClock()
        dumps = []
        clock.call_every(HOUR, lambda: dumps.append(clock.now()))
        clock.advance(4 * HOUR)
        assert dumps == [HOUR, 2 * HOUR, 3 * HOUR, 4 * HOUR]

    def test_call_every_across_one_big_jump(self):
        clock = SimClock()
        count = []
        clock.call_every(1.0, lambda: count.append(None))
        clock.advance(10.0)
        assert len(count) == 10

    def test_call_every_invalid_interval(self):
        with pytest.raises(ValueError):
            SimClock().call_every(0, lambda: None)

    def test_callback_can_schedule_more(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append("first")
            clock.call_at(clock.now() + 1, lambda: fired.append("second"))

        clock.call_at(1.0, first)
        clock.advance(3.0)
        assert fired == ["first", "second"]

    def test_pending_callbacks(self):
        clock = SimClock()
        assert clock.pending_callbacks() == 0
        clock.call_at(1.0, lambda: None)
        assert clock.pending_callbacks() == 1
        clock.advance(2)
        assert clock.pending_callbacks() == 0


class TestHostClock:
    def test_no_skew_tracks_reference(self):
        ref = SimClock()
        host = HostClock(ref)
        ref.advance(42)
        assert host.now() == 42

    def test_positive_and_negative_skew(self):
        ref = SimClock(start=1000)
        fast = HostClock(ref, skew=3 * MINUTE)
        slow = HostClock(ref, skew=-3 * MINUTE)
        assert fast.now() == 1180
        assert slow.now() == 820

    def test_skew_is_mutable(self):
        """Tests drift a workstation's clock over a session."""
        ref = SimClock()
        host = HostClock(ref, skew=0)
        host.skew = 600
        assert host.now() == 600

    def test_reference_accessor(self):
        ref = SimClock()
        assert HostClock(ref).reference is ref

    def test_repr_shows_skew(self):
        assert "+60.0" in repr(HostClock(SimClock(), skew=60))
