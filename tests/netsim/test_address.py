"""IP address wire type tests."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import IPAddress


class TestParsing:
    def test_dotted_quad(self):
        assert IPAddress("18.72.0.5").as_int == (18 << 24) | (72 << 16) | 5

    def test_round_trip_text(self):
        assert str(IPAddress("128.95.1.4")) == "128.95.1.4"

    def test_from_int(self):
        assert str(IPAddress(0x12480005)) == "18.72.0.5"

    def test_copy_constructor(self):
        a = IPAddress("1.2.3.4")
        assert IPAddress(a) == a

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            IPAddress(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPAddress(2**32)
        with pytest.raises(ValueError):
            IPAddress(-1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            IPAddress(1.5)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_text_round_trip(self, value):
        assert IPAddress(str(IPAddress(value))).as_int == value


class TestEquality:
    def test_equal_addresses(self):
        assert IPAddress("10.0.0.1") == IPAddress("10.0.0.1")

    def test_compare_with_str_and_int(self):
        a = IPAddress("10.0.0.1")
        assert a == "10.0.0.1"
        assert a == a.as_int
        assert a != "10.0.0.2"

    def test_compare_with_garbage(self):
        assert IPAddress("10.0.0.1") != "not-an-address"
        assert IPAddress("10.0.0.1") != [1, 2]

    def test_hashable(self):
        assert len({IPAddress("1.1.1.1"), IPAddress("1.1.1.1")}) == 1

    def test_usable_as_dict_key(self):
        d = {IPAddress("1.2.3.4"): "ws1"}
        assert d[IPAddress("1.2.3.4")] == "ws1"

    def test_repr(self):
        assert repr(IPAddress("1.2.3.4")) == "IPAddress('1.2.3.4')"
