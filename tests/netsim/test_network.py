"""Network simulation: delivery, failures, attackers, statistics."""

import pytest

from repro.netsim import (
    Datagram,
    FaultError,
    IPAddress,
    Loss,
    Network,
    NoSuchService,
    SimClock,
    Unreachable,
)


def echo_upper(datagram):
    return datagram.payload.upper()


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def pair(net):
    client = net.add_host("ws1")
    server = net.add_host("srv1")
    server.bind(100, echo_upper)
    return client, server


class TestTopology:
    def test_auto_addresses_unique(self, net):
        hosts = [net.add_host(f"h{i}") for i in range(300)]
        assert len({h.address for h in hosts}) == 300

    def test_explicit_address(self, net):
        h = net.add_host("priam", address="18.72.0.5")
        assert h.address == IPAddress("18.72.0.5")

    def test_duplicate_name_rejected(self, net):
        net.add_host("ws1")
        with pytest.raises(ValueError):
            net.add_host("ws1")

    def test_duplicate_address_rejected(self, net):
        net.add_host("a", address="1.1.1.1")
        with pytest.raises(ValueError):
            net.add_host("b", address="1.1.1.1")

    def test_lookup_by_name_and_address(self, net):
        h = net.add_host("priam", address="18.72.0.5")
        assert net.host("priam") is h
        assert net.host_by_address("18.72.0.5") is h

    def test_unknown_lookups(self, net):
        with pytest.raises(KeyError):
            net.host("nope")
        with pytest.raises(KeyError):
            net.host_by_address("9.9.9.9")

    def test_hosts_listing(self, net):
        net.add_host("a")
        net.add_host("b")
        assert {h.name for h in net.hosts()} == {"a", "b"}

    def test_host_clock_skew(self, net):
        h = net.add_host("skewed", clock_skew=120.0)
        assert h.clock.now() == 120.0


class TestRpc:
    def test_round_trip(self, pair):
        client, server = pair
        assert client.rpc(server.address, 100, b"hello") == b"HELLO"

    def test_rpc_by_address_string(self, net):
        server = net.add_host("s", address="10.0.0.1")
        server.bind(7, lambda d: b"ok")
        client = net.add_host("c")
        assert client.rpc("10.0.0.1", 7, b"x") == b"ok"

    def test_unknown_host_unreachable(self, pair):
        client, _ = pair
        with pytest.raises(Unreachable):
            client.rpc("99.99.99.99", 100, b"x")

    def test_down_host_unreachable(self, net, pair):
        client, server = pair
        net.set_down("srv1")
        with pytest.raises(Unreachable):
            client.rpc(server.address, 100, b"x")
        net.set_up("srv1")
        assert client.rpc(server.address, 100, b"x") == b"X"

    def test_down_source_cannot_send(self, net, pair):
        client, server = pair
        net.set_down("ws1")
        with pytest.raises(Unreachable):
            client.rpc(server.address, 100, b"x")

    def test_unbound_port(self, pair):
        client, server = pair
        with pytest.raises(NoSuchService):
            client.rpc(server.address, 42, b"x")

    def test_handler_sees_source_address(self, net):
        seen = {}

        def handler(datagram):
            seen["src"] = datagram.src
            return b""

        server = net.add_host("s")
        server.bind(1, handler)
        client = net.add_host("c")
        client.rpc(server.address, 1, b"")
        assert seen["src"] == client.address

    def test_double_bind_rejected(self, net):
        h = net.add_host("s")
        h.bind(1, echo_upper)
        with pytest.raises(ValueError):
            h.bind(1, echo_upper)

    def test_unbind(self, net, pair):
        client, server = pair
        assert server.unbind(100) is True
        with pytest.raises(NoSuchService):
            client.rpc(server.address, 100, b"x")

    def test_unbind_free_port_reports_false(self, pair):
        _, server = pair
        assert server.unbind(42) is False

    def test_rebind_replaces_handler(self, net, pair):
        client, server = pair
        displaced = server.rebind(100, lambda d: d.payload.lower())
        assert displaced is echo_upper
        assert client.rpc(server.address, 100, b"MiXeD") == b"mixed"

    def test_rebind_free_port_returns_none(self, net, pair):
        client, server = pair
        assert server.rebind(200, echo_upper) is None
        assert client.rpc(server.address, 200, b"x") == b"X"

    def test_one_way_send_no_error_when_down(self, net, pair):
        client, server = pair
        net.set_down("srv1")
        client.send(server.address, 100, b"lost")  # must not raise

    def test_one_way_send_delivers(self, net):
        inbox = []
        server = net.add_host("s")
        server.bind(5, lambda d: inbox.append(d.payload))
        client = net.add_host("c")
        client.send(server.address, 5, b"notice")
        assert inbox == [b"notice"]


class TestLatencyAndLoss:
    def test_latency_advances_clock(self):
        net = Network(latency=0.005)
        server = net.add_host("s")
        server.bind(1, lambda d: b"ok")
        client = net.add_host("c")
        client.rpc(server.address, 1, b"x")
        # Two hops: request and reply.
        assert net.clock.now() == pytest.approx(0.010)

    def test_loss_causes_unreachable(self):
        net = Network(seed=7)
        net.faults.add(Loss(0.999999))
        server = net.add_host("s")
        server.bind(1, lambda d: b"ok")
        client = net.add_host("c")
        with pytest.raises(Unreachable):
            client.rpc(server.address, 1, b"x")

    def test_no_loss_rule_reliable(self):
        net = Network()
        server = net.add_host("s")
        server.bind(1, lambda d: b"ok")
        client = net.add_host("c")
        for _ in range(50):
            assert client.rpc(server.address, 1, b"x") == b"ok"

    def test_invalid_loss_rate(self):
        with pytest.raises(FaultError):
            Loss(1.5)

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            net = Network(seed=seed)
            net.faults.add(Loss(0.5))
            server = net.add_host("s")
            server.bind(1, lambda d: b"ok")
            client = net.add_host("c")
            outcomes = []
            for _ in range(20):
                try:
                    client.rpc(server.address, 1, b"x")
                    outcomes.append(True)
                except Unreachable:
                    outcomes.append(False)
            return outcomes

        assert run(3) == run(3)


class TestAttackers:
    def test_tap_sees_both_directions(self, net, pair):
        client, server = pair
        captured = []
        net.add_tap(captured.append)
        client.rpc(server.address, 100, b"secret")
        payloads = [d.payload for d in captured]
        assert payloads == [b"secret", b"SECRET"]

    def test_tap_removal(self, net, pair):
        client, server = pair
        captured = []
        net.add_tap(captured.append)
        net.remove_tap(captured.append.__self__.append if False else captured.append)
        client.rpc(server.address, 100, b"x")
        assert captured == []

    def test_interceptor_rewrites(self, net, pair):
        client, server = pair

        def flip(datagram):
            if datagram.dst_port == 100:
                return Datagram(
                    src=datagram.src,
                    src_port=datagram.src_port,
                    dst=datagram.dst,
                    dst_port=datagram.dst_port,
                    payload=b"tampered",
                )
            return datagram

        net.add_interceptor(flip)
        assert client.rpc(server.address, 100, b"real") == b"TAMPERED"

    def test_interceptor_drops(self, net, pair):
        client, server = pair
        net.add_interceptor(lambda d: None)
        with pytest.raises(Unreachable):
            client.rpc(server.address, 100, b"x")

    def test_interceptor_removal(self, net, pair):
        client, server = pair
        drop = lambda d: None
        net.add_interceptor(drop)
        net.remove_interceptor(drop)
        assert client.rpc(server.address, 100, b"x") == b"X"

    def test_inject_forged_source(self, net, pair):
        """Source-address forgery, as in the NFS appendix discussion."""
        _, server = pair
        forged = Datagram(
            src=IPAddress("66.66.66.66"),  # not a registered host
            src_port=0,
            dst=server.address,
            dst_port=100,
            payload=b"spoof",
        )
        assert net.inject(forged) == b"SPOOF"


class TestStats:
    def test_counts_messages_and_bytes(self, net, pair):
        client, server = pair
        client.rpc(server.address, 100, b"abcd")
        assert net.stats["messages"] == 2  # request + reply
        assert net.stats["bytes"] == 8  # 4 out, 4 back
        assert net.stats["port:100"] == 1

    def test_reset(self, net, pair):
        client, server = pair
        client.rpc(server.address, 100, b"x")
        net.reset_stats()
        assert net.stats["messages"] == 0

    def test_reply_port_counted_separately(self, net, pair):
        client, server = pair
        client.rpc(server.address, 100, b"x")
        assert net.stats["port:0"] == 1  # ephemeral reply port

    def test_stats_backed_by_registry(self, net, pair):
        """The classic stats view and the metrics registry agree — the
        registry is the single source of truth."""
        client, server = pair
        client.rpc(server.address, 100, b"abcd")
        assert net.metrics.total("net.datagrams_total") == net.stats["messages"]
        assert net.metrics.total("net.bytes_total") == net.stats["bytes"]
        assert net.metrics.total("net.datagrams_total", port="100") == 1

    def test_drops_counted_by_reason(self, net, pair):
        client, server = pair
        net.add_interceptor(lambda d: None)
        with pytest.raises(Unreachable):
            client.rpc(server.address, 100, b"x")
        assert net.metrics.total("net.drops_total", reason="intercepted") == 1
