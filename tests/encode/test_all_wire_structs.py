"""Every WireStruct in the repository round-trips under fuzzing.

Hypothesis builds random instances of every registered wire message
class, driven by the declared field kinds, and checks byte-exact
round-trips — one property covering the entire wire surface, including
structs added later (the registry is discovered by walking the modules).
"""

import importlib
import inspect

import pytest
from hypothesis import given, settings, strategies as st

from repro.encode import WireStruct
from repro.principal import Principal

MODULES = [
    "repro.core.messages",
    "repro.core.ticket",
    "repro.core.authenticator",
    "repro.kdbm.messages",
    "repro.replication.messages",
    "repro.apps.kerberized",
    "repro.apps.hesiod",
    "repro.apps.sms",
    "repro.apps.rlogin",
    "repro.apps.zephyr",
    "repro.apps.register",
    "repro.apps.nfs.protocol",
    "repro.database.schema",
    "repro.database.journal",
    "repro.principal",
]


def all_wire_structs():
    found = {}
    for name in MODULES:
        module = importlib.import_module(name)
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(cls, WireStruct)
                and cls is not WireStruct
                and cls.FIELDS
            ):
                found[f"{cls.__module__}.{cls.__qualname__}"] = cls
    return found


STRUCTS = all_wire_structs()

_principals = st.builds(
    Principal,
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    st.text(alphabet="ijklmnop", max_size=8),
    st.text(alphabet="QRSTUVWX.", max_size=12).filter(
        lambda s: not s.startswith(".")
    ),
)

_SCALARS = {
    "u8": st.integers(0, 2**8 - 1),
    "u16": st.integers(0, 2**16 - 1),
    "u32": st.integers(0, 2**32 - 1),
    "u64": st.integers(0, 2**64 - 1),
    "i32": st.integers(-(2**31), 2**31 - 1),
    "i64": st.integers(-(2**63), 2**63 - 1),
    "f64": st.floats(allow_nan=False),
    "bool": st.booleans(),
    "bytes": st.binary(max_size=40),
    "string": st.text(max_size=20),
}


def strategy_for(kind):
    if isinstance(kind, tuple) and len(kind) == 2 and kind[0] == "list":
        return st.lists(strategy_for(kind[1]), max_size=4)
    if isinstance(kind, str):
        if kind.startswith("list:"):
            return st.lists(strategy_for(kind[5:]), max_size=4)
        return _SCALARS[kind]
    if kind is Principal:
        return _principals
    if isinstance(kind, type) and issubclass(kind, WireStruct):
        return instance_of(kind)
    raise AssertionError(f"unhandled kind {kind!r}")


def instance_of(cls):
    return st.builds(
        lambda kw: cls(**kw),
        st.fixed_dictionaries(
            {f.name: strategy_for(f.kind) for f in cls.FIELDS}
        ),
    )


@pytest.mark.parametrize("name", sorted(STRUCTS), ids=lambda n: n.split(".")[-1])
def test_round_trip_fuzz(name):
    cls = STRUCTS[name]
    if cls is Principal:
        pytest.skip("Principal has its own richer tests")

    @given(instance_of(cls))
    @settings(max_examples=25, deadline=None)
    def check(instance):
        assert cls.from_bytes(instance.to_bytes()) == instance

    check()


def test_registry_is_substantial():
    """The walk actually found the protocol surface."""
    assert len(STRUCTS) >= 20, sorted(STRUCTS)
