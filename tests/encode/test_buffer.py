"""Unit and property tests for the binary encoder/decoder primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.encode import Decoder, DecodeError, Encoder, EncodeError
from repro.encode.buffer import MAX_FIELD_LENGTH


class TestIntegerRoundTrips:
    @pytest.mark.parametrize(
        "method,value",
        [
            ("u8", 0), ("u8", 255),
            ("u16", 0), ("u16", 65535),
            ("u32", 0), ("u32", 2**32 - 1),
            ("u64", 0), ("u64", 2**64 - 1),
            ("i32", -(2**31)), ("i32", 2**31 - 1), ("i32", 0),
            ("i64", -(2**63)), ("i64", 2**63 - 1),
        ],
    )
    def test_round_trip_bounds(self, method, value):
        enc = Encoder()
        getattr(enc, method)(value)
        dec = Decoder(enc.getvalue())
        assert getattr(dec, method)() == value
        dec.expect_eof()

    @pytest.mark.parametrize(
        "method,value",
        [
            ("u8", -1), ("u8", 256),
            ("u16", 65536),
            ("u32", 2**32), ("u32", -5),
            ("u64", 2**64),
            ("i32", 2**31), ("i32", -(2**31) - 1),
            ("i64", 2**63),
        ],
    )
    def test_out_of_range_rejected(self, method, value):
        with pytest.raises(EncodeError):
            getattr(Encoder(), method)(value)

    def test_non_int_rejected(self):
        with pytest.raises(EncodeError):
            Encoder().u32("5")

    def test_bool_is_not_an_int(self):
        with pytest.raises(EncodeError):
            Encoder().u8(True)

    def test_big_endian_layout(self):
        assert Encoder().u32(0x01020304).getvalue() == b"\x01\x02\x03\x04"
        assert Encoder().u16(0xBEEF).getvalue() == b"\xbe\xef"

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_u64_property(self, value):
        data = Encoder().u64(value).getvalue()
        assert Decoder(data).u64() == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_i32_property(self, value):
        data = Encoder().i32(value).getvalue()
        assert Decoder(data).i32() == value


class TestFloatsAndBools:
    @given(st.floats(allow_nan=False))
    def test_f64_property(self, value):
        data = Encoder().f64(value).getvalue()
        assert Decoder(data).f64() == value

    def test_f64_rejects_non_number(self):
        with pytest.raises(EncodeError):
            Encoder().f64("3.14")

    def test_boolean_round_trip(self):
        data = Encoder().boolean(True).boolean(False).getvalue()
        dec = Decoder(data)
        assert dec.boolean() is True
        assert dec.boolean() is False

    def test_boolean_strict_byte(self):
        with pytest.raises(DecodeError):
            Decoder(b"\x02").boolean()

    def test_boolean_rejects_int(self):
        with pytest.raises(EncodeError):
            Encoder().boolean(1)


class TestByteStrings:
    @given(st.binary(max_size=1024))
    def test_bytes_round_trip(self, data):
        wire = Encoder().bytes_(data).getvalue()
        dec = Decoder(wire)
        assert dec.bytes_() == data
        dec.expect_eof()

    @given(st.text(max_size=256))
    def test_string_round_trip(self, text):
        wire = Encoder().string(text).getvalue()
        assert Decoder(wire).string() == text

    def test_string_rejects_bytes(self):
        with pytest.raises(EncodeError):
            Encoder().string(b"not a str")

    def test_bytes_rejects_str(self):
        with pytest.raises(EncodeError):
            Encoder().bytes_("not bytes")

    def test_raw_has_no_prefix(self):
        assert Encoder().raw(b"abc").getvalue() == b"abc"

    def test_length_prefix_cap_encoding(self):
        with pytest.raises(EncodeError):
            # Fake oversized field without allocating 64 MiB: subclass check
            Encoder().bytes_(bytearray(MAX_FIELD_LENGTH + 1))

    def test_length_prefix_cap_decoding(self):
        wire = Encoder().u32(MAX_FIELD_LENGTH + 1).getvalue()
        with pytest.raises(DecodeError):
            Decoder(wire).bytes_()

    def test_invalid_utf8_rejected(self):
        wire = Encoder().bytes_(b"\xff\xfe\xfd").getvalue()
        with pytest.raises(DecodeError):
            Decoder(wire).string()


class TestDecoderStrictness:
    def test_short_read(self):
        with pytest.raises(DecodeError):
            Decoder(b"\x00\x01").u32()

    def test_trailing_garbage_detected(self):
        dec = Decoder(b"\x01\x02")
        dec.u8()
        with pytest.raises(DecodeError):
            dec.expect_eof()

    def test_truncated_bytes_field(self):
        wire = Encoder().u32(100).getvalue() + b"short"
        with pytest.raises(DecodeError):
            Decoder(wire).bytes_()

    def test_rest_consumes_everything(self):
        dec = Decoder(b"\x01rest-of-message")
        dec.u8()
        assert dec.rest() == b"rest-of-message"
        assert dec.eof()

    def test_negative_raw_read(self):
        with pytest.raises(DecodeError):
            Decoder(b"abc").raw(-1)

    def test_remaining_counts_down(self):
        dec = Decoder(b"\x00" * 10)
        assert dec.remaining() == 10
        dec.u32()
        assert dec.remaining() == 6

    def test_decoder_rejects_non_bytes(self):
        with pytest.raises(DecodeError):
            Decoder("a string")


class TestLists:
    def test_list_round_trip(self):
        wire = Encoder().list_of([1, 2, 3], lambda e, v: e.u16(v)).getvalue()
        assert Decoder(wire).list_of(lambda d: d.u16()) == [1, 2, 3]

    def test_empty_list(self):
        wire = Encoder().list_of([], lambda e, v: e.u8(v)).getvalue()
        assert Decoder(wire).list_of(lambda d: d.u8()) == []

    def test_absurd_count_rejected(self):
        wire = Encoder().u32(10_000_000).getvalue()
        with pytest.raises(DecodeError):
            Decoder(wire).list_of(lambda d: d.u8())


class TestComposition:
    @given(
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=64),
        st.text(max_size=32),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_mixed_sequence_round_trip(self, a, b, c, d):
        enc = Encoder()
        enc.u8(a).bytes_(b).string(c).i32(d)
        dec = Decoder(enc.getvalue())
        assert dec.u8() == a
        assert dec.bytes_() == b
        assert dec.string() == c
        assert dec.i32() == d
        dec.expect_eof()

    def test_encoder_len(self):
        enc = Encoder()
        assert len(enc) == 0
        enc.u32(1)
        assert len(enc) == 4

    def test_chaining_returns_encoder(self):
        enc = Encoder()
        assert enc.u8(1).u16(2).u32(3) is enc
