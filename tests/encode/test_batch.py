"""Batch framing: zero-copy reads, in-place writes, exact sizing."""

import pytest

from repro.core.messages import AsRequest, MessageType, encode_message
from repro.encode import (
    BatchReader,
    BatchWriter,
    DecodeError,
    Decoder,
    pack_frames,
)
from repro.principal import Principal


def _as_request(i: int) -> AsRequest:
    return AsRequest(
        client=Principal(f"user{i}", "", "ATHENA.MIT.EDU"),
        service=Principal("krbtgt", "ATHENA.MIT.EDU", "ATHENA.MIT.EDU"),
        requested_life=300.0 * i,
        timestamp=float(i),
    )


@pytest.fixture
def payloads():
    return [
        encode_message(MessageType.AS_REQ, _as_request(i)) for i in range(6)
    ]


class TestBatchReader:
    def test_roundtrip_preserves_every_frame(self, payloads):
        frames = BatchReader(pack_frames(payloads)).frames()
        assert [bytes(f) for f in frames] == payloads

    def test_frames_are_views_into_the_buffer(self, payloads):
        """Zero-copy: each frame is a memoryview over the one buffer,
        not a per-message bytes object."""
        buffer = pack_frames(payloads)
        for frame in BatchReader(buffer):
            assert isinstance(frame, memoryview)
            assert frame.obj is buffer

    def test_empty_buffer_is_an_empty_batch(self):
        assert BatchReader(b"").frames() == []

    def test_truncated_final_payload(self, payloads):
        """The last frame's payload is cut short: typed error naming the
        frame, after the complete frames were yielded."""
        buffer = pack_frames(payloads)
        reader = iter(BatchReader(buffer[:-4]))
        for _ in range(len(payloads) - 1):
            next(reader)
        with pytest.raises(DecodeError, match="truncated frame 5"):
            next(reader)

    def test_truncated_length_prefix(self, payloads):
        buffer = pack_frames(payloads) + b"\x00\x00"
        with pytest.raises(DecodeError, match="length prefix"):
            BatchReader(buffer).frames()

    def test_absurd_length_prefix_rejected(self):
        buffer = (1 << 31).to_bytes(4, "big")
        with pytest.raises(DecodeError, match="exceeds maximum"):
            BatchReader(buffer).frames()

    def test_non_buffer_rejected(self):
        with pytest.raises(DecodeError):
            BatchReader(["not", "bytes"])


class TestDecoderOverViews:
    def test_decoder_accepts_memoryview_without_copy(self, payloads):
        buffer = pack_frames(payloads)
        frame = BatchReader(buffer).frames()[2]
        dec = Decoder(frame)
        assert dec._data is frame  # stored as the view, not re-copied
        assert dec.u8() == int(MessageType.AS_REQ)
        request = AsRequest.decode_from(dec)
        dec.expect_eof()
        assert request == _as_request(2)

    def test_view_short_read_raises(self):
        dec = Decoder(memoryview(b"\x00\x01"))
        with pytest.raises(DecodeError, match="short read"):
            dec.u32()


class TestBatchWriter:
    def test_matches_encode_message_per_item(self, payloads):
        writer = BatchWriter()
        for i in range(6):
            writer.add(MessageType.AS_REQ, _as_request(i))
        assert [bytes(v) for v in writer.finish()] == payloads

    def test_single_backing_buffer(self):
        writer = BatchWriter()
        for i in range(4):
            writer.add(MessageType.AS_REQ, _as_request(i))
        views = writer.finish()
        assert len({id(v.obj) for v in views}) == 1
        assert sum(len(v) for v in views) == len(views[0].obj)

    def test_empty_batch(self):
        assert BatchWriter().finish() == []


class TestWireSize:
    def test_wire_size_matches_encoding(self):
        for i in range(5):
            msg = _as_request(i)
            assert msg.wire_size() == len(msg.to_bytes())

    def test_wire_size_covers_nested_structs(self):
        from repro.core.ticket import Ticket

        ticket = Ticket(
            server=Principal("rlogin", "priam", "ATHENA.MIT.EDU"),
            client=Principal("jis", "", "ATHENA.MIT.EDU"),
            address=0x12480063,
            timestamp=100.0,
            life=300.0,
            session_key=b"\x01\x02\x03\x04\x05\x06\x07\x08",
        )
        assert ticket.wire_size() == len(ticket.to_bytes())

    def test_wire_size_covers_bytes_and_strings(self):
        from repro.database.journal import JournalEntry

        entry = JournalEntry(
            seq=3, time=2.5, op=1, key="jis", value=b"\x01" * 13
        )
        assert entry.wire_size() == len(entry.to_bytes())
