"""Frozen byte-exact encodings of every protocol message (Figures 2-13).

The property tests in :mod:`tests.encode.test_all_wire_structs` prove
that encoders and decoders agree with *each other*; they cannot notice a
change that breaks both sides symmetrically (reordered fields, a widened
integer, a different length prefix).  These vectors pin the wire bytes
themselves: every message of the paper's figures, built from fixed
inputs with the deterministic crypto, compared hex-for-hex against
fixtures checked into ``golden_vectors.json``.

A vector failing means the wire format changed.  If the change is
intentional (a protocol revision), regenerate the fixtures::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python tests/encode/test_golden_vectors.py

and review the diff of ``golden_vectors.json`` in the same commit as the
format change.  Without the environment flag the script refuses to
write, so fixtures cannot be clobbered by accident.

Mutation smoke-check (run by hand when touching this suite): swapping
the ``timestamp``/``life`` fields of ``Ticket.FIELDS`` fails the
``fig3_*`` vectors, every vector embedding a sealed ticket, and
``test_builds_are_decodable``; changing ``PropKind.DELTA`` to 3 fails
``fig13_delta_envelope``; adding a field to ``Authenticator`` turns the
suite red at vector construction.  Each perturbation was verified to
fail this suite while the round-trip fuzz suite stayed green on the
same mutant — exactly the gap these vectors exist to close.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.authenticator import Authenticator, build_authenticator
from repro.core.messages import (
    ApReply,
    ApRequest,
    AsRequest,
    ErrorReply,
    KdcReply,
    KdcReplyBody,
    PreauthAsRequest,
    TgsRequest,
    build_preauth,
)
from repro.core.safe_priv import krb_mk_priv, krb_mk_safe
from repro.core.ticket import Ticket, seal_ticket
from repro.crypto import cbc_mac, string_to_key
from repro.database import KerberosDatabase, MasterKey
from repro.database.journal import OP_DELETE, OP_PUT, JournalEntry, default_epoch
from repro.database.schema import PrincipalRecord
from repro.kdbm.messages import (
    AdminOperation,
    AdminReplyBody,
    AdminRequestBody,
    KdbmRequest,
)
from repro.netsim import IPAddress
from repro.principal import Principal
from repro.replication.messages import (
    DeltaBody,
    DeltaReply,
    DeltaStatus,
    DeltaTransfer,
    PropKind,
    PropReply,
    PropTransfer,
    encode_prop_message,
)

FIXTURE_PATH = Path(__file__).with_name("golden_vectors.json")

# -- fixed inputs (never change these: the vectors derive from them) ----------

REALM = "ATHENA.MIT.EDU"
USER = Principal("jis", "", REALM)
TGS = Principal("krbtgt", REALM, REALM)
SERVICE = Principal("rlogin", "priam", REALM)
ADMIN_SERVER = Principal("changepw", "kerberos", REALM)

K_USER = string_to_key("golden-user-pw")
K_SERVICE = string_to_key("golden-service-pw")
K_TGS = string_to_key("golden-tgs-pw")
K_SESSION = string_to_key("golden-session")

WS_ADDR = IPAddress("18.72.0.15")
T0 = 1000.0
LIFE = 5 * 3600.0


def _ticket() -> Ticket:
    return Ticket(
        server=SERVICE,
        client=USER,
        address=WS_ADDR.as_int,
        timestamp=T0,
        life=LIFE,
        session_key=K_SESSION.key_bytes,
    )


def _golden_db() -> KerberosDatabase:
    db = KerberosDatabase(REALM, MasterKey.from_password("golden-master"))
    db.add_principal(USER, password="golden-user-pw", now=T0)
    db.add_principal(SERVICE, key=K_SERVICE, now=T0 + 1)
    return db


def build_vectors() -> dict:
    """Every Figure 2-13 message, from fixed inputs.  Deterministic:
    ``seal``/``cbc_mac`` use no randomness, and keys derive from fixed
    passwords."""
    vectors = {}

    def add(name, encoded):
        vectors[name] = bytes(encoded).hex()

    # Figure 2: the database record (one row, key sealed in the master key).
    db = _golden_db()
    add("fig2_principal_record", db.store.get("jis"))
    add(
        "fig2_record_struct",
        PrincipalRecord(
            name="jis", instance="", sealed_key=b"\x01" * 16, key_version=1,
            expiration=T0 + 365 * 86400.0, max_life=LIFE, attributes=0,
            mod_time=T0, mod_by="kadmin",
        ).to_bytes(),
    )

    # Figure 3: the ticket, plaintext and sealed in the server's key.
    ticket = _ticket()
    add("fig3_ticket", ticket.to_bytes())
    sealed_ticket = seal_ticket(ticket, K_SERVICE)
    add("fig3_sealed_ticket", sealed_ticket)

    # Figure 4: the authenticator, plaintext and sealed in the session key.
    add(
        "fig4_authenticator",
        Authenticator(
            client=USER, address=WS_ADDR.as_int, timestamp=T0, checksum=7
        ).to_bytes(),
    )
    auth = build_authenticator(USER, WS_ADDR, T0, K_SESSION, checksum=7)
    add("fig4_sealed_authenticator", auth)

    # Figure 5: getting the initial (ticket-granting) ticket.
    add(
        "fig5_as_request",
        AsRequest(
            client=USER, service=TGS, requested_life=LIFE, timestamp=T0
        ).to_bytes(),
    )
    add(
        "fig5_preauth_as_request",
        PreauthAsRequest(
            client=USER, service=TGS, requested_life=LIFE, timestamp=T0,
            preauth=build_preauth(K_USER, T0),
        ).to_bytes(),
    )
    tgt = seal_ticket(
        Ticket(
            server=TGS, client=USER, address=WS_ADDR.as_int,
            timestamp=T0, life=LIFE, session_key=K_SESSION.key_bytes,
        ),
        K_TGS,
    )
    reply_body = KdcReplyBody(
        session_key=K_SESSION.key_bytes, server=TGS, issue_time=T0,
        life=LIFE, kvno=1, request_timestamp=T0, ticket=tgt,
    )
    add("fig5_kdc_reply_body", reply_body.to_bytes())
    add("fig5_as_reply", KdcReply.build(USER, reply_body, K_USER).to_bytes())

    # Figure 8: requesting a service ticket from the TGS.
    add(
        "fig8_tgs_request",
        TgsRequest(
            service=SERVICE, requested_life=LIFE, timestamp=T0 + 10,
            tgt_realm=REALM, tgt=tgt,
            authenticator=build_authenticator(USER, WS_ADDR, T0 + 10, K_SESSION),
        ).to_bytes(),
    )

    # Figures 6-7: requesting a service / mutual authentication.
    add(
        "fig6_ap_request",
        ApRequest(
            ticket=sealed_ticket, authenticator=auth, mutual=True, kvno=1
        ).to_bytes(),
    )
    add("fig7_ap_reply", ApReply.build(T0, K_SESSION).to_bytes())

    # Error replies (any server, all exchanges).
    add("error_reply", ErrorReply(code=32, text="ticket expired").to_bytes())

    # Section 6.2: safe and private application messages.
    add(
        "safe_message",
        krb_mk_safe(b"golden safe payload", K_SESSION, WS_ADDR, T0).to_bytes(),
    )
    add(
        "priv_message",
        krb_mk_priv(b"golden private payload", K_SESSION, WS_ADDR, T0).to_bytes(),
    )

    # Figure 12: the administration protocol.
    admin_body = AdminRequestBody(
        operation=AdminOperation.CHANGE_PASSWORD, target=USER,
        new_password="golden-new-pw", max_life=0.0,
    )
    add("fig12_admin_request_body", admin_body.to_bytes())
    admin_ap = ApRequest(
        ticket=seal_ticket(
            Ticket(
                server=ADMIN_SERVER, client=USER, address=WS_ADDR.as_int,
                timestamp=T0, life=255.0, session_key=K_SESSION.key_bytes,
            ),
            K_SERVICE,
        ),
        authenticator=auth, mutual=False, kvno=1,
    )
    add(
        "fig12_kdbm_request",
        KdbmRequest(
            ap_request=admin_ap.to_bytes(),
            private_body=krb_mk_priv(
                admin_body.to_bytes(), K_SESSION, WS_ADDR, T0
            ).to_bytes(),
        ).to_bytes(),
    )
    add(
        "fig12_admin_reply_body",
        AdminReplyBody(ok=True, code=0, text="password changed").to_bytes(),
    )

    # Figure 13: database propagation — full dump and delta.
    dump = db.dump(now=T0 + 60)
    add("fig13_full_dump", dump)
    full = PropTransfer(checksum=db.master_key.checksum(dump), dump=dump)
    add("fig13_prop_transfer", full.to_bytes())
    add("fig13_full_envelope", encode_prop_message(PropKind.FULL, full))
    add(
        "fig13_prop_reply",
        PropReply(ok=True, records=2, applied_time=T0 + 61, text="").to_bytes(),
    )

    entries = [
        JournalEntry(seq=3, time=T0 + 70, op=OP_PUT, key="jis",
                     value=db.store.get("jis")),
        JournalEntry(seq=4, time=T0 + 80, op=OP_DELETE, key="old-user",
                     value=b""),
    ]
    add("fig13_journal_entry", entries[0].to_bytes())
    delta_body = DeltaBody(
        epoch=default_epoch(REALM), from_seq=2, to_seq=4, time=T0 + 90,
        entries=entries,
    )
    add("fig13_delta_body", delta_body.to_bytes())
    delta = DeltaTransfer(
        checksum=db.master_key.checksum(delta_body.to_bytes()),
        body=delta_body.to_bytes(),
    )
    add("fig13_delta_transfer", delta.to_bytes())
    add("fig13_delta_envelope", encode_prop_message(PropKind.DELTA, delta))
    add(
        "fig13_delta_reply",
        DeltaReply(
            status=DeltaStatus.OK, applied_seq=4, applied_time=T0 + 91, text=""
        ).to_bytes(),
    )

    # The raw checksum primitive the Figure 13 trust model rests on.
    add("cbc_mac_primitive", cbc_mac(K_SESSION, b"golden checksum input"))

    return vectors


def load_fixtures() -> dict:
    assert FIXTURE_PATH.exists(), (
        f"{FIXTURE_PATH} missing — generate it with "
        "REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python "
        "tests/encode/test_golden_vectors.py"
    )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


FIXTURES = load_fixtures() if FIXTURE_PATH.exists() else {}
VECTORS = build_vectors()


def test_fixture_file_exists():
    load_fixtures()


def test_vector_sets_match():
    """No vector silently added or dropped without regenerating."""
    assert set(VECTORS) == set(FIXTURES)


@pytest.mark.parametrize("name", sorted(VECTORS))
def test_golden(name):
    assert name in FIXTURES, f"new vector {name!r}: regenerate fixtures"
    assert VECTORS[name] == FIXTURES[name], (
        f"wire encoding of {name!r} changed; if intentional, regenerate "
        "fixtures and review the hex diff"
    )


def test_vectors_are_deterministic():
    """Building twice gives identical bytes — no hidden randomness, so
    the fixtures are reproducible on any machine."""
    assert build_vectors() == VECTORS


def test_builds_are_decodable():
    """The frozen bytes still parse (fixtures are not write-only)."""
    ticket_hex = FIXTURES.get("fig3_ticket")
    if ticket_hex:
        assert Ticket.from_bytes(bytes.fromhex(ticket_hex)) == _ticket()


def regenerate() -> None:
    FIXTURE_PATH.write_text(
        json.dumps(build_vectors(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(VECTORS)} vectors to {FIXTURE_PATH}")


if __name__ == "__main__":
    if os.environ.get("REPRO_REGEN_GOLDEN") != "1":
        raise SystemExit(
            "refusing to regenerate golden vectors without "
            "REPRO_REGEN_GOLDEN=1 (a format change must be deliberate)"
        )
    regenerate()
