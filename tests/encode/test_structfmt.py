"""Tests for declarative WireStruct serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.encode import Decoder, DecodeError, EncodeError, Encoder, WireStruct, field


class Point(WireStruct):
    FIELDS = (field("x", "i32"), field("y", "i32"))


class Packet(WireStruct):
    FIELDS = (
        field("kind", "u8"),
        field("name", "string"),
        field("payload", "bytes"),
        field("origin", Point),
        field("tags", "list:string"),
        field("when", "f64"),
        field("urgent", "bool"),
    )


def make_packet(**overrides):
    values = dict(
        kind=3,
        name="rlogin.priam",
        payload=b"\x01\x02\x03",
        origin=Point(x=-5, y=42),
        tags=["a", "b"],
        when=1234.5,
        urgent=True,
    )
    values.update(overrides)
    return Packet(**values)


class TestConstruction:
    def test_missing_field_rejected(self):
        with pytest.raises(TypeError, match="missing"):
            Point(x=1)

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown"):
            Point(x=1, y=2, z=3)

    def test_repr_contains_fields(self):
        assert "x=1" in repr(Point(x=1, y=2))

    def test_equality_by_value(self):
        assert Point(x=1, y=2) == Point(x=1, y=2)
        assert Point(x=1, y=2) != Point(x=1, y=3)

    def test_equality_requires_same_type(self):
        class Point2(WireStruct):
            FIELDS = (field("x", "i32"), field("y", "i32"))

        assert Point(x=1, y=2) != Point2(x=1, y=2)

    def test_hashable(self):
        assert len({Point(x=1, y=2), Point(x=1, y=2)}) == 1

    def test_replace(self):
        p = Point(x=1, y=2).replace(y=9)
        assert (p.x, p.y) == (1, 9)


class TestSerialization:
    def test_round_trip(self):
        pkt = make_packet()
        assert Packet.from_bytes(pkt.to_bytes()) == pkt

    def test_nested_struct_round_trip(self):
        pkt = make_packet(origin=Point(x=2**31 - 1, y=-(2**31)))
        out = Packet.from_bytes(pkt.to_bytes())
        assert out.origin == pkt.origin

    def test_empty_list_round_trip(self):
        pkt = make_packet(tags=[])
        assert Packet.from_bytes(pkt.to_bytes()).tags == []

    def test_trailing_bytes_rejected(self):
        data = make_packet().to_bytes() + b"\x00"
        with pytest.raises(DecodeError):
            Packet.from_bytes(data)

    def test_truncated_rejected(self):
        data = make_packet().to_bytes()[:-3]
        with pytest.raises(DecodeError):
            Packet.from_bytes(data)

    def test_deterministic_encoding(self):
        assert make_packet().to_bytes() == make_packet().to_bytes()

    def test_wrong_nested_type_rejected(self):
        pkt = make_packet()
        pkt.origin = "not a point"
        with pytest.raises(EncodeError):
            pkt.to_bytes()

    def test_list_field_must_be_list(self):
        pkt = make_packet()
        pkt.tags = "ab"
        with pytest.raises(EncodeError):
            pkt.to_bytes()

    @given(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_point_property_round_trip(self, x, y):
        p = Point(x=x, y=y)
        assert Point.from_bytes(p.to_bytes()) == p

    @given(
        st.text(max_size=40),
        st.binary(max_size=40),
        st.lists(st.text(max_size=10), max_size=5),
        st.floats(allow_nan=False),
        st.booleans(),
    )
    def test_packet_property_round_trip(self, name, payload, tags, when, urgent):
        pkt = make_packet(
            name=name, payload=payload, tags=tags, when=when, urgent=urgent
        )
        assert Packet.from_bytes(pkt.to_bytes()) == pkt


class TestKindErrors:
    def test_unknown_kind_encode(self):
        class Bad(WireStruct):
            FIELDS = (field("v", "u7"),)

        with pytest.raises(EncodeError):
            Bad(v=1).to_bytes()

    def test_unknown_kind_decode(self):
        class Bad(WireStruct):
            FIELDS = (field("v", "u7"),)

        with pytest.raises(DecodeError):
            Bad.from_bytes(b"\x00")

    def test_list_count_bomb_rejected(self):
        # u32 count claiming 2**31 items must not attempt the loop.
        data = Encoder().u32(2**31).getvalue()
        dec = Decoder(data)

        class Tags(WireStruct):
            FIELDS = (field("tags", "list:u8"),)

        with pytest.raises(DecodeError):
            Tags.decode_from(dec)

    def test_encode_into_partial_stream(self):
        enc = Encoder()
        enc.u8(0xAA)
        Point(x=1, y=2).encode_into(enc)
        dec = Decoder(enc.getvalue())
        assert dec.u8() == 0xAA
        assert Point.decode_from(dec) == Point(x=1, y=2)
