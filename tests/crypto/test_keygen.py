"""Session key generation (paper Sections 2.1 and 6.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DesKey, KeyGenerator, check_parity, is_weak_key


class TestKeyGenerator:
    def test_deterministic_from_seed(self):
        a = KeyGenerator(seed=b"athena")
        b = KeyGenerator(seed=b"athena")
        assert [a.session_key() for _ in range(5)] == [
            b.session_key() for _ in range(5)
        ]

    def test_different_seeds_diverge(self):
        assert (
            KeyGenerator(seed=b"athena").session_key()
            != KeyGenerator(seed=b"lcs").session_key()
        )

    def test_stream_has_no_short_cycles(self):
        gen = KeyGenerator(seed=b"cycle-check")
        keys = [gen.session_key().key_bytes for _ in range(200)]
        assert len(set(keys)) == 200

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_keys_always_valid(self, seed):
        gen = KeyGenerator(seed=seed)
        for _ in range(5):
            k = gen.session_key()
            assert isinstance(k, DesKey)
            assert check_parity(k.key_bytes)
            assert not is_weak_key(k.key_bytes)

    def test_random_bytes_length(self):
        gen = KeyGenerator(seed=b"rb")
        for n in (0, 1, 7, 8, 9, 100):
            assert len(gen.random_bytes(n)) == n

    def test_random_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            KeyGenerator(seed=b"x").random_bytes(-1)

    def test_random_bytes_advance_state(self):
        gen = KeyGenerator(seed=b"rb2")
        assert gen.random_bytes(16) != gen.random_bytes(16)

    def test_random_u32_range(self):
        gen = KeyGenerator(seed=b"u32")
        values = [gen.random_u32() for _ in range(50)]
        assert all(0 <= v < 2**32 for v in values)
        assert len(set(values)) > 45  # essentially all distinct

    def test_fork_is_independent(self):
        base = KeyGenerator(seed=b"realm")
        kdc1 = base.fork(b"slave-1")
        kdc2 = base.fork(b"slave-2")
        assert kdc1.session_key() != kdc2.session_key()

    def test_fork_deterministic(self):
        a = KeyGenerator(seed=b"realm").fork(b"slave-1")
        b = KeyGenerator(seed=b"realm").fork(b"slave-1")
        assert a.session_key() == b.session_key()

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            KeyGenerator(seed="string seed")

    def test_default_seed_works(self):
        assert isinstance(KeyGenerator().session_key(), DesKey)

    def test_output_bits_balanced(self):
        """Crude sanity check of the DRBG: ones density near 50%."""
        gen = KeyGenerator(seed=b"balance")
        data = gen.random_bytes(4096)
        ones = sum(bin(b).count("1") for b in data)
        assert 0.45 < ones / (8 * len(data)) < 0.55
