"""Bit-permutation machinery: compiled tables vs. a naive reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bits import (
    apply_permutation,
    bytes_to_int,
    compile_permutation,
    int_to_bytes,
    reverse_block_bits,
    rotate_left_28,
)


def naive_permutation(table, in_width, value):
    """Bit-at-a-time reference implementation."""
    out = 0
    out_width = len(table)
    for out_pos, in_pos in enumerate(table):
        bit = (value >> (in_width - in_pos)) & 1
        out |= bit << (out_width - 1 - out_pos)
    return out


class TestCompiledPermutations:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.randoms())
    @settings(max_examples=30)
    def test_matches_naive_random_table(self, value, rng):
        table = [rng.randint(1, 32) for _ in range(48)]
        compiled = compile_permutation(table, 32)
        assert apply_permutation(compiled, value) == naive_permutation(
            table, 32, value
        )

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=30)
    def test_identity_table(self, value):
        table = list(range(1, 65))
        compiled = compile_permutation(table, 64)
        assert apply_permutation(compiled, value) == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=30)
    def test_reversal_table(self, value):
        table = list(range(64, 0, -1))
        compiled = compile_permutation(table, 64)
        once = apply_permutation(compiled, value)
        assert apply_permutation(compiled, once) == value  # involution

    def test_width_must_be_byte_aligned(self):
        with pytest.raises(ValueError):
            compile_permutation([1, 2, 3], 12)

    def test_table_entry_out_of_range(self):
        with pytest.raises(ValueError):
            compile_permutation([9], 8)
        with pytest.raises(ValueError):
            compile_permutation([0], 8)

    def test_expansion_table(self):
        """A table can repeat inputs (DES's E expands 32 -> 48)."""
        table = [1, 1, 2, 2, 3, 3, 4, 4]
        compiled = compile_permutation(table, 8)
        # input 1010 0000 -> pairs (1,1,0,0,1,1,0,0)? bits 1..4 = 1,0,1,0
        assert apply_permutation(compiled, 0b10100000) == 0b11001100


class TestRotation:
    @given(st.integers(min_value=0, max_value=2**28 - 1),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_full_rotation_is_identity(self, value, count):
        out = value
        # 28 single rotations return to start.
        for _ in range(28):
            out = rotate_left_28(out, 1)
        assert out == value

    @given(st.integers(min_value=0, max_value=2**28 - 1))
    def test_rotate_by_28_is_identity(self, value):
        assert rotate_left_28(value, 28) == value

    def test_known_rotation(self):
        assert rotate_left_28(1 << 27, 1) == 1
        assert rotate_left_28(1, 1) == 2


class TestHelpers:
    @given(st.binary(min_size=8, max_size=8))
    def test_reverse_block_bits_involution(self, block):
        assert reverse_block_bits(reverse_block_bits(block)) == block

    def test_reverse_block_bits_known(self):
        assert reverse_block_bits(b"\x80" + bytes(7)) == bytes(7) + b"\x01"
        assert reverse_block_bits(bytes(8)) == bytes(8)

    def test_reverse_block_bits_length_check(self):
        with pytest.raises(ValueError):
            reverse_block_bits(b"short")

    @given(st.binary(min_size=8, max_size=8))
    def test_bytes_int_round_trip(self, data):
        assert int_to_bytes(bytes_to_int(data), 8) == data
