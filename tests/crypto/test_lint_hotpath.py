"""Hot-loop lint: no per-block bytes/int conversion under ``repro.crypto``.

PR 3's tentpole moved the block-mode inner loops into the integer domain:
a message is converted bytes→int64 once (``struct.unpack``), the mode
loop chains pure-int ``crypt_int`` calls, and the result is packed back
once.  The old shape — ``bytes_to_int``/``int_to_bytes`` called on every
block *inside* the loop — is exactly the churn the rewrite removed, and
it is the easiest regression to reintroduce while editing a mode.

This AST walk bans calls to either converter (plus ``int.from_bytes`` /
``.to_bytes``) inside any ``for``/``while`` body in ``src/repro/crypto``.
``reference.py`` is exempt by design: it *is* the preserved byte-path,
kept for A/B benchmarking and the bit-exactness suite
(``tests/crypto/test_perf_kernels.py``).
"""

import ast
from pathlib import Path

CRYPTO = Path(__file__).resolve().parents[2] / "src" / "repro" / "crypto"

#: The preserved pre-optimization path — per-block conversion is its point.
EXEMPT = {"reference.py"}

FORBIDDEN_NAMES = {"bytes_to_int", "int_to_bytes"}
FORBIDDEN_ATTRS = {"from_bytes", "to_bytes"}


def _call_label(func) -> str:
    if isinstance(func, ast.Name) and func.id in FORBIDDEN_NAMES:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in FORBIDDEN_ATTRS:
        return f".{func.attr}()"
    return ""


def _violations(path: Path) -> list:
    """(lineno, call) for every banned conversion inside a loop body."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                label = _call_label(inner.func)
                if label:
                    found.append((inner.lineno, label))
    # A nested loop is walked twice (once via its parent); dedup.
    return sorted(set(found))


def test_no_per_block_conversion_in_crypto_loops():
    modules = sorted(CRYPTO.glob("*.py"))
    assert modules, f"no modules found under {CRYPTO}"
    bad = {}
    for path in modules:
        if path.name in EXEMPT:
            continue
        violations = _violations(path)
        if violations:
            bad[path.name] = violations
    assert not bad, (
        "per-block bytes<->int conversion inside a crypto loop "
        "(convert the whole message once, outside the loop):\n"
        + "\n".join(
            f"  {mod}:{line}: {what}"
            for mod, calls in bad.items()
            for line, what in calls
        )
    )


def test_exempt_reference_path_would_be_flagged():
    """The lint has teeth: the preserved byte-path itself violates it."""
    reference = CRYPTO / "reference.py"
    assert reference.exists()
    assert _violations(reference), (
        "reference.py no longer trips the lint — if it was rewritten in "
        "the int domain it is no longer the byte-path baseline the A/B "
        "benchmark claims to measure"
    )


def test_lint_catches_a_planted_offender(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "def f(key, data):\n"
        "    out = []\n"
        "    for i in range(0, len(data), 8):\n"
        "        block = bytes_to_int(data[i:i + 8])\n"
        "        out.append(int_to_bytes(block, 8))\n"
        "    n = int.from_bytes(data[:8], 'big')\n"  # outside a loop: fine
        "    while n:\n"
        "        n = int.from_bytes(data[:4], 'big') - 1\n"
        "    return out\n"
    )
    labels = {what for _, what in _violations(planted)}
    assert labels == {"bytes_to_int()", "int_to_bytes()", ".from_bytes()"}


# --------------------------------------------------------------------------
# ISSUE 8 extension: the batch framing path must stay zero-copy.
#
# ``repro.encode.batch`` slices every datagram out of the receive buffer
# as a memoryview and encodes every reply into one preallocated output
# buffer.  A ``bytes(...)`` call inside any of its loops (or
# comprehensions) is a per-datagram copy creeping back in — the exact
# allocation churn the batch plane exists to remove.
# --------------------------------------------------------------------------

ENCODE_BATCH = (
    Path(__file__).resolve().parents[2] / "src" / "repro" / "encode"
    / "batch.py"
)

_LOOPY = (
    ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
    ast.GeneratorExp,
)


def _bytes_copies_in_loops(path: Path) -> list:
    """(lineno, source) for every ``bytes(...)`` call in a loop body."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, _LOOPY):
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in {"bytes", "bytearray"}
            ):
                found.append((inner.lineno, f"{inner.func.id}()"))
    return sorted(set(found))


def test_no_per_datagram_copy_in_batch_framing():
    assert ENCODE_BATCH.exists(), f"missing {ENCODE_BATCH}"
    violations = _bytes_copies_in_loops(ENCODE_BATCH)
    assert not violations, (
        "per-datagram bytes/bytearray copy inside a batch framing loop "
        "(frames must stay memoryviews over the one buffer):\n"
        + "\n".join(
            f"  batch.py:{line}: {what}" for line, what in violations
        )
    )


def test_batch_copy_lint_catches_a_planted_offender(tmp_path):
    planted = tmp_path / "offender.py"
    planted.write_text(
        "def frames(buffer):\n"
        "    out = []\n"
        "    pos = 0\n"
        "    while pos < len(buffer):\n"
        "        out.append(bytes(buffer[pos:pos + 8]))\n"
        "        pos += 8\n"
        "    copies = [bytearray(f) for f in out]\n"
        "    header = bytes(8)  # outside any loop: fine\n"
        "    return out, copies, header\n"
    )
    violations = _bytes_copies_in_loops(planted)
    assert {what for _, what in violations} == {"bytes()", "bytearray()"}
    assert all(line != 8 for line, _ in violations)
