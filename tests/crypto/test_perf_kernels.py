"""The optimized hot-path kernels are bit-exact against the reference path.

PR 3 rewrote the DES round function (``crypt_int``: byte-indexed E tables
and 12-bit paired SP tables, fully unrolled) and moved the block modes
into the integer domain.  The original byte-at-a-time implementations
survive as :func:`repro.crypto.des.crypt_int_ref` and
:mod:`repro.crypto.reference`, and this suite pins the two paths against
each other — randomized sweeps plus hypothesis properties — so any future
"optimization" that drifts a single bit fails here, not in a realm.

The key-schedule cache (:mod:`repro.crypto.keycache`) is covered here
too: identity of cached keys, LRU eviction, the disable switch used by
the A/B benchmark, and metric attachment.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DesKey, Mode, keycache, seal, unseal
from repro.crypto.des import crypt_int, crypt_int_ref, _key_schedule
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pcbc_decrypt,
    pcbc_encrypt,
)
from repro.crypto.reference import (
    REF_DECRYPTORS,
    REF_ENCRYPTORS,
    cbc_decrypt_ref,
    cbc_encrypt_ref,
    ecb_decrypt_ref,
    ecb_encrypt_ref,
    pcbc_decrypt_ref,
    pcbc_encrypt_ref,
    reference_kernels,
)
from repro.crypto.string2key import string_to_key

keys = st.binary(min_size=8, max_size=8).map(
    lambda b: DesKey(b, allow_weak=True)
)
ivs = st.binary(min_size=8, max_size=8)
aligned = st.binary(min_size=8, max_size=128).map(
    lambda b: b + b"\x00" * ((-len(b)) % 8)
)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCryptIntAgainstReference:
    """The unrolled table kernel computes exactly what the loop kernel did."""

    def test_fips_46_vector(self):
        key = DesKey(bytes.fromhex("133457799BBCDFF1"))
        cipher = key.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert cipher.hex() == "85e813540f0ab405"

    @given(st.binary(min_size=8, max_size=8), blocks64)
    @settings(max_examples=60)
    def test_encrypt_matches_reference(self, key_bytes, block):
        subkeys = _key_schedule(key_bytes)
        assert crypt_int(block, subkeys) == crypt_int_ref(block, subkeys)

    @given(st.binary(min_size=8, max_size=8), blocks64)
    @settings(max_examples=60)
    def test_decrypt_matches_reference(self, key_bytes, block):
        subkeys = tuple(reversed(_key_schedule(key_bytes)))
        assert crypt_int(block, subkeys) == crypt_int_ref(block, subkeys)

    def test_seeded_sweep(self):
        """A deterministic thousand-block sweep beyond hypothesis's budget."""
        rng = random.Random(1988)
        for _ in range(1000):
            subkeys = _key_schedule(rng.randbytes(8))
            block = rng.getrandbits(64)
            out = crypt_int(block, subkeys)
            assert out == crypt_int_ref(block, subkeys)
            back = crypt_int(out, tuple(reversed(subkeys)))
            assert back == block


class TestModesAgainstReference:
    """Int-domain mode loops produce byte-identical ciphertext to the
    per-block byte-slicing loops they replaced."""

    @given(keys, aligned)
    @settings(max_examples=30)
    def test_ecb(self, key, data):
        cipher = ecb_encrypt(key, data)
        assert cipher == ecb_encrypt_ref(key, data)
        assert ecb_decrypt(key, cipher) == ecb_decrypt_ref(key, cipher)

    @given(keys, ivs, aligned)
    @settings(max_examples=30)
    def test_cbc(self, key, iv, data):
        cipher = cbc_encrypt(key, data, iv)
        assert cipher == cbc_encrypt_ref(key, data, iv)
        assert cbc_decrypt(key, cipher, iv) == cbc_decrypt_ref(key, cipher, iv)

    @given(keys, ivs, aligned)
    @settings(max_examples=30)
    def test_pcbc(self, key, iv, data):
        cipher = pcbc_encrypt(key, data, iv)
        assert cipher == pcbc_encrypt_ref(key, data, iv)
        assert pcbc_decrypt(key, cipher, iv) == pcbc_decrypt_ref(key, cipher, iv)

    def test_reference_tables_cover_every_mode(self):
        assert set(REF_ENCRYPTORS) == set(Mode)
        assert set(REF_DECRYPTORS) == set(Mode)

    @given(keys, st.binary(min_size=0, max_size=96))
    @settings(max_examples=30)
    def test_seal_interoperates_across_kernel_swap(self, key, payload):
        """Ciphertext sealed on the optimized path opens under the
        reference kernels and vice versa — the swap changes speed only."""
        sealed_fast = seal(key, payload)
        with reference_kernels():
            assert unseal(key, sealed_fast) == payload
            sealed_ref = seal(key, sealed_fast)  # nested framing, why not
        assert unseal(key, unseal(key, sealed_ref)) == payload

    def test_misaligned_input_still_rejected(self):
        key = DesKey(bytes.fromhex("0123456789ABCDEF"), allow_weak=True)
        with pytest.raises(ValueError):
            ecb_encrypt(key, b"seven b")
        with pytest.raises(ValueError):
            pcbc_decrypt(key, b"123456789")


class TestKeyScheduleCache:
    @pytest.fixture(autouse=True)
    def _clean_cache(self):
        keycache.clear()
        keycache.reset_stats()
        yield
        keycache.clear()
        keycache.reset_stats()

    def test_from_bytes_reuses_the_schedule(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        first = DesKey.from_bytes(raw)
        second = DesKey.from_bytes(raw)
        assert first is second
        assert keycache.stats() == {"hit": 1, "miss": 1}

    def test_weakness_flag_is_part_of_the_cache_key(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        strict = DesKey.from_bytes(raw)
        lenient = DesKey.from_bytes(raw, allow_weak=True)
        assert strict is not lenient
        assert strict == lenient  # same key bytes, distinct schedule objects

    def test_cached_key_equals_direct_construction(self):
        raw = bytes.fromhex("0123456789ABCDEF")
        cached = DesKey.from_bytes(raw, allow_weak=True)
        direct = DesKey(raw, allow_weak=True)
        assert cached == direct
        assert cached._enc_subkeys == direct._enc_subkeys

    def test_lru_evicts_oldest(self):
        small = keycache._LruCache(2)
        small.put("a", 1)
        small.put("b", 2)
        assert small.get("a") == 1  # refresh "a": "b" is now oldest
        small.put("c", 3)
        assert small.get("b") is None
        assert small.get("a") == 1 and small.get("c") == 3

    def test_caches_disabled_contextmanager(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        DesKey.from_bytes(raw)
        with keycache.caches_disabled():
            assert not keycache.caching_enabled()
            a = DesKey.from_bytes(raw)
            b = DesKey.from_bytes(raw)
            assert a is not b  # every call re-schedules
        assert keycache.caching_enabled()
        # Entering the context cleared the cache: the next call misses.
        before = keycache.stats()["miss"]
        DesKey.from_bytes(raw)
        assert keycache.stats()["miss"] == before + 1

    def test_string_to_key_is_memoized(self):
        keycache.reset_stats()
        k1 = string_to_key("hunter2", "ATHENA.MIT.EDU")
        k2 = string_to_key("hunter2", "ATHENA.MIT.EDU")
        assert k1 is k2
        assert keycache.stats()["hit"] >= 1
        # Different salt, different derivation.
        k3 = string_to_key("hunter2", "LCS.MIT.EDU")
        assert k3 is not k1

    def test_attach_metrics_counts_and_is_idempotent(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        keycache.attach_metrics(registry)
        keycache.attach_metrics(registry)  # second attach: no double count
        raw = bytes.fromhex("0123456789ABCDEF")
        DesKey.from_bytes(raw, allow_weak=True)
        DesKey.from_bytes(raw, allow_weak=True)
        assert registry.total("crypto.keyschedule_total", result="miss") == 1
        assert registry.total("crypto.keyschedule_total", result="hit") == 1
