"""The optimized hot-path kernels are bit-exact against the reference path.

PR 3 rewrote the DES round function (``crypt_int``: byte-indexed E tables
and 12-bit paired SP tables, fully unrolled) and moved the block modes
into the integer domain.  The original byte-at-a-time implementations
survive as :func:`repro.crypto.des.crypt_int_ref` and
:mod:`repro.crypto.reference`, and this suite pins the two paths against
each other — randomized sweeps plus hypothesis properties — so any future
"optimization" that drifts a single bit fails here, not in a realm.

The key-schedule cache (:mod:`repro.crypto.keycache`) is covered here
too: identity of cached keys, LRU eviction, the disable switch used by
the A/B benchmark, and metric attachment.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DesKey, Mode, keycache, seal, unseal
from repro.crypto.des import crypt_int, crypt_int_ref, _key_schedule
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pcbc_decrypt,
    pcbc_encrypt,
)
from repro.crypto.reference import (
    REF_DECRYPTORS,
    REF_ENCRYPTORS,
    cbc_decrypt_ref,
    cbc_encrypt_ref,
    ecb_decrypt_ref,
    ecb_encrypt_ref,
    pcbc_decrypt_ref,
    pcbc_encrypt_ref,
    reference_kernels,
)
from repro.crypto.string2key import string_to_key

keys = st.binary(min_size=8, max_size=8).map(
    lambda b: DesKey(b, allow_weak=True)
)
ivs = st.binary(min_size=8, max_size=8)
aligned = st.binary(min_size=8, max_size=128).map(
    lambda b: b + b"\x00" * ((-len(b)) % 8)
)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCryptIntAgainstReference:
    """The unrolled table kernel computes exactly what the loop kernel did."""

    def test_fips_46_vector(self):
        key = DesKey(bytes.fromhex("133457799BBCDFF1"))
        cipher = key.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert cipher.hex() == "85e813540f0ab405"

    @given(st.binary(min_size=8, max_size=8), blocks64)
    @settings(max_examples=60)
    def test_encrypt_matches_reference(self, key_bytes, block):
        subkeys = _key_schedule(key_bytes)
        assert crypt_int(block, subkeys) == crypt_int_ref(block, subkeys)

    @given(st.binary(min_size=8, max_size=8), blocks64)
    @settings(max_examples=60)
    def test_decrypt_matches_reference(self, key_bytes, block):
        subkeys = tuple(reversed(_key_schedule(key_bytes)))
        assert crypt_int(block, subkeys) == crypt_int_ref(block, subkeys)

    def test_seeded_sweep(self):
        """A deterministic thousand-block sweep beyond hypothesis's budget."""
        rng = random.Random(1988)
        for _ in range(1000):
            subkeys = _key_schedule(rng.randbytes(8))
            block = rng.getrandbits(64)
            out = crypt_int(block, subkeys)
            assert out == crypt_int_ref(block, subkeys)
            back = crypt_int(out, tuple(reversed(subkeys)))
            assert back == block


class TestModesAgainstReference:
    """Int-domain mode loops produce byte-identical ciphertext to the
    per-block byte-slicing loops they replaced."""

    @given(keys, aligned)
    @settings(max_examples=30)
    def test_ecb(self, key, data):
        cipher = ecb_encrypt(key, data)
        assert cipher == ecb_encrypt_ref(key, data)
        assert ecb_decrypt(key, cipher) == ecb_decrypt_ref(key, cipher)

    @given(keys, ivs, aligned)
    @settings(max_examples=30)
    def test_cbc(self, key, iv, data):
        cipher = cbc_encrypt(key, data, iv)
        assert cipher == cbc_encrypt_ref(key, data, iv)
        assert cbc_decrypt(key, cipher, iv) == cbc_decrypt_ref(key, cipher, iv)

    @given(keys, ivs, aligned)
    @settings(max_examples=30)
    def test_pcbc(self, key, iv, data):
        cipher = pcbc_encrypt(key, data, iv)
        assert cipher == pcbc_encrypt_ref(key, data, iv)
        assert pcbc_decrypt(key, cipher, iv) == pcbc_decrypt_ref(key, cipher, iv)

    def test_reference_tables_cover_every_mode(self):
        assert set(REF_ENCRYPTORS) == set(Mode)
        assert set(REF_DECRYPTORS) == set(Mode)

    @given(keys, st.binary(min_size=0, max_size=96))
    @settings(max_examples=30)
    def test_seal_interoperates_across_kernel_swap(self, key, payload):
        """Ciphertext sealed on the optimized path opens under the
        reference kernels and vice versa — the swap changes speed only."""
        sealed_fast = seal(key, payload)
        with reference_kernels():
            assert unseal(key, sealed_fast) == payload
            sealed_ref = seal(key, sealed_fast)  # nested framing, why not
        assert unseal(key, unseal(key, sealed_ref)) == payload

    def test_misaligned_input_still_rejected(self):
        key = DesKey(bytes.fromhex("0123456789ABCDEF"), allow_weak=True)
        with pytest.raises(ValueError):
            ecb_encrypt(key, b"seven b")
        with pytest.raises(ValueError):
            pcbc_decrypt(key, b"123456789")


class TestKeyScheduleCache:
    @pytest.fixture(autouse=True)
    def _clean_cache(self):
        keycache.clear()
        keycache.reset_stats()
        yield
        keycache.clear()
        keycache.reset_stats()

    def test_from_bytes_reuses_the_schedule(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        first = DesKey.from_bytes(raw)
        second = DesKey.from_bytes(raw)
        assert first is second
        assert keycache.stats() == {"hit": 1, "miss": 1}

    def test_weakness_flag_is_part_of_the_cache_key(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        strict = DesKey.from_bytes(raw)
        lenient = DesKey.from_bytes(raw, allow_weak=True)
        assert strict is not lenient
        assert strict == lenient  # same key bytes, distinct schedule objects

    def test_cached_key_equals_direct_construction(self):
        raw = bytes.fromhex("0123456789ABCDEF")
        cached = DesKey.from_bytes(raw, allow_weak=True)
        direct = DesKey(raw, allow_weak=True)
        assert cached == direct
        assert cached._enc_subkeys == direct._enc_subkeys

    def test_lru_evicts_oldest(self):
        small = keycache._LruCache(2)
        small.put("a", 1)
        small.put("b", 2)
        assert small.get("a") == 1  # refresh "a": "b" is now oldest
        small.put("c", 3)
        assert small.get("b") is None
        assert small.get("a") == 1 and small.get("c") == 3

    def test_caches_disabled_contextmanager(self):
        raw = bytes.fromhex("133457799BBCDFF1")
        DesKey.from_bytes(raw)
        with keycache.caches_disabled():
            assert not keycache.caching_enabled()
            a = DesKey.from_bytes(raw)
            b = DesKey.from_bytes(raw)
            assert a is not b  # every call re-schedules
        assert keycache.caching_enabled()
        # Entering the context cleared the cache: the next call misses.
        before = keycache.stats()["miss"]
        DesKey.from_bytes(raw)
        assert keycache.stats()["miss"] == before + 1

    def test_string_to_key_is_memoized(self):
        keycache.reset_stats()
        k1 = string_to_key("hunter2", "ATHENA.MIT.EDU")
        k2 = string_to_key("hunter2", "ATHENA.MIT.EDU")
        assert k1 is k2
        assert keycache.stats()["hit"] >= 1
        # Different salt, different derivation.
        k3 = string_to_key("hunter2", "LCS.MIT.EDU")
        assert k3 is not k1

    def test_attach_metrics_counts_and_is_idempotent(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        keycache.attach_metrics(registry)
        keycache.attach_metrics(registry)  # second attach: no double count
        raw = bytes.fromhex("0123456789ABCDEF")
        DesKey.from_bytes(raw, allow_weak=True)
        DesKey.from_bytes(raw, allow_weak=True)
        assert registry.total("crypto.keyschedule_total", result="miss") == 1
        assert registry.total("crypto.keyschedule_total", result="hit") == 1


class TestInterleavedKernel:
    """The two-lane kernel (``crypt_int2``) is bit-exact against the
    reference round function, lane by lane."""

    @given(
        a=blocks64, b=blocks64,
        ka=st.binary(min_size=8, max_size=8),
        kb=st.binary(min_size=8, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_crypt_int2_matches_reference(self, a, b, ka, kb):
        from repro.crypto.des import crypt_int2

        sk_a = _key_schedule(ka)
        sk_b = _key_schedule(kb)
        ra, rb = crypt_int2(a, sk_a, b, sk_b)
        assert ra == crypt_int_ref(a, sk_a)
        assert rb == crypt_int_ref(b, sk_b)

    def test_lanes_are_independent(self):
        """Lane A's output never depends on lane B's block or key."""
        from repro.crypto.des import crypt_int2

        rng = random.Random(5)
        sk_a = _key_schedule(rng.randbytes(8))
        a = rng.getrandbits(64)
        baseline = crypt_int(a, sk_a)
        for _ in range(20):
            sk_b = _key_schedule(rng.randbytes(8))
            ra, _rb = crypt_int2(a, sk_a, rng.getrandbits(64), sk_b)
            assert ra == baseline


class TestBatchModes:
    """seal_many/unseal_many and the pcbc_*_many kernels are
    bit-identical to per-message calls, for every batch shape."""

    # K=1 exercises the single-lane fallback, K=2 the pure pair path,
    # odd/prime sizes the mixed tail.
    @pytest.mark.parametrize("count", [1, 2, 3, 7, 13])
    def test_seal_many_matches_singles(self, count):
        from repro.crypto import seal_many

        rng = random.Random(count)
        items = [
            (
                DesKey(rng.randbytes(8), allow_weak=True),
                rng.randbytes(rng.randrange(0, 220)),
            )
            for _ in range(count)
        ]
        assert seal_many(items) == [seal(k, d) for k, d in items]

    @pytest.mark.parametrize("count", [1, 2, 5, 11])
    def test_unseal_many_roundtrip(self, count):
        from repro.crypto import seal_many, unseal_many

        rng = random.Random(count * 31)
        items = [
            (
                DesKey(rng.randbytes(8), allow_weak=True),
                rng.randbytes(rng.randrange(0, 100)),
            )
            for _ in range(count)
        ]
        sealed = seal_many(items)
        opened = unseal_many(
            [(k, blob) for (k, _d), blob in zip(items, sealed)]
        )
        assert opened == [d for _k, d in items]

    def test_unseal_many_bad_item_does_not_poison_batch(self):
        from repro.crypto import IntegrityError, seal_many, unseal_many

        rng = random.Random(8)
        keys_ = [DesKey(rng.randbytes(8), allow_weak=True) for _ in range(5)]
        datas = [rng.randbytes(40) for _ in range(5)]
        sealed = seal_many(list(zip(keys_, datas)))
        wrong_key = DesKey(rng.randbytes(8), allow_weak=True)
        items = [
            (keys_[0], sealed[0]),
            (wrong_key, sealed[1]),          # wrong key: bad magic
            (keys_[2], sealed[2][:-8]),      # truncated: frame too short
            (keys_[3], sealed[3][:-3]),      # misaligned length
            (keys_[4], sealed[4]),
        ]
        out = unseal_many(items)
        assert out[0] == datas[0] and out[4] == datas[4]
        for i in (1, 2, 3):
            assert isinstance(out[i], IntegrityError)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_pcbc_many_matches_singles(self, data):
        from repro.crypto import pcbc_decrypt_many, pcbc_encrypt_many

        rng = random.Random(data.draw(st.integers(0, 2**32)))
        count = data.draw(st.integers(min_value=1, max_value=6))
        items = [
            (
                DesKey(rng.randbytes(8), allow_weak=True),
                rng.randbytes(8 * rng.randrange(0, 12)),
            )
            for _ in range(count)
        ]
        sealed = pcbc_encrypt_many(items)
        assert sealed == [pcbc_encrypt(k, d) for k, d in items]
        opened = pcbc_decrypt_many(
            [(k, c) for (k, _d), c in zip(items, sealed)]
        )
        assert opened == [d for _k, d in items]

    def test_interleaved_blocks_counter_advances(self):
        from repro.crypto import seal_many
        from repro.crypto.modes import interleaved_blocks

        rng = random.Random(2)
        items = [
            (DesKey(rng.randbytes(8), allow_weak=True), rng.randbytes(64))
            for _ in range(4)
        ]
        before = interleaved_blocks()
        seal_many(items)
        assert interleaved_blocks() > before


class TestSplitSealing:
    """Skeleton sealing: prefix state + resume == one-shot seal."""

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_resume_matches_full_seal(self, data):
        from repro.crypto import seal_prefix_state, seal_resume

        rng = random.Random(data.draw(st.integers(0, 2**32)))
        key = DesKey(rng.randbytes(8), allow_weak=True)
        payload = rng.randbytes(data.draw(st.integers(0, 160)))
        cut = data.draw(st.integers(0, len(payload) // 8)) * 8
        state = seal_prefix_state(key, len(payload), payload[:cut])
        assert seal_resume(key, state, payload[cut:]) == seal(key, payload)

    def test_resume_many_matches_singles(self):
        from repro.crypto import (
            seal_prefix_state,
            seal_resume,
            seal_resume_many,
        )

        rng = random.Random(77)
        jobs = []
        for _ in range(7):
            key = DesKey(rng.randbytes(8), allow_weak=True)
            payload = rng.randbytes(rng.randrange(16, 120))
            cut = rng.randrange(0, len(payload) // 8) * 8
            state = seal_prefix_state(key, len(payload), payload[:cut])
            jobs.append((key, state, payload[cut:]))
        assert seal_resume_many(jobs) == [
            seal_resume(k, s, suf) for k, s, suf in jobs
        ]


class TestSkeletonCache:
    """The sealed-ticket skeleton layer rides the keycache switch."""

    def test_put_get_and_stats(self):
        keycache.clear()
        keycache.reset_stats()
        keycache.skeleton_put(("k", 10, b"p"), (b"cp", 3))
        assert keycache.skeleton_get(("k", 10, b"p")) == (b"cp", 3)
        assert keycache.skeleton_get(("other",)) is None
        stats = keycache.skeleton_stats()
        assert stats["hit"] == 1 and stats["miss"] == 1

    def test_caches_disabled_bypasses_skeletons(self):
        keycache.skeleton_put(("live",), (b"x", 0))
        with keycache.caches_disabled():
            # Disabled: no reads, and writes are dropped.
            assert keycache.skeleton_get(("live",)) is None
            keycache.skeleton_put(("while-off",), (b"y", 1))
        assert keycache.skeleton_get(("while-off",)) is None

    def test_invalidate_drops_everything(self):
        keycache.skeleton_put(("a",), (b"", 0))
        keycache.skeleton_put(("b",), (b"", 0))
        assert keycache.invalidate_skeletons() >= 2
        assert keycache.skeleton_stats()["size"] == 0


class TestWideLanes:
    """The numpy wide-lane kernel (``des_simd``) behind seal_many.

    Batches of >= ``modes.WIDE_MIN_LANES`` jobs take the vectorized
    path; these tests pin it bit-exact against the scalar kernels,
    including ragged lengths (active-lane shrink + scalar tails).
    """

    def setup_method(self):
        from repro.crypto import des_simd

        if not des_simd.available():
            pytest.skip("numpy not available; wide path disabled")

    def test_crypt_wide_matches_scalar_kernel(self):
        from repro.crypto import des_simd

        rng = random.Random(9)
        keys = [
            DesKey(rng.randbytes(8), allow_weak=True) for _ in range(40)
        ]
        blocks = [rng.getrandbits(64) for _ in range(40)]
        km = des_simd.keymat([k._enc_subkeys for k in keys])
        out = des_simd.crypt_wide(
            des_simd._np.array(blocks, dtype=des_simd._np.uint64), km
        )
        assert out.tolist() == [
            crypt_int(b, k._enc_subkeys) for b, k in zip(blocks, keys)
        ]

    def test_seal_many_wide_ragged_lengths(self):
        from repro.crypto import seal_many
        from repro.crypto.modes import WIDE_MIN_LANES

        rng = random.Random(10)
        items = [
            (
                DesKey(rng.randbytes(8), allow_weak=True),
                rng.randbytes(rng.randrange(0, 200)),
            )
            for _ in range(WIDE_MIN_LANES + 9)
        ]
        assert seal_many(items) == [seal(k, d) for k, d in items]

    def test_seal_many_wide_uniform_lengths(self):
        from repro.crypto import seal_many
        from repro.crypto.modes import interleaved_blocks

        rng = random.Random(11)
        items = [
            (DesKey(rng.randbytes(8), allow_weak=True), rng.randbytes(96))
            for _ in range(64)
        ]
        before = interleaved_blocks()
        assert seal_many(items) == [seal(k, d) for k, d in items]
        assert interleaved_blocks() > before

    def test_seal_resume_many_wide(self):
        from repro.crypto import (
            seal_prefix_state,
            seal_resume,
            seal_resume_many,
        )
        from repro.crypto.modes import WIDE_MIN_LANES

        rng = random.Random(12)
        jobs = []
        for _ in range(WIDE_MIN_LANES + 3):
            key = DesKey(rng.randbytes(8), allow_weak=True)
            payload = rng.randbytes(rng.randrange(16, 160))
            cut = rng.randrange(0, len(payload) // 8) * 8
            state = seal_prefix_state(key, len(payload), payload[:cut])
            jobs.append((key, state, payload[cut:]))
        assert seal_resume_many(jobs) == [
            seal_resume(k, s, suf) for k, s, suf in jobs
        ]
