"""DES correctness: published vectors, parity, weak keys, properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.des import (
    BLOCK_SIZE,
    DesKey,
    KeyError_,
    WEAK_KEYS,
    check_parity,
    fix_parity,
    is_weak_key,
)


# Published DES test vectors: (key, plaintext, ciphertext) in hex.
KNOWN_VECTORS = [
    # The classic FIPS walk-through vector (Stallings / FIPS 46 example).
    ("133457799BBCDFF1", "0123456789ABCDEF", "85E813540F0AB405"),
    # Well-known all-zero-ciphertext vector.
    ("0E329232EA6D0D73", "8787878787878787", "0000000000000000"),
]


class TestKnownVectors:
    @pytest.mark.parametrize("key,plain,cipher", KNOWN_VECTORS)
    def test_encrypt(self, key, plain, cipher):
        k = DesKey(bytes.fromhex(key))
        assert k.encrypt_block(bytes.fromhex(plain)).hex() == cipher.lower()

    @pytest.mark.parametrize("key,plain,cipher", KNOWN_VECTORS)
    def test_decrypt(self, key, plain, cipher):
        k = DesKey(bytes.fromhex(key))
        assert k.decrypt_block(bytes.fromhex(cipher)).hex() == plain.lower()

    def test_all_zero_key_and_block(self):
        # The historical all-zeros vector (weak key, allowed explicitly).
        k = DesKey(bytes(8), allow_weak=True)
        c = k.encrypt_block(bytes(8))
        assert c.hex() == "8ca64de9c1b123a7"

    @pytest.mark.parametrize(
        "plain,cipher",
        [
            # NBS variable-plaintext known-answer test (first five rows),
            # key 01 01 01 01 01 01 01 01.
            ("8000000000000000", "95F8A5E5DD31D900"),
            ("4000000000000000", "DD7F121CA5015619"),
            ("2000000000000000", "2E8653104F3834EA"),
            ("1000000000000000", "4BD388FF6CD81D4F"),
            ("0800000000000000", "20B9E767B2FB1456"),
        ],
    )
    def test_nbs_variable_plaintext_vectors(self, plain, cipher):
        k = DesKey(bytes.fromhex("0101010101010101"), allow_weak=True)
        assert k.encrypt_block(bytes.fromhex(plain)).hex().upper() == cipher
        assert k.decrypt_block(bytes.fromhex(cipher)).hex().upper() == plain.upper()


class TestProperties:
    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=50)
    def test_round_trip(self, key, block):
        k = DesKey(key, allow_weak=True)
        assert k.decrypt_block(k.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=25)
    def test_complementation_property(self, key, block):
        """DES(~K, ~P) == ~DES(K, P) — a structural property of DES."""
        k = DesKey(key, allow_weak=True)
        kc = DesKey(bytes(b ^ 0xFF for b in fix_parity(key)), allow_weak=True)
        c = k.encrypt_block(block)
        cc = kc.encrypt_block(bytes(b ^ 0xFF for b in block))
        assert cc == bytes(b ^ 0xFF for b in c)

    @given(st.binary(min_size=8, max_size=8))
    @settings(max_examples=25)
    def test_encryption_is_permutation(self, key):
        """Distinct plaintexts map to distinct ciphertexts."""
        k = DesKey(key, allow_weak=True)
        blocks = [i.to_bytes(8, "big") for i in range(16)]
        cipher = {k.encrypt_block(b) for b in blocks}
        assert len(cipher) == len(blocks)

    def test_avalanche(self):
        """Flipping one plaintext bit changes roughly half the output bits."""
        k = DesKey(bytes.fromhex("133457799BBCDFF1"))
        a = k.encrypt_block(bytes(8))
        b = k.encrypt_block(b"\x80" + bytes(7))
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 16 <= diff <= 48  # ~32 expected out of 64


class TestKeyHandling:
    def test_wrong_length_rejected(self):
        with pytest.raises(KeyError_):
            DesKey(b"short")

    def test_non_bytes_rejected(self):
        with pytest.raises(KeyError_):
            DesKey("16-char-pass-str")

    def test_parity_normalized_on_entry(self):
        # Parity bits are ignored: keys differing only in parity bits are equal.
        k1 = DesKey(bytes.fromhex("133457799BBCDFF1"))
        k2 = DesKey(bytes.fromhex("123456789ABCDEF0"))
        assert k1 == k2  # low bits differ, 56 effective bits identical

    def test_weak_key_rejected_by_default(self):
        with pytest.raises(KeyError_):
            DesKey(bytes.fromhex("0101010101010101"))

    def test_weak_key_allowed_explicitly(self):
        k = DesKey(bytes.fromhex("0101010101010101"), allow_weak=True)
        # Defining property of a weak key: encryption == decryption.
        block = b"12345678"
        assert k.decrypt_block(block) == k.encrypt_block(block)

    def test_semi_weak_rejected(self):
        with pytest.raises(KeyError_):
            DesKey(bytes.fromhex("01FE01FE01FE01FE"))

    def test_block_length_enforced(self):
        k = DesKey(bytes.fromhex("133457799BBCDFF1"))
        with pytest.raises(ValueError):
            k.encrypt_block(b"short")
        with pytest.raises(ValueError):
            k.decrypt_block(b"nine bytes!"[:9])

    def test_repr_hides_key_material(self):
        k = DesKey(bytes.fromhex("133457799BBCDFF1"))
        assert "133457" not in repr(k).lower()
        assert "13 34" not in repr(k)

    def test_equality_and_hash(self):
        k1 = DesKey(bytes.fromhex("133457799BBCDFF1"))
        k2 = DesKey(bytes.fromhex("133457799BBCDFF1"))
        assert k1 == k2 and hash(k1) == hash(k2)
        assert k1 != DesKey(bytes.fromhex("0E329232EA6D0D73"))
        assert k1 != "not a key"


class TestParityHelpers:
    @given(st.binary(min_size=8, max_size=8))
    def test_fix_parity_produces_odd_parity(self, raw):
        assert check_parity(fix_parity(raw))

    @given(st.binary(min_size=8, max_size=8))
    def test_fix_parity_idempotent(self, raw):
        once = fix_parity(raw)
        assert fix_parity(once) == once

    @given(st.binary(min_size=8, max_size=8))
    def test_fix_parity_preserves_high_bits(self, raw):
        fixed = fix_parity(raw)
        assert all((a & 0xFE) == (b & 0xFE) for a, b in zip(raw, fixed))

    def test_check_parity_wrong_length(self):
        with pytest.raises(KeyError_):
            check_parity(b"abc")

    def test_weak_key_table_has_16_entries(self):
        assert len(WEAK_KEYS) == 16

    def test_all_weak_keys_have_odd_parity(self):
        assert all(check_parity(k) for k in WEAK_KEYS)

    def test_is_weak_key(self):
        assert is_weak_key(bytes.fromhex("FEFEFEFEFEFEFEFE"))
        assert not is_weak_key(bytes.fromhex("133457799BBCDFF1"))
        with pytest.raises(KeyError_):
            is_weak_key(b"no")

    def test_is_weak_key_ignores_parity_bits(self):
        # 0x00.. has even parity; its parity-fixed form is the weak 0x01..
        assert is_weak_key(bytes(8))
