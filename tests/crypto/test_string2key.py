"""Password-to-key derivation (the paper's one-way function)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DesKey, check_parity, is_weak_key, string_to_key

# Real passwords contain no NULs; the historical algorithm NUL-pads, so
# "pw" and "pw\x00" deliberately collide (pinned in a test below).
passwords = st.text(min_size=1, max_size=40).filter(
    lambda s: s.strip() and "\x00" not in s
)


class TestStringToKey:
    def test_deterministic(self):
        assert (
            string_to_key("correct horse").key_bytes
            == string_to_key("correct horse").key_bytes
        )

    def test_returns_des_key(self):
        assert isinstance(string_to_key("zeroone"), DesKey)

    @given(passwords)
    @settings(max_examples=50)
    def test_always_valid_parity(self, pw):
        assert check_parity(string_to_key(pw).key_bytes)

    @given(passwords)
    @settings(max_examples=50)
    def test_never_weak(self, pw):
        assert not is_weak_key(string_to_key(pw).key_bytes)

    def test_different_passwords_different_keys(self):
        keys = {
            string_to_key(pw).key_bytes
            for pw in ("a", "b", "password", "Password", "password ", "pässword")
        }
        assert len(keys) == 6

    def test_long_password_folds(self):
        # Exercises multiple fan-fold iterations (forward and reversed).
        long_pw = "the quick brown fox jumps over the lazy dog" * 3
        k = string_to_key(long_pw)
        assert check_parity(k.key_bytes)

    def test_salt_changes_key(self):
        assert (
            string_to_key("pw", salt="ATHENA.MIT.EDU").key_bytes
            != string_to_key("pw", salt="LCS.MIT.EDU").key_bytes
        )
        assert (
            string_to_key("pw").key_bytes
            != string_to_key("pw", salt="ATHENA.MIT.EDU").key_bytes
        )

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            string_to_key("")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            string_to_key(b"bytes-password")

    def test_usable_for_encryption(self):
        """The derived key must actually drive the cipher (login flow)."""
        from repro.crypto import seal, unseal

        k = string_to_key("users secret")
        assert unseal(k, seal(k, b"TGT reply")) == b"TGT reply"

    def test_wrong_password_fails_decryption(self):
        """Paper 4.2: the wrong password cannot decrypt the AS reply."""
        from repro.crypto import IntegrityError, seal, unseal

        blob = seal(string_to_key("right"), b"TGT reply")
        with pytest.raises(IntegrityError):
            unseal(string_to_key("wrong"), blob)

    def test_known_golden_values(self):
        """Pin the derivation so the database format stays stable."""
        golden = {
            "zeroone": string_to_key("zeroone").key_bytes,
        }
        # Re-derive to confirm stability within a process; the value is
        # also used as the regression anchor across refactorings.
        for pw, key in golden.items():
            assert string_to_key(pw).key_bytes == key
            assert len(key) == 8

    @given(passwords, passwords)
    @settings(max_examples=30)
    def test_prefix_confusion_resisted(self, a, b):
        """pw1 + pw2 as one password differs from pw1 alone."""
        if a == a + b:
            return
        assert string_to_key(a + b).key_bytes != string_to_key(a).key_bytes

    def test_trailing_nul_collision_is_the_known_quirk(self):
        """The historical algorithm NUL-pads the password, so trailing
        NULs are invisible — a faithful quirk, pinned here so nobody
        "fixes" it into a wire-format break."""
        assert (
            string_to_key("pw").key_bytes
            == string_to_key("pw\x00").key_bytes
        )
