"""Additional property tests on the block modes: IV and cross-mode laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    DesKey,
    IntegrityError,
    Mode,
    cbc_decrypt,
    cbc_encrypt,
    pcbc_decrypt,
    pcbc_encrypt,
    seal,
    unseal,
)

keys = st.binary(min_size=8, max_size=8).map(
    lambda b: DesKey(b, allow_weak=True)
)
ivs = st.binary(min_size=8, max_size=8)
aligned = st.binary(min_size=8, max_size=128).map(
    lambda b: b + b"\x00" * ((-len(b)) % 8)
)


class TestIvLaws:
    @given(keys, ivs, aligned)
    @settings(max_examples=30)
    def test_cbc_round_trip_any_iv(self, key, iv, data):
        assert cbc_decrypt(key, cbc_encrypt(key, data, iv), iv) == data

    @given(keys, ivs, ivs, aligned)
    @settings(max_examples=30)
    def test_wrong_iv_corrupts_only_first_block_cbc(self, key, iv1, iv2, data):
        """CBC with the wrong IV garbles exactly the first block — a
        classic CBC property (and why IVs alone are not integrity)."""
        if iv1 == iv2:
            return
        cipher = cbc_encrypt(key, data, iv1)
        plain = cbc_decrypt(key, cipher, iv2)
        assert plain[8:] == data[8:]
        assert plain[:8] != data[:8]

    @given(keys, ivs, ivs, aligned)
    @settings(max_examples=30)
    def test_wrong_iv_corrupts_everything_pcbc(self, key, iv1, iv2, data):
        """PCBC propagates the IV error through the whole message."""
        if iv1 == iv2:
            return
        cipher = pcbc_encrypt(key, data, iv1)
        plain = pcbc_decrypt(key, cipher, iv2)
        # Every block is damaged.
        for i in range(0, len(data), 8):
            assert plain[i : i + 8] != data[i : i + 8]


class TestCrossModeLaws:
    @given(keys, st.binary(min_size=17, max_size=64))
    @settings(max_examples=30)
    def test_cross_mode_unseal_fails_for_nondegenerate_data(self, key, data):
        """Sealing in one mode and unsealing in another fails — for data
        whose blocks are not all-zero.  (CBC and PCBC differ per block by
        the previous *plaintext* block; if every data block is zero that
        difference vanishes and the trailer check passes with corrupted
        data — a documented edge of probabilistic integrity, pinned in
        the test below.)"""
        if all(b == 0 for b in data):
            return
        for enc_mode in Mode:
            blob = seal(key, data, mode=enc_mode)
            for dec_mode in Mode:
                if dec_mode == enc_mode:
                    assert unseal(key, blob, mode=dec_mode) == data
                    continue
                try:
                    result = unseal(key, blob, mode=dec_mode)
                except IntegrityError:
                    continue
                # Survivors must at least not be silently corrupted.
                assert result == data

    def test_the_all_zero_degenerate_case(self):
        """Document the known edge: an all-zero single-block payload
        sealed under PCBC *does* unseal under CBC (and vice versa),
        returning corrupted data, because zero plaintext blocks erase
        the modes' difference.  Real protocol messages always carry
        non-zero structure, but the edge is worth pinning so nobody
        mistakes seal/unseal for a MAC."""
        key = DesKey(bytes.fromhex("133457799BBCDFF1"))
        blob = seal(key, bytes(8), mode=Mode.PCBC)
        result = unseal(key, blob, mode=Mode.CBC)
        assert result != bytes(8)  # accepted, but corrupted

    @given(keys, keys, st.binary(max_size=64))
    @settings(max_examples=30)
    def test_distinct_keys_never_cross_unseal(self, k1, k2, data):
        if k1 == k2:
            return
        blob = seal(k1, data)
        with pytest.raises(IntegrityError):
            unseal(k2, blob)
