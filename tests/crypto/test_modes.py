"""Block modes and the sealed-message layer.

The CBC-vs-PCBC error propagation tests here verify the exact property the
paper states in Section 2.2 ("in PCBC, the error is propagated throughout
the message").
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    DesKey,
    IntegrityError,
    KeyGenerator,
    Mode,
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pcbc_decrypt,
    pcbc_encrypt,
    seal,
    unseal,
)
from repro.crypto.des import BLOCK_SIZE

KEY = DesKey(bytes.fromhex("133457799BBCDFF1"))
KEY2 = DesKey(bytes.fromhex("0E329232EA6D0D73"))
IV = bytes.fromhex("FEDCBA9876543210")

aligned = st.binary(min_size=0, max_size=256).map(
    lambda b: b + b"\x00" * ((-len(b)) % BLOCK_SIZE)
)


class TestRawModes:
    @given(aligned)
    @settings(max_examples=40)
    def test_ecb_round_trip(self, data):
        assert ecb_decrypt(KEY, ecb_encrypt(KEY, data)) == data

    @given(aligned)
    @settings(max_examples=40)
    def test_cbc_round_trip(self, data):
        assert cbc_decrypt(KEY, cbc_encrypt(KEY, data, IV), IV) == data

    @given(aligned)
    @settings(max_examples=40)
    def test_pcbc_round_trip(self, data):
        assert pcbc_decrypt(KEY, pcbc_encrypt(KEY, data, IV), IV) == data

    def test_unaligned_rejected(self):
        for fn in (ecb_encrypt, ecb_decrypt):
            with pytest.raises(ValueError):
                fn(KEY, b"123")
        for fn in (cbc_encrypt, cbc_decrypt, pcbc_encrypt, pcbc_decrypt):
            with pytest.raises(ValueError):
                fn(KEY, b"123", IV)

    def test_bad_iv_length(self):
        with pytest.raises(ValueError):
            cbc_encrypt(KEY, bytes(8), iv=b"short")

    def test_ecb_leaks_repeated_blocks(self):
        """The weakness that motivates chaining: identical plaintext blocks
        give identical ciphertext blocks under ECB but not under CBC."""
        data = b"AAAAAAAA" * 4
        ecb = ecb_encrypt(KEY, data)
        cbc = cbc_encrypt(KEY, data, IV)
        ecb_blocks = {ecb[i : i + 8] for i in range(0, len(ecb), 8)}
        cbc_blocks = {cbc[i : i + 8] for i in range(0, len(cbc), 8)}
        assert len(ecb_blocks) == 1
        assert len(cbc_blocks) == 4

    def test_iv_changes_ciphertext(self):
        data = b"8 bytes." * 3
        assert cbc_encrypt(KEY, data, IV) != cbc_encrypt(KEY, data, bytes(8))
        assert pcbc_encrypt(KEY, data, IV) != pcbc_encrypt(KEY, data, bytes(8))

    def test_modes_disagree(self):
        data = b"8 bytes." * 3
        outputs = {
            ecb_encrypt(KEY, data),
            cbc_encrypt(KEY, data, IV),
            pcbc_encrypt(KEY, data, IV),
        }
        assert len(outputs) == 3


class TestErrorPropagation:
    """Paper Section 2.2: CBC confines an error; PCBC propagates it."""

    DATA = bytes(range(8)) * 8  # 8 blocks

    def corrupt(self, cipher: bytes, block_idx: int) -> bytes:
        out = bytearray(cipher)
        out[block_idx * 8] ^= 0x01
        return bytes(out)

    def test_cbc_error_confined_to_two_blocks(self):
        cipher = self.corrupt(cbc_encrypt(KEY, self.DATA, IV), 3)
        plain = cbc_decrypt(KEY, cipher, IV)
        damaged = [
            i
            for i in range(8)
            if plain[i * 8 : (i + 1) * 8] != self.DATA[i * 8 : (i + 1) * 8]
        ]
        assert damaged == [3, 4]

    def test_pcbc_error_propagates_to_end(self):
        cipher = self.corrupt(pcbc_encrypt(KEY, self.DATA, IV), 3)
        plain = pcbc_decrypt(KEY, cipher, IV)
        damaged = [
            i
            for i in range(8)
            if plain[i * 8 : (i + 1) * 8] != self.DATA[i * 8 : (i + 1) * 8]
        ]
        assert damaged == [3, 4, 5, 6, 7]

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7)
    def test_pcbc_always_reaches_last_block(self, block_idx):
        cipher = self.corrupt(pcbc_encrypt(KEY, self.DATA, IV), block_idx)
        plain = pcbc_decrypt(KEY, cipher, IV)
        assert plain[-8:] != self.DATA[-8:]


class TestSealUnseal:
    @given(st.binary(max_size=200))
    @settings(max_examples=40)
    def test_round_trip_pcbc(self, data):
        assert unseal(KEY, seal(KEY, data)) == data

    @given(st.binary(max_size=200))
    @settings(max_examples=20)
    def test_round_trip_all_modes(self, data):
        for mode in Mode:
            assert unseal(KEY, seal(KEY, data, mode=mode), mode=mode) == data

    def test_wrong_key_rejected(self):
        blob = seal(KEY, b"the user's TGT")
        with pytest.raises(IntegrityError):
            unseal(KEY2, blob)

    def test_wrong_iv_rejected(self):
        blob = seal(KEY, b"payload", iv=IV)
        with pytest.raises(IntegrityError):
            unseal(KEY, blob, iv=bytes(8))

    def test_empty_payload(self):
        assert unseal(KEY, seal(KEY, b"")) == b""

    def test_tamper_any_block_detected_under_pcbc(self):
        blob = bytearray(seal(KEY, bytes(64)))
        for i in range(0, len(blob) - 8, 8):
            corrupted = bytearray(blob)
            corrupted[i] ^= 0x40
            with pytest.raises(IntegrityError):
                unseal(KEY, bytes(corrupted))

    def test_cbc_mode_misses_midstream_tamper(self):
        """Documents *why* the paper added PCBC: a mid-message flip under
        CBC leaves the trailer intact and unseal succeeds with corrupted
        data."""
        blob = bytearray(seal(KEY, bytes(64), mode=Mode.CBC))
        blob[16] ^= 0x01  # inside the data region, away from the trailer
        out = unseal(KEY, bytes(blob), mode=Mode.CBC)
        assert out != bytes(64)  # silently corrupted — CBC did not notice

    def test_truncated_ciphertext_rejected(self):
        blob = seal(KEY, b"x" * 40)
        with pytest.raises(IntegrityError):
            unseal(KEY, blob[:8])
        with pytest.raises(IntegrityError):
            unseal(KEY, blob[:-4])

    def test_declared_length_is_validated(self):
        # Tampering that somehow survives must still respect framing.
        with pytest.raises(IntegrityError):
            unseal(KEY, b"")

    def test_seal_requires_bytes(self):
        with pytest.raises(TypeError):
            seal(KEY, "a string")

    def test_ciphertext_hides_plaintext(self):
        blob = seal(KEY, b"SECRET-PASSWORD")
        assert b"SECRET" not in blob

    def test_distinct_keys_distinct_ciphertexts(self):
        gen = KeyGenerator(seed=b"modes-test")
        data = b"same plaintext"
        blobs = {seal(gen.session_key(), data) for _ in range(8)}
        assert len(blobs) == 8
