"""Checksum tests: DES-CBC MAC (kprop, Fig. 13) and quad_cksum (safe msgs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DesKey, cbc_mac, quad_cksum, verify_cbc_mac
from repro.crypto.checksum import quad_cksum_key

KEY = DesKey(bytes.fromhex("133457799BBCDFF1"))
KEY2 = DesKey(bytes.fromhex("0E329232EA6D0D73"))


class TestCbcMac:
    @given(st.binary(max_size=300))
    @settings(max_examples=40)
    def test_deterministic(self, data):
        assert cbc_mac(KEY, data) == cbc_mac(KEY, data)

    @given(st.binary(max_size=300))
    @settings(max_examples=40)
    def test_verify_accepts_genuine(self, data):
        assert verify_cbc_mac(KEY, data, cbc_mac(KEY, data))

    def test_mac_is_one_block(self):
        assert len(cbc_mac(KEY, b"db dump")) == 8

    def test_key_dependence(self):
        data = b"the kerberos database dump"
        assert cbc_mac(KEY, data) != cbc_mac(KEY2, data)

    def test_verify_rejects_wrong_key(self):
        data = b"the kerberos database dump"
        assert not verify_cbc_mac(KEY2, data, cbc_mac(KEY, data))

    def test_verify_rejects_tampered_data(self):
        data = bytearray(b"principal: jis key: ...")
        mac = cbc_mac(KEY, bytes(data))
        data[0] ^= 1
        assert not verify_cbc_mac(KEY, bytes(data), mac)

    def test_zero_padding_not_confusable(self):
        """Messages differing only by trailing NULs must differ in MAC."""
        assert cbc_mac(KEY, b"abc") != cbc_mac(KEY, b"abc\x00")
        assert cbc_mac(KEY, b"") != cbc_mac(KEY, b"\x00" * 8)

    @given(st.binary(max_size=100), st.binary(max_size=100))
    @settings(max_examples=40)
    def test_distinct_messages_distinct_macs(self, a, b):
        if a != b:
            assert cbc_mac(KEY, a) != cbc_mac(KEY, b)

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            cbc_mac(KEY, "text")

    def test_empty_message(self):
        assert len(cbc_mac(KEY, b"")) == 8


class TestQuadCksum:
    SEED = KEY.key_bytes

    @given(st.binary(max_size=300))
    @settings(max_examples=40)
    def test_deterministic_and_32bit(self, data):
        c = quad_cksum(data, self.SEED)
        assert c == quad_cksum(data, self.SEED)
        assert 0 <= c < 2**32

    def test_seed_dependence(self):
        data = b"safe message body"
        assert quad_cksum(data, KEY.key_bytes) != quad_cksum(data, KEY2.key_bytes)

    def test_data_dependence(self):
        assert quad_cksum(b"aaaa", self.SEED) != quad_cksum(b"aaab", self.SEED)

    def test_length_sensitivity(self):
        assert quad_cksum(b"", self.SEED) != quad_cksum(b"\x00\x00\x00\x00", self.SEED)

    def test_short_seed_rejected(self):
        with pytest.raises(ValueError):
            quad_cksum(b"data", b"short")

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            quad_cksum("text", self.SEED)

    def test_key_wrapper(self):
        assert quad_cksum_key(KEY, b"x") == quad_cksum(b"x", KEY.key_bytes)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=40)
    def test_single_bit_flip_detected(self, data):
        original = quad_cksum(data, self.SEED)
        flipped = bytearray(data)
        flipped[0] ^= 0x01
        assert quad_cksum(bytes(flipped), self.SEED) != original

    def test_faster_than_full_mac(self):
        """The paper's point: quad_cksum trades strength for speed."""
        import time

        data = b"z" * 4096
        t0 = time.perf_counter()
        for _ in range(20):
            quad_cksum(data, self.SEED)
        quad_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            cbc_mac(KEY, data)
        mac_time = time.perf_counter() - t0
        assert quad_time < mac_time
