"""KdbmClient under transport failure: a typed, bounded timeout.

Admin writes are master-only (Figure 11) — there is no failover target —
so when the master is unreachable the client must give up after its
retry policy and say so with :class:`KdbmTimeout`, not hang and not
mislabel the outage as an authentication problem.
"""

import pytest

from repro.core import ErrorCode, KerberosError, RetryPolicy
from repro.kdbm import KdbmClient, KdbmTimeout
from repro.netsim import Network, Unreachable
from repro.netsim.ports import KDBM_PORT
from repro.principal import Principal
from repro.realm import Realm

REALM_NAME = "ATHENA.MIT.EDU"


@pytest.fixture
def realm_world():
    net = Network(seed=3)
    realm = Realm(net, REALM_NAME, n_slaves=1)
    realm.add_user("jis", "jis-pw")
    realm.propagate()  # the slave needs jis to serve AS while master is down
    ws = realm.workstation()
    return net, realm, ws


def test_master_down_raises_typed_timeout(realm_world):
    net, realm, ws = realm_world
    net.set_down(realm.master_host.name)
    kdbm = KdbmClient(
        ws.client,
        realm.master_host.address,
        retry_policy=RetryPolicy(max_attempts=3),
    )
    # The AS exchange itself still works: the slave answers it.
    with pytest.raises(KdbmTimeout) as exc_info:
        kdbm.change_password(Principal("jis", "", REALM_NAME), "jis-pw", "new")
    exc = exc_info.value
    assert exc.attempts == 3
    assert exc.code == ErrorCode.KDBM_ERROR
    # Typed both ways: a protocol error AND a transport unreachability,
    # so pre-existing handlers of either keep working.
    assert isinstance(exc, KerberosError)
    assert isinstance(exc, Unreachable)
    assert net.metrics.total("retry.attempts_total", op="kdbm") == 3
    assert net.metrics.total("retry.exhausted_total", op="kdbm") == 1


def test_blackholed_port_is_bounded_not_hung(realm_world):
    """A KDBM port that swallows requests (no reply ever) exhausts the
    policy instead of retrying forever."""
    net, realm, ws = realm_world
    seen = []

    def blackhole(datagram):
        if datagram.dst_port == KDBM_PORT:
            seen.append(datagram)
            return None
        return datagram

    net.add_interceptor(blackhole)
    kdbm = KdbmClient(
        ws.client,
        realm.master_host.address,
        retry_policy=RetryPolicy(max_attempts=4),
    )
    with pytest.raises(KdbmTimeout):
        kdbm.change_password(Principal("jis", "", REALM_NAME), "jis-pw", "new")
    assert len(seen) == 4


def test_retransmissions_carry_fresh_authenticators(realm_world):
    """Lost *replies* are the dangerous case: the KDBM already recorded
    the first authenticator, so the retry must not be a verbatim resend
    — and the operation must succeed on the second attempt."""
    net, realm, ws = realm_world
    state = {"dropped": False}

    def drop_first_reply(datagram):
        if datagram.src_port == KDBM_PORT and not state["dropped"]:
            state["dropped"] = True
            return None
        return datagram

    net.add_interceptor(drop_first_reply)
    kdbm = KdbmClient(
        ws.client,
        realm.master_host.address,
        retry_policy=RetryPolicy(max_attempts=3),
    )
    out = kdbm.change_password(
        Principal("jis", "", REALM_NAME), "jis-pw", "new-pw"
    )
    assert state["dropped"]
    assert out  # the change took
    # And it really took on the server: the new password logs in.
    ws2 = realm.workstation()
    ws2.client.kinit("jis", "new-pw")


def test_auth_failure_still_reported_as_protocol_error(realm_world):
    """The empty-reply path (server refused to authenticate us) is not a
    timeout and must keep its historical report."""
    net, realm, ws = realm_world
    # Corrupt every KDBM request's AP portion so krb_rd_req fails and
    # the server answers with the bare empty error.
    def corrupt(datagram):
        if datagram.dst_port == KDBM_PORT:
            return type(datagram)(
                src=datagram.src,
                src_port=datagram.src_port,
                dst=datagram.dst,
                dst_port=datagram.dst_port,
                payload=b"\x00" * len(datagram.payload),
            )
        return datagram

    net.add_interceptor(corrupt)
    kdbm = KdbmClient(ws.client, realm.master_host.address)
    with pytest.raises(KerberosError) as exc_info:
        kdbm.change_password(Principal("jis", "", REALM_NAME), "jis-pw", "x")
    assert not isinstance(exc_info.value, KdbmTimeout)
    assert "dropped the request" in str(exc_info.value)
