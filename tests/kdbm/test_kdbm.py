"""Administration server tests (paper Section 5.1, Figures 11-12)."""

import pytest

from repro.core import ErrorCode, KerberosError, Principal, kdbm_principal
from repro.crypto import string_to_key
from repro.database import ReadOnlyDatabase
from repro.kdbm import KdbmClient, KdbmServer
from repro.netsim import Network, Unreachable
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def realm():
    net = Network()
    r = Realm(net, REALM, n_slaves=1)
    r.add_user("jis", "jis-pw")
    r.add_user("bcn", "bcn-pw")
    r.add_admin("jis", "jis-admin-pw")
    r.propagate()
    return r


@pytest.fixture
def ws(realm):
    return realm.workstation()


@pytest.fixture
def kdbm_client(realm, ws):
    return KdbmClient(ws.client, realm.master_host.address)


def jis():
    return Principal("jis", "", REALM)


def bcn():
    return Principal("bcn", "", REALM)


class TestKpasswd:
    def test_self_password_change(self, realm, kdbm_client):
        kdbm_client.change_password(jis(), "jis-pw", "new-pw")
        assert realm.db.principal_key(jis()) == string_to_key("new-pw")

    def test_key_version_bumped(self, realm, kdbm_client):
        kdbm_client.change_password(jis(), "jis-pw", "new-pw")
        assert realm.db.get_record(jis()).key_version == 2

    def test_wrong_old_password_fails(self, realm, kdbm_client):
        """The old password is required to fetch the KDBM ticket — a
        passerby at an unattended workstation cannot change it."""
        with pytest.raises(KerberosError) as err:
            kdbm_client.change_password(jis(), "not-the-password", "evil")
        assert err.value.code == ErrorCode.INTK_BADPW
        assert realm.db.principal_key(jis()) == string_to_key("jis-pw")

    def test_cannot_change_someone_elses_password(self, realm, ws):
        """bcn authenticates fine but is not jis and not on the ACL."""
        from repro.kdbm.messages import AdminOperation, AdminRequestBody

        kc = KdbmClient(ws.client, realm.master_host.address)
        cred = ws.client.as_exchange(bcn(), "bcn-pw", kdbm_principal(REALM))
        body = AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=jis(),
            new_password="evil",
            max_life=0.0,
        )
        reply = kc._roundtrip(cred, bcn(), body)
        assert not reply.ok
        assert reply.code == int(ErrorCode.KDBM_DENIED)
        assert realm.db.principal_key(jis()) == string_to_key("jis-pw")

    def test_new_password_not_on_wire(self, realm, kdbm_client):
        """Private messages carry the password (Section 2.1)."""
        captured = []
        realm.net.add_tap(lambda d: captured.append(d.payload))
        kdbm_client.change_password(jis(), "jis-pw", "super-secret-new")
        for payload in captured:
            assert b"super-secret-new" not in payload


class TestKadmin:
    def test_admin_adds_principal(self, realm, kdbm_client):
        kdbm_client.add_principal(
            Principal("jis", "admin", REALM),
            "jis-admin-pw",
            Principal("newuser", "", REALM),
            "initial-pw",
        )
        assert realm.db.exists(Principal("newuser", "", REALM))

    def test_admin_changes_other_password(self, realm, kdbm_client):
        kdbm_client.admin_change_password(
            Principal("jis", "admin", REALM), "jis-admin-pw", bcn(), "reset-pw"
        )
        assert realm.db.principal_key(bcn()) == string_to_key("reset-pw")

    def test_non_admin_cannot_add(self, realm, kdbm_client):
        with pytest.raises(KerberosError) as err:
            kdbm_client.add_principal(bcn(), "bcn-pw", Principal("x", "", REALM), "p")
        assert err.value.code == ErrorCode.KDBM_DENIED

    def test_null_instance_is_not_admin(self, realm, kdbm_client):
        """The ACL lists jis.admin, not jis: the plain instance has no
        administrative power (Section 5.1's convention)."""
        with pytest.raises(KerberosError) as err:
            kdbm_client.add_principal(jis(), "jis-pw", Principal("y", "", REALM), "p")
        assert err.value.code == ErrorCode.KDBM_DENIED

    def test_duplicate_add_reported(self, realm, kdbm_client):
        with pytest.raises(KerberosError) as err:
            kdbm_client.add_principal(
                Principal("jis", "admin", REALM), "jis-admin-pw", bcn(), "p"
            )
        assert err.value.code == ErrorCode.KDBM_ERROR

    def test_get_entry(self, realm, kdbm_client):
        text = kdbm_client.get_entry(jis(), "jis-pw")
        assert "kvno=1" in text

    def test_admin_instance_uses_separate_password(self, realm, kdbm_client):
        """"This convention allows an administrator to use a different
        password for Kerberos administration"."""
        with pytest.raises(KerberosError) as err:
            kdbm_client.add_principal(
                Principal("jis", "admin", REALM),
                "jis-pw",  # the log-in password, not the admin one
                Principal("z", "", REALM),
                "p",
            )
        assert err.value.code == ErrorCode.INTK_BADPW


class TestMasterOnly:
    def test_kdbm_refuses_readonly_database(self, realm):
        slave = realm.slaves[0]
        with pytest.raises(ReadOnlyDatabase):
            KdbmServer(slave.db, realm.acl, port=9999).attach(slave.host)

    def test_admin_unavailable_when_master_down(self, realm, ws):
        """Figure 11's consequence: "administration requests cannot be
        serviced if the master machine is down"."""
        realm.net.set_down(realm.master_host.name)
        kc = KdbmClient(ws.client, realm.master_host.address)
        with pytest.raises(Unreachable):
            kc.change_password(jis(), "jis-pw", "new")

    def test_authentication_still_works_when_master_down(self, realm, ws):
        """...while authentication continues on the slaves (Figure 10)."""
        realm.net.set_down(realm.master_host.name)
        assert ws.client.kinit("jis", "jis-pw") is not None


class TestAuditLog:
    def test_permitted_and_denied_both_logged(self, realm, ws, kdbm_client):
        kdbm_client.change_password(jis(), "jis-pw", "new-pw")
        try:
            kdbm_client.add_principal(bcn(), "bcn-pw", Principal("x", "", REALM), "p")
        except KerberosError:
            pass
        outcomes = [(e.operation, e.permitted) for e in realm.kdbm.log]
        assert ("CHANGE_PASSWORD", True) in outcomes
        assert ("ADD_PRINCIPAL", False) in outcomes

    def test_log_records_requester_and_target(self, realm, kdbm_client):
        kdbm_client.change_password(jis(), "jis-pw", "new-pw")
        entry = realm.kdbm.log[-1]
        assert entry.requester == f"jis@{REALM}"
        assert entry.target == f"jis@{REALM}"

    def test_unauthenticated_attempts_logged(self, realm, ws):
        ws.host.rpc(realm.master_host.address, 751, b"garbage")
        assert any(not e.permitted for e in realm.kdbm.log)


class TestTicketPath:
    def test_kdbm_ticket_never_from_tgs(self, realm, ws):
        """End-to-end restatement of Section 5.1: TGS refuses, AS serves."""
        ws.client.kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            ws.client.get_credential(kdbm_principal(REALM))
        assert err.value.code == ErrorCode.KDC_PR_NOTGT
        cred = ws.client.as_exchange(jis(), "jis-pw", kdbm_principal(REALM))
        assert cred.service.same_entity(kdbm_principal(REALM))
