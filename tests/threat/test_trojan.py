"""The Section 8 workstation-integrity open problem, demonstrated."""

import pytest

from repro.core import krb_rd_req
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.threat import Smartcard, SmartcardLogin, TrojanedLoginSession

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    return net, realm, service, key


class TestTrojanedLogin:
    def test_trojan_is_indistinguishable_to_the_user(self, world):
        """The modified login program works perfectly — that is what
        makes the problem hard."""
        net, realm, service, key = world
        ws = realm.workstation()
        trojan = TrojanedLoginSession(ws.host, ws.client)
        tgt = trojan.login("jis", "jis-pw")
        assert tgt is not None
        assert trojan.logged_in
        # The session is fully functional.
        request, _, _ = ws.client.mk_req(service)
        ctx = krb_rd_req(request, service, key, ws.host.address, net.clock.now())
        assert ctx.client.name == "jis"

    def test_trojan_harvested_the_password(self, world):
        """And nothing in the protocol prevented the harvest — Kerberos
        authenticates users to services, not software to users."""
        net, realm, service, key = world
        ws = realm.workstation()
        trojan = TrojanedLoginSession(ws.host, ws.client)
        trojan.login("jis", "jis-pw")
        assert trojan.harvested == [("jis", "jis-pw")]

    def test_harvested_password_grants_full_impersonation(self, world):
        """The stolen password works anywhere, forever (until changed) —
        unlike a stolen ticket, which the lifetime bounds."""
        net, realm, service, key = world
        ws = realm.workstation()
        trojan = TrojanedLoginSession(ws.host, ws.client)
        trojan.login("jis", "jis-pw")
        trojan.logout()

        username, password = trojan.harvested[0]
        attacker_ws = realm.workstation()
        attacker_ws.client.kinit(username, password)   # complete takeover
        request, _, _ = attacker_ws.client.mk_req(service)
        ctx = krb_rd_req(request, service, key, attacker_ws.host.address,
                         net.clock.now())
        assert ctx.client.name == "jis"


class TestSmartcardMitigation:
    def test_smartcard_login_works(self, world):
        net, realm, service, key = world
        ws = realm.workstation()
        card = Smartcard("jis-pw")
        login = SmartcardLogin(ws.host, ws.client)
        tgt = login.login("jis", card)
        assert tgt is not None
        # The session is as functional as a password login.
        request, _, _ = ws.client.mk_req(service)
        ctx = krb_rd_req(request, service, key, ws.host.address, net.clock.now())
        assert ctx.client.name == "jis"

    def test_workstation_never_sees_password_or_key(self, world):
        """The paper's proposed fix: "the user's key never leave[s] a
        system that the user knows can be trusted"."""
        net, realm, service, key = world
        ws = realm.workstation()
        card = Smartcard("jis-pw")
        login = SmartcardLogin(ws.host, ws.client)
        tgt = login.login("jis", card)
        # What the workstation holds after login: tickets and session
        # keys — both expire.  The long-term key stays on the card.
        from repro.crypto import string_to_key

        user_key = string_to_key("jis-pw")
        for cred in ws.client.klist():
            assert cred.session_key != user_key

    def test_card_rejects_wrong_reply(self, world):
        """A card provisioned for one password cannot open a reply meant
        for a different key (it is still doing real crypto)."""
        net, realm, service, key = world
        ws = realm.workstation()
        wrong_card = Smartcard("not-jis-password")
        login = SmartcardLogin(ws.host, ws.client)
        from repro.core import KerberosError

        with pytest.raises(KerberosError):
            login.login("jis", wrong_card)
