"""Threat-model tests (paper Sections 1, 2, 4.3, 8) — experiment T1.

Each class arms one attacker and verifies the paper's claim about it:
defeated where the design defeats it, and honestly successful where the
1988 design accepts residual risk.
"""

import pytest

from repro.core import (
    ErrorCode,
    KerberosError,
    Principal,
    ReplayCache,
    krb_rd_req,
    tgs_principal,
)
from repro.crypto import string_to_key
from repro.netsim import Network
from repro.realm import Realm
from repro.threat import (
    Eavesdropper,
    MasqueradingServer,
    Replayer,
    steal_credentials,
    use_stolen_credential,
)

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    service, key = realm.add_service("rlogin", "priam")
    return dict(net=net, realm=realm, service=service, key=key)


class TestEavesdropper:
    """Section 1: someone watching the network should not be able to
    obtain the information necessary to impersonate another user."""

    def test_password_never_observed(self, world):
        eve = Eavesdropper(world["net"])
        ws = world["realm"].workstation()
        ws.client.kinit("jis", "jis-pw")
        ws.client.get_credential(world["service"])
        assert not eve.saw_bytes(b"jis-pw")
        assert not eve.saw_bytes(string_to_key("jis-pw").key_bytes)

    def test_session_keys_never_observed(self, world):
        eve = Eavesdropper(world["net"])
        ws = world["realm"].workstation()
        tgt = ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(world["service"])
        assert not eve.saw_bytes(tgt.session_key.key_bytes)
        assert not eve.saw_bytes(cred.session_key.key_bytes)

    def test_names_do_travel_in_clear(self, world):
        """The protocol hides proofs, not metadata: the eavesdropper does
        learn who talks to which service."""
        eve = Eavesdropper(world["net"])
        ws = world["realm"].workstation()
        ws.client.kinit("jis", "jis-pw")
        assert eve.saw_bytes(b"jis")
        assert eve.saw_bytes(b"krbtgt")

    def test_strong_password_resists_dictionary(self, world):
        eve = Eavesdropper(world["net"])
        ws = world["realm"].workstation()
        ws.client.kinit("jis", "jis-pw")
        reply = eve.harvest_kdc_replies()[0]
        guessed = eve.offline_password_guess(
            reply, ["password", "athena", "12345", "letmein"]
        )
        assert guessed is None

    def test_weak_password_falls_to_dictionary(self, world):
        """The honest edge: AS replies are keyed by the password, so an
        eavesdropper can test guesses offline.  (V5 preauth mitigates;
        the 1988 design accepts this.)"""
        world["realm"].add_user("weak", "password")
        eve = Eavesdropper(world["net"])
        ws = world["realm"].workstation()
        ws.client.kinit("weak", "password")
        reply = eve.harvest_kdc_replies()[0]
        guessed = eve.offline_password_guess(
            reply, ["123456", "qwerty", "password", "athena"]
        )
        assert guessed == "password"

    def test_detach(self, world):
        eve = Eavesdropper(world["net"])
        eve.detach()
        ws = world["realm"].workstation()
        ws.client.kinit("jis", "jis-pw")
        assert eve.captured == []


class TestReplayer:
    def test_replayed_service_request_rejected(self, world):
        """Section 4.3: same ticket + same timestamp = discard."""
        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        server_host = net.add_host("priam")
        cache = ReplayCache()

        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, _, _ = ws.client.mk_req(service)

        # The genuine request is served...
        ctx = krb_rd_req(request, service, key, ws.host.address,
                         net.clock.now(), cache)
        assert ctx.client.name == "jis"
        # ...the byte-identical replay (even source-forged) is not.
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, ws.host.address,
                       net.clock.now(), cache)
        assert err.value.code == ErrorCode.RD_AP_REPEAT

    def test_delayed_replay_rejected_by_time_window(self, world):
        """A replay after the skew window fails even with no cache."""
        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, _, _ = ws.client.mk_req(service)
        net.clock.advance(10 * 60)  # attacker waits ten minutes
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, ws.host.address, net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_TIME

    def test_fast_replay_without_cache_succeeds(self, world):
        """What the (optional) cache buys: without it, an immediate
        replay from the same address is accepted."""
        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        request, _, _ = ws.client.mk_req(service)
        krb_rd_req(request, service, key, ws.host.address, net.clock.now())
        # No cache passed: the replay sails through.
        krb_rd_req(request, service, key, ws.host.address, net.clock.now())

    def test_replayer_capture_and_inject(self, world):
        """The Replayer harness itself: captured KDC requests can be
        re-injected; the KDC replies, but the reply is sealed in the
        user's key, useless to the attacker."""
        net, realm = world["net"], world["realm"]
        replayer = Replayer(net, match=lambda d: d.dst_port == 750)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        assert replayer.captured
        reply_bytes = replayer.replay(0)
        # The attacker got bytes back — but cannot decrypt them.
        from repro.core.messages import MessageType, expect_reply

        reply = expect_reply(reply_bytes, MessageType.AS_REP)
        with pytest.raises(KerberosError):
            reply.open(string_to_key("not-the-password"))

    def test_replay_nothing_captured(self, world):
        replayer = Replayer(world["net"], match=lambda d: False)
        with pytest.raises(ValueError):
            replayer.replay()


class TestMasqueradingServer:
    def test_mutual_auth_detects_fake(self, world):
        """Section 1: "someone elsewhere on the network may be
        masquerading as the given server" — Figure 7 is the counter."""
        from repro.apps.kerberized import KerberizedChannel

        net, realm = world["net"], world["realm"]
        fake_host = net.add_host("fake-priam")
        fake = MasqueradingServer(fake_host, 544)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        with pytest.raises(KerberosError) as err:
            KerberizedChannel(
                ws.client, world["service"], fake_host.address, 544, mutual=True
            )
        assert err.value.code == ErrorCode.RD_AP_MODIFIED
        assert fake.victims_contacted == 1

    def test_without_mutual_auth_client_is_fooled_initially(self, world):
        """Without the Figure 7 check the client cannot tell — which is
        why mutual authentication exists.  The impostor still never
        learns the session key, so it cannot read SAFE/PRIVATE traffic."""
        from repro.apps.kerberized import KerberizedChannel

        net, realm = world["net"], world["realm"]
        fake_host = net.add_host("fake-priam")
        fake = MasqueradingServer(fake_host, 544)
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        channel = KerberizedChannel(
            ws.client, world["service"], fake_host.address, 544, mutual=False
        )
        assert channel.session_id == 1  # fooled
        # But the ticket it harvested is sealed in the real service key.
        cred = ws.client.cache.get(world["service"])
        assert all(
            cred.session_key.key_bytes not in blob
            for blob in fake.stolen_payloads
        )


class TestStolenCredentials:
    def test_stolen_tickets_fail_from_another_machine(self, world):
        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        victim = realm.workstation()
        victim.client.kinit("jis", "jis-pw")
        victim.client.get_credential(service)

        thief_host = net.add_host("thief")
        loot = steal_credentials(victim.client)
        service_cred = [s for s in loot if "rlogin" in str(s.credential.service)][0]
        request = use_stolen_credential(service_cred, thief_host)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, thief_host.address, net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_stolen_tickets_work_from_victims_machine_until_expiry(self, world):
        """Section 8's accepted risk, demonstrated end to end."""
        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        victim = realm.workstation()
        victim.client.kinit("jis", "jis-pw", life=3600.0)
        victim.client.get_credential(service, life=3600.0)

        loot = steal_credentials(victim.client)
        service_cred = [s for s in loot if "rlogin" in str(s.credential.service)][0]

        # The thief is AT the victim's workstation (forgot to log out).
        request = use_stolen_credential(service_cred, victim.host)
        ctx = krb_rd_req(request, service, key, victim.host.address, net.clock.now())
        assert ctx.client.name == "jis"  # the attack works...

        # ...but only until the ticket expires.
        net.clock.advance(2 * 3600.0)
        request = use_stolen_credential(service_cred, victim.host)
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, victim.host.address, net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_EXP

    def test_kdestroy_leaves_nothing_to_steal(self, world):
        victim = world["realm"].workstation()
        victim.client.kinit("jis", "jis-pw")
        victim.client.kdestroy()
        assert steal_credentials(victim.client) == []

    def test_stolen_ticket_without_session_key_is_useless(self, world):
        """A thief who captures only the *ticket* (off the wire) cannot
        build an authenticator at all."""
        from repro.core.applib import krb_mk_req
        from repro.crypto import KeyGenerator

        net, realm = world["net"], world["realm"]
        service, key = world["service"], world["key"]
        victim = realm.workstation()
        victim.client.kinit("jis", "jis-pw")
        cred = victim.client.get_credential(service)

        guessed_key = KeyGenerator(seed=b"attacker-guess").session_key()
        request = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=guessed_key,  # not the real session key
            client=Principal("jis", "", REALM),
            client_address=victim.host.address,
            now=net.clock.now(),
        )
        with pytest.raises(KerberosError) as err:
            krb_rd_req(request, service, key, victim.host.address, net.clock.now())
        assert err.value.code == ErrorCode.RD_AP_MODIFIED
