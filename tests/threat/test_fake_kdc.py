"""A masquerading KDC (the ultimate server impostor).

The paper: "The security of Kerberos relies on the security of several
authentication servers" — so what happens when a client is pointed at a
*fake* one?  The design's answer: a fake KDC cannot produce anything the
client will accept, because every useful reply is sealed in a key the
impostor lacks (the user's, or a TGT session key).  The attack degrades
to denial of service plus an offline-guessing oracle no better than
passive wiretapping.
"""

import pytest

from repro.core import (
    ErrorCode,
    KdcReply,
    KdcReplyBody,
    KerberosClient,
    KerberosError,
    MessageType,
    Principal,
    encode_message,
    tgs_principal,
)
from repro.crypto import KeyGenerator
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


class FakeKdc:
    """Binds the Kerberos port and fabricates replies with made-up keys."""

    def __init__(self, host):
        self.host = host
        self.gen = KeyGenerator(seed=b"fake-kdc")
        self.requests_seen = 0
        host.bind(750, self._handle)

    def _handle(self, datagram) -> bytes:
        self.requests_seen += 1
        from repro.core.messages import decode_message

        try:
            mtype, request = decode_message(datagram.payload)
        except KerberosError:
            return b""
        # Fabricate a structurally perfect reply — sealed with a key the
        # impostor invented, since it does not know the user's key.
        fake_key = self.gen.session_key()
        body = KdcReplyBody(
            session_key=self.gen.session_key().key_bytes,
            server=tgs_principal(REALM),
            issue_time=self.host.clock.now(),
            life=8 * 3600.0,
            kvno=1,
            request_timestamp=getattr(request, "timestamp", 0.0),
            ticket=b"\x00" * 120,
        )
        reply = KdcReply.build(request.client, body, fake_key)
        return encode_message(MessageType.AS_REP, reply)


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    fake_host = net.add_host("fake-kdc")
    fake = FakeKdc(fake_host)
    return net, realm, fake_host, fake


class TestFakeKdc:
    def test_client_rejects_fabricated_as_reply(self, world):
        """The reply will not decrypt with the password-derived key: to
        the user it is indistinguishable from a typo'd password — and
        crucially, no secret left the workstation."""
        net, realm, fake_host, fake = world
        ws = net.add_host("victim-ws")
        client = KerberosClient(ws, REALM, [fake_host.address])
        with pytest.raises(KerberosError) as err:
            client.kinit("jis", "jis-pw")
        assert err.value.code == ErrorCode.INTK_BADPW
        assert fake.requests_seen >= 1

    def test_no_credentials_cached_after_fake_exchange(self, world):
        net, realm, fake_host, fake = world
        ws = net.add_host("victim-ws")
        client = KerberosClient(ws, REALM, [fake_host.address])
        with pytest.raises(KerberosError):
            client.kinit("jis", "jis-pw")
        assert client.klist() == []
        assert client.principal is None

    def test_failover_past_the_impostor(self, world):
        """A client configured with the real KDC later in its list is
        not rescued automatically — the fake answered, so no failover
        triggers.  (Failover is for dead hosts, not lying ones; DNS/
        configuration integrity is out of the protocol's scope.)"""
        net, realm, fake_host, fake = world
        ws = net.add_host("victim-ws")
        client = KerberosClient(
            ws, REALM, [fake_host.address, realm.master_host.address]
        )
        with pytest.raises(KerberosError):
            client.kinit("jis", "jis-pw")
        # Pointed at the real KDC, the same client works immediately.
        client2 = KerberosClient(ws, REALM, [realm.master_host.address])
        assert client2.kinit("jis", "jis-pw") is not None

    def test_fake_kdc_learns_nothing_it_could_not_sniff(self, world):
        """Everything the impostor receives is cleartext request fields —
        names and lifetimes — already visible to any wiretap."""
        net, realm, fake_host, fake = world
        captured = []

        original = fake._handle

        def capture(datagram):
            captured.append(datagram.payload)
            return original(datagram)

        fake_host.unbind(750)
        fake_host.bind(750, capture)
        ws = net.add_host("victim-ws")
        client = KerberosClient(ws, REALM, [fake_host.address])
        with pytest.raises(KerberosError):
            client.kinit("jis", "jis-pw")
        from repro.crypto import string_to_key

        for payload in captured:
            assert b"jis-pw" not in payload
            assert string_to_key("jis-pw").key_bytes not in payload
