"""A full simulated day at Project Athena — every subsystem interacting.

One long scenario exercising the whole paper at once: morning login
storms, NFS home directories, mail over POP, Zephyr notices, rlogin
between machines, password changes through the KDBM, hourly database
propagation, a midday master crash, attackers probing throughout, and
the evening logout sweep.  Invariants are asserted at each stage.
"""

import pytest

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsServer
from repro.apps.nfs.client import NfsClientError
from repro.apps.pop import PopClient, PopServer
from repro.apps.rlogin import RloginServer, rsh
from repro.apps.workstation import AthenaWorkstation
from repro.apps.zephyr import ZephyrClient, ZephyrServer
from repro.core import KerberosError
from repro.kdbm import KdbmClient
from repro.netsim import Network, Unreachable
from repro.principal import Principal
from repro.realm import Realm
from repro.threat import Eavesdropper, steal_credentials, use_stolen_credential
from repro.user import kpasswd

REALM = "ATHENA.MIT.EDU"
USERS = [("jis", "jis-pw", 1001), ("bcn", "bcn-pw", 1002),
         ("treese", "tr-pw", 1003), ("raeburn", "ra-pw", 1004)]


@pytest.fixture(scope="module")
def athena():
    net = Network()
    realm = Realm(net, REALM, n_slaves=2)
    realm.add_admin("jis", "jis-admin-pw")
    for name, pw, _ in USERS:
        realm.add_user(name, pw)
    realm.schedule_propagation()
    realm.propagate()

    hesiod_host = net.add_host("hesiod")
    hesiod = HesiodServer().attach(hesiod_host)

    fs_host = net.add_host("helios")
    nfs_service, _ = realm.add_service("nfs", "helios")
    mount_service, _ = realm.add_service("mountd", "helios")
    fs_srvtab = realm.srvtab_for(nfs_service, mount_service)
    nfs = NfsServer(mode=AuthMode.MAPPED, service=nfs_service,
                    srvtab=fs_srvtab).attach(fs_host)
    MountDaemon(nfs, mount_service, fs_srvtab).attach(fs_host)
    for name, _, uid in USERS:
        nfs.passwd.add(name, uid, [100])
        nfs.fs.install_home(name, uid, 100)
        hesiod.add_user(name, uid, [100], "helios", f"/u/{name}")

    pop_host = net.add_host("po10")
    pop_service, _ = realm.add_service("pop", "po10")
    pop = PopServer(pop_service, realm.srvtab_for(pop_service)).attach(pop_host)

    z_host = net.add_host("zephyrhost")
    z_service, _ = realm.add_service("zephyr", "zephyrhost")
    zephyr = ZephyrServer(z_service, realm.srvtab_for(z_service)).attach(z_host)

    priam = net.add_host("priam")
    rcmd_service, _ = realm.add_service("rcmd", "priam")
    rlogind = RloginServer(rcmd_service, realm.srvtab_for(rcmd_service)).attach(priam)
    for name, _, _ in USERS:
        rlogind.add_account(name)

    eve = Eavesdropper(net)  # watching all day

    return dict(
        net=net, realm=realm, hesiod_host=hesiod_host, fs_host=fs_host,
        nfs=nfs, mount_service=mount_service, pop=pop,
        pop_service=pop_service, pop_host=pop_host,
        zephyr_service=z_service, zephyr_host=z_host,
        rcmd_service=rcmd_service, priam=priam, rlogind=rlogind, eve=eve,
        workstations={},
    )


def athena_ws(athena, name):
    ws = athena["realm"].workstation()
    return AthenaWorkstation(
        ws.host, ws.client, athena["hesiod_host"].address,
        {"helios": athena["fs_host"].address},
        {"helios": athena["mount_service"]},
    )


@pytest.mark.usefixtures("athena")
class TestADayAtAthena:
    def test_0800_morning_logins(self, athena):
        for name, pw, _ in USERS:
            station = athena_ws(athena, name)
            home = station.login(name, pw)
            home.nfs.create(f"/u/{name}/morning-notes")
            home.nfs.write(f"/u/{name}/morning-notes",
                           f"{name} was here".encode())
            athena["workstations"][name] = station
        assert len(athena["nfs"].credmap) == len(USERS)

    def test_0900_mail_and_notices(self, athena):
        athena["pop"].deliver("jis", b"Subject: staff meeting\r\n\r\n10am")
        jis_ws = athena["workstations"]["jis"]
        pop = PopClient(jis_ws.krb, athena["pop_service"],
                        athena["pop_host"].address)
        assert pop.stat() == 1
        assert b"staff meeting" in pop.retrieve(1)
        pop.quit()

        z_jis = ZephyrClient(jis_ws.krb, athena["zephyr_service"],
                             athena["zephyr_host"].address)
        z_jis.zwrite("bcn", "lunch at walker?")
        bcn_ws = athena["workstations"]["bcn"]
        z_bcn = ZephyrClient(bcn_ws.krb, athena["zephyr_service"],
                             athena["zephyr_host"].address)
        notices = z_bcn.poll()
        assert len(notices) == 1
        assert notices[0].sender == f"jis@{REALM}"
        z_jis.close()
        z_bcn.close()

    def test_1000_rlogin_between_machines(self, athena):
        treese = athena["workstations"]["treese"]
        output = rsh(treese.krb, athena["rcmd_service"],
                     athena["priam"].address, "make world")
        assert "make world" in output
        assert athena["rlogind"].kerberos_logins >= 1

    def test_1100_password_change(self, athena):
        raeburn = athena["workstations"]["raeburn"]
        kdbm = KdbmClient(raeburn.krb, athena["realm"].master_host.address)
        out = kpasswd(kdbm, "raeburn", "ra-pw", "ra-new-pw")
        assert "Password changed" in out

    def test_1200_hourly_propagation_carries_the_change(self, athena):
        athena["net"].clock.advance(3600.0)
        from repro.crypto import string_to_key

        for slave in athena["realm"].slaves:
            assert slave.db.principal_key(
                Principal("raeburn", "", REALM)
            ) == string_to_key("ra-new-pw")

    def test_1300_master_crash(self, athena):
        net, realm = athena["net"], athena["realm"]
        net.set_down(realm.master_host.name)
        # Fresh logins still work (slaves), admin doesn't.
        station = athena_ws(athena, "relogin")
        home = station.login("raeburn", "ra-new-pw")
        assert home is not None
        kdbm = KdbmClient(station.krb, realm.master_host.address)
        with pytest.raises(Unreachable):
            kdbm.change_password(Principal("raeburn", "", REALM),
                                 "ra-new-pw", "x")
        station.logout()
        net.set_up(realm.master_host.name)

    def test_1400_attacker_probes(self, athena):
        net = athena["net"]
        jis_ws = athena["workstations"]["jis"]
        thief = net.add_host("thief-box")
        loot = steal_credentials(jis_ws.krb)
        assert loot  # jis has tickets to steal
        from repro.core import krb_rd_req

        mount_cred = [s for s in loot if "mountd" in str(s.credential.service)]
        target = mount_cred[0] if mount_cred else loot[0]
        service = target.credential.service
        key = athena["realm"].service_key(service) if str(service) in \
            athena["realm"]._service_keys else None
        if key is not None:
            with pytest.raises(KerberosError):
                krb_rd_req(
                    use_stolen_credential(target, thief),
                    service, key, thief.address, net.clock.now(),
                )

    def test_1700_logout_sweep(self, athena):
        for name in list(athena["workstations"]):
            station = athena["workstations"].pop(name)
            station.logout()
        assert len(athena["nfs"].credmap) == 0

    def test_1800_after_hours_forgery_fails(self, athena):
        from repro.apps.nfs.client import NfsClient

        ws_host = athena["net"].add_host("night-prowler")
        probe = NfsClient(ws_host, athena["fs_host"].address, uid_on_client=1001)
        with pytest.raises(NfsClientError):
            probe.read("/u/jis/morning-notes")

    def test_2359_the_wiretap_learned_nothing(self, athena):
        eve = athena["eve"]
        assert len(eve.captured) > 100  # a whole day of traffic
        from repro.crypto import string_to_key

        for name, pw, _ in USERS:
            assert not eve.saw_bytes(pw.encode())
            assert not eve.saw_bytes(string_to_key(pw).key_bytes)
        assert not eve.saw_bytes(b"ra-new-pw")
        # Mail content travelled PRIVATE.
        assert not eve.saw_bytes(b"staff meeting")
        # NFS file data is the accepted cleartext (level-1 protection).
        assert eve.saw_bytes(b"jis was here")
