"""Workload generator tests (the Section 9 scale machinery)."""

import pytest

from repro.netsim import Network
from repro.realm import Realm
from repro.workload import AthenaWorkload

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def workload():
    net = Network()
    realm = Realm(net, REALM, n_slaves=1)
    return AthenaWorkload(realm, n_users=50, n_services=10, seed=7)


class TestPopulation:
    def test_users_and_services_registered(self, workload):
        assert len(workload.realm.db) >= 60
        assert len(workload.users) == 50
        assert len(workload.services) == 10

    def test_registered_users_can_login(self, workload):
        ws = workload.realm.workstation()
        username, password = workload.users[0]
        assert ws.client.kinit(username, password) is not None

    def test_deterministic_per_seed(self):
        def run(seed):
            net = Network()
            realm = Realm(net, REALM)
            w = AthenaWorkload(realm, n_users=20, n_services=5, seed=seed)
            return [w.random_user() for _ in range(10)]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_working_set_is_heavy_tailed(self, workload):
        picks = workload.pick_services(500)
        indexes = [workload.services.index(s) for s in picks]
        # The most popular service dominates.
        assert indexes.count(0) > len(indexes) * 0.3

    def test_workstations_spread_kdc_preference(self, workload):
        stations = workload.workstations(4, spread_kdcs=True)
        preferred = [
            ws.client.kdcs(REALM)[0] for ws in stations
        ]
        assert len(set(preferred)) == 2  # master + 1 slave alternate


class TestDrivers:
    def test_login_storm(self, workload):
        stations = workload.workstations(10)
        stats = workload.login_storm(stations)
        assert stats.logins == 10
        assert stats.kdc_messages == 10  # one AS exchange each

    def test_session_traffic_caches_tickets(self, workload):
        stations = workload.workstations(5)
        workload.login_storm(stations)
        stats = workload.session_traffic(stations, uses_per_session=8)
        assert stats.service_uses == 40
        assert stats.failures == 0
        # Far fewer TGS exchanges than uses: the cache works.
        assert stats.kdc_messages < stats.service_uses
        assert 0 < stats.kdc_requests_per_use < 1

    def test_busy_hour_combined(self, workload):
        stats = workload.busy_hour(n_stations=8, uses_per_session=4)
        assert stats.logins == 8
        assert stats.service_uses == 32
        assert stats.kdc_messages >= 8  # at least the AS exchanges
