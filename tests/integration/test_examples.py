"""Every example script must run cleanly end to end.

The examples are documentation; broken documentation is worse than none.
Each is executed in-process and its output spot-checked for the story it
claims to tell.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTATIONS = {
    "quickstart.py": ["Mutual authentication succeeded", "Tickets destroyed"],
    "athena_workstation.py": [
        "DENIED",
        "no amount of IP address forgery",
    ],
    "cross_realm.py": ["jis@ATHENA.MIT.EDU", "unlinked realm"],
    "attacks_defeated.py": [
        "RD_AP_REPEAT",
        "RD_AP_BADD",
        "RD_AP_EXP",
        "impostor caught",
    ],
    "administration.py": [
        "PERMITTED",
        "DENIED",
        "administration requests cannot be serviced",
    ],
    "kerberizing_an_app.py": [
        "nothing stopped the lie",
        "nothing to lie about",
    ],
    "wire_trace.py": ["AS-REQ", "TGS-REP", "sealed"],
    "preauth_hardening.py": [
        "recovered password = 'password'",
        "REFUSED (preauth required)",
    ],
}


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    @pytest.mark.parametrize("name", sorted(EXPECTATIONS))
    def test_example_runs_and_tells_its_story(self, name):
        output = run_example(name)
        for marker in EXPECTATIONS[name]:
            assert marker in output, f"{name} output missing {marker!r}"

    def test_every_example_is_covered(self):
        on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(EXPECTATIONS), (
            "examples and EXPECTATIONS out of sync"
        )

    def test_main_module_demo(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            runpy.run_module("repro", run_name="__main__")
        out = buffer.getvalue()
        assert "AS exchange" in out
        assert "mutual" in out
