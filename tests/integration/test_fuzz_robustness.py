"""Robustness: every network-facing server survives hostile bytes.

An open network delivers arbitrary datagrams to every port.  No server
may crash, hang, or corrupt state on malformed input — each must answer
with a protocol error (or drop) and keep serving legitimate clients.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsServer
from repro.apps.pop import PopServer
from repro.apps.register import RegisterServer
from repro.apps.sms import SmsServer
from repro.netsim import Network, NoSuchService
from repro.principal import Principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"

# Hand-picked nasty payloads plus a few structured-ish prefixes.
NASTY = [
    b"",
    b"\x00",
    b"\xff" * 3,
    b"\x01",                       # bare message-type byte
    b"\x01" + b"\x00" * 100,       # AS_REQ-shaped zeros
    b"\x03" + b"\xff" * 50,        # TGS_REQ-shaped garbage
    b"\x07" + b"A" * 1000,
    bytes(range(256)),
    b"\x01" + (2**31).to_bytes(4, "big") + b"x",   # absurd length prefix
    b"%s%s%s%n",
    "🔥💀".encode("utf-8"),
]


@pytest.fixture(scope="module")
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    realm.add_admin("jis", "admin-pw")
    service, _ = realm.add_service("pop", "mailhost")
    nfs_service, _ = realm.add_service("nfs", "fs1")
    mount_service, _ = realm.add_service("mountd", "fs1")

    pop_host = net.add_host("mailhost")
    PopServer(service, realm.srvtab_for(service), pop_host)

    fs_host = net.add_host("fs1")
    srvtab = realm.srvtab_for(nfs_service, mount_service)
    nfs = NfsServer(fs_host, mode=AuthMode.MAPPED, service=nfs_service, srvtab=srvtab)
    MountDaemon(nfs, mount_service, srvtab, fs_host)

    hesiod_host = net.add_host("hesiod")
    HesiodServer(hesiod_host)
    sms_host = net.add_host("sms")
    SmsServer(sms_host)
    RegisterServer(realm.db, realm.master_host, sms_host.address)

    attacker = net.add_host("attacker")
    targets = [
        (realm.master_host.address, 750),   # KDC
        (realm.master_host.address, 751),   # KDBM
        (realm.master_host.address, 261),   # register
        (pop_host.address, 109),            # POP
        (fs_host.address, 2049),            # NFS
        (fs_host.address, 635),             # mountd
    ]
    return dict(net=net, realm=realm, attacker=attacker, targets=targets,
                hesiod=hesiod_host, sms=sms_host)


class TestNastyPayloads:
    @pytest.mark.parametrize("payload", NASTY, ids=range(len(NASTY)))
    def test_every_server_survives(self, world, payload):
        attacker = world["attacker"]
        for address, port in world["targets"]:
            # Must not raise anything except clean transport errors; any
            # reply bytes are acceptable, crashes are not.
            try:
                attacker.rpc(address, port, payload)
            except NoSuchService:
                pytest.fail(f"port {port} not bound")
        # Hesiod and SMS parse strict WireStructs; they may raise decode
        # errors at the handler boundary, which the simulated network
        # surfaces to the caller — the *server* stays up either way.
        for address in (world["hesiod"].address, world["sms"].address):
            try:
                attacker.rpc(address, 251 if address == world["hesiod"].address else 260, payload)
            except Exception:
                pass

    def test_servers_still_work_after_the_barrage(self, world):
        """After all that garbage, a legitimate login still succeeds."""
        realm = world["realm"]
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_kdc_never_crashes_on_random_bytes(self, world, payload):
        attacker = world["attacker"]
        reply = attacker.rpc(world["targets"][0][0], 750, payload)
        # The KDC always answers *something* (an error envelope).
        assert isinstance(reply, bytes)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_nfs_never_crashes_on_random_bytes(self, world, payload):
        attacker = world["attacker"]
        fs_target = [t for t in world["targets"] if t[1] == 2049][0]
        reply = attacker.rpc(fs_target[0], 2049, payload)
        assert isinstance(reply, bytes)

    def test_kdc_error_counter_reflects_garbage(self, world):
        realm = world["realm"]
        before = realm.kdc.errors
        world["attacker"].rpc(realm.master_host.address, 750, b"\x01junk")
        assert realm.kdc.errors == before + 1
