"""Robustness: every network-facing server survives hostile bytes.

An open network delivers arbitrary datagrams to every port.  No server
may crash, hang, or corrupt state on malformed input — each must answer
with a protocol error (or drop) and keep serving legitimate clients.

The seeded-mutation classes at the bottom target the propagation
(kprop/kpropd) and administration (KDBM) planes specifically: they take
*valid* wire messages, apply deterministic bit flips / truncations /
splices, and require typed protocol errors only — never ``struct.error``
or ``IndexError`` leaking out of a decoder.

Mutation smoke-check (run by hand when touching these classes): removing
the short-read guard from ``repro.encode.buffer.Decoder._take`` — so
truncated reads fall through to raw ``struct.error`` — fails
``test_decoders_raise_typed_errors_only``,
``test_kdbm_request_decoder_is_typed``, and
``test_kpropd_never_crashes_on_random_bytes``.  The suite demonstrably
detects an untyped error path, not just total crashes.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.hesiod import HesiodServer
from repro.apps.nfs import AuthMode, MountDaemon, NfsServer
from repro.apps.pop import PopServer
from repro.apps.register import RegisterServer
from repro.apps.sms import SmsServer
from repro.netsim import Network, NoSuchService
from repro.principal import Principal
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"

# Hand-picked nasty payloads plus a few structured-ish prefixes.
NASTY = [
    b"",
    b"\x00",
    b"\xff" * 3,
    b"\x01",                       # bare message-type byte
    b"\x01" + b"\x00" * 100,       # AS_REQ-shaped zeros
    b"\x03" + b"\xff" * 50,        # TGS_REQ-shaped garbage
    b"\x07" + b"A" * 1000,
    bytes(range(256)),
    b"\x01" + (2**31).to_bytes(4, "big") + b"x",   # absurd length prefix
    b"%s%s%s%n",
    "🔥💀".encode("utf-8"),
]


@pytest.fixture(scope="module")
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    realm.add_admin("jis", "admin-pw")
    service, _ = realm.add_service("pop", "mailhost")
    nfs_service, _ = realm.add_service("nfs", "fs1")
    mount_service, _ = realm.add_service("mountd", "fs1")

    pop_host = net.add_host("mailhost")
    PopServer(service, realm.srvtab_for(service)).attach(pop_host)

    fs_host = net.add_host("fs1")
    srvtab = realm.srvtab_for(nfs_service, mount_service)
    nfs = NfsServer(mode=AuthMode.MAPPED, service=nfs_service, srvtab=srvtab).attach(fs_host)
    MountDaemon(nfs, mount_service, srvtab).attach(fs_host)

    hesiod_host = net.add_host("hesiod")
    HesiodServer().attach(hesiod_host)
    sms_host = net.add_host("sms")
    SmsServer().attach(sms_host)
    RegisterServer(realm.db, sms_host.address).attach(realm.master_host)

    attacker = net.add_host("attacker")
    targets = [
        (realm.master_host.address, 750),   # KDC
        (realm.master_host.address, 751),   # KDBM
        (realm.master_host.address, 261),   # register
        (pop_host.address, 109),            # POP
        (fs_host.address, 2049),            # NFS
        (fs_host.address, 635),             # mountd
    ]
    return dict(net=net, realm=realm, attacker=attacker, targets=targets,
                hesiod=hesiod_host, sms=sms_host)


class TestNastyPayloads:
    @pytest.mark.parametrize("payload", NASTY, ids=range(len(NASTY)))
    def test_every_server_survives(self, world, payload):
        attacker = world["attacker"]
        for address, port in world["targets"]:
            # Must not raise anything except clean transport errors; any
            # reply bytes are acceptable, crashes are not.
            try:
                attacker.rpc(address, port, payload)
            except NoSuchService:
                pytest.fail(f"port {port} not bound")
        # Hesiod and SMS parse strict WireStructs; they may raise decode
        # errors at the handler boundary, which the simulated network
        # surfaces to the caller — the *server* stays up either way.
        for address in (world["hesiod"].address, world["sms"].address):
            try:
                attacker.rpc(address, 251 if address == world["hesiod"].address else 260, payload)
            except Exception:
                pass

    def test_servers_still_work_after_the_barrage(self, world):
        """After all that garbage, a legitimate login still succeeds."""
        realm = world["realm"]
        ws = realm.workstation()
        assert ws.client.kinit("jis", "jis-pw") is not None

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_kdc_never_crashes_on_random_bytes(self, world, payload):
        attacker = world["attacker"]
        reply = attacker.rpc(world["targets"][0][0], 750, payload)
        # The KDC always answers *something* (an error envelope).
        assert isinstance(reply, bytes)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_nfs_never_crashes_on_random_bytes(self, world, payload):
        attacker = world["attacker"]
        fs_target = [t for t in world["targets"] if t[1] == 2049][0]
        reply = attacker.rpc(fs_target[0], 2049, payload)
        assert isinstance(reply, bytes)

    def test_kdc_error_counter_reflects_garbage(self, world):
        realm = world["realm"]
        before = realm.kdc.errors
        world["attacker"].rpc(realm.master_host.address, 750, b"\x01junk")
        assert realm.kdc.errors == before + 1


# -- seeded mutation fuzzing of the propagation and admin planes --------------

#: Untyped exceptions a decoder must never leak — a ``struct.error`` or
#: ``IndexError`` escaping means some byte layout was trusted unchecked.
UNTYPED = (AssertionError, IndexError, KeyError, TypeError, UnicodeDecodeError)

FUZZ_SEED = 0x1988
MUTATIONS_PER_MESSAGE = 60


def mutations(data: bytes, seed: int, count: int = MUTATIONS_PER_MESSAGE):
    """Deterministic corruption stream: bit flips, truncations, and
    garbage splices of a valid message.  Same seed → same stream, so a
    failure reproduces exactly."""
    rng = random.Random(seed)
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45 and data:
            flipped = bytearray(data)
            i = rng.randrange(len(flipped))
            flipped[i] ^= 1 << rng.randrange(8)
            yield bytes(flipped)
        elif roll < 0.80:
            yield data[: rng.randrange(len(data) + 1)]
        else:
            i = rng.randrange(len(data) + 1)
            junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
            yield data[:i] + junk + data[i:]


@pytest.fixture(scope="module")
def prop_world():
    """A realm with a slave (so kpropd is live) plus captured-valid
    kprop and KDBM wire messages to mutate."""
    import struct

    from repro.database.journal import OP_PUT
    from repro.kdbm.client import KdbmClient
    from repro.replication.messages import (
        DeltaBody,
        DeltaTransfer,
        PropKind,
        PropTransfer,
        encode_prop_message,
    )

    net = Network(seed=FUZZ_SEED)
    realm = Realm(net, REALM, n_slaves=1)
    realm.add_user("jis", "jis-pw")
    realm.add_admin("jis", "jis-admin-pw")
    realm.propagate()

    # A valid full-dump transfer, exactly as kprop would send it.
    dump = realm.db.dump(now=net.clock.now())
    full_wire = encode_prop_message(
        PropKind.FULL,
        PropTransfer(checksum=realm.db.master_key.checksum(dump), dump=dump),
    )

    # A valid delta transfer continuing from seq 0.
    journal = realm.db.journal
    body = DeltaBody(
        epoch=journal.epoch,
        from_seq=0,
        to_seq=journal.last_seq,
        time=net.clock.now(),
        entries=list(journal.entries_since(0)),
    )
    delta_wire = encode_prop_message(
        PropKind.DELTA,
        DeltaTransfer(
            checksum=realm.db.master_key.checksum(body.to_bytes()),
            body=body.to_bytes(),
        ),
    )
    assert struct is not None  # imported for the error-type checks below

    # A real KDBM request, captured off the wire during a password change.
    kdbm_payloads = []

    def tap(d):
        if d.dst_port == 751:
            kdbm_payloads.append(d.payload)

    net.add_tap(tap)
    ws = realm.workstation()
    KdbmClient(ws.client, realm.master_host.address).change_password(
        Principal("jis", "", REALM), "jis-pw", "jis-pw-2"
    )
    net.remove_tap(tap)
    assert kdbm_payloads, "no KDBM datagram captured"

    attacker = net.add_host("prop-attacker")
    return dict(
        net=net,
        realm=realm,
        attacker=attacker,
        full_wire=full_wire,
        delta_wire=delta_wire,
        kdbm_wire=kdbm_payloads[0],
    )


class TestPropagationFuzz:
    """kprop/kpropd: every mutated transfer draws a typed reply and the
    slave database stays intact."""

    @pytest.mark.parametrize("which", ["full_wire", "delta_wire"])
    def test_kpropd_survives_mutated_transfers(self, prop_world, which):
        import struct

        slave = prop_world["realm"].slaves[0]
        attacker = prop_world["attacker"]
        before = list(slave.db.store.items())
        for mutant in mutations(prop_world[which], seed=FUZZ_SEED):
            if mutant == prop_world[which]:
                continue  # the identity mutation is a legitimate transfer
            try:
                reply = attacker.rpc(slave.host.address, 754, mutant)
            except (struct.error, *UNTYPED) as exc:  # pragma: no cover
                pytest.fail(f"untyped {type(exc).__name__} leaked: {exc}")
            assert isinstance(reply, bytes) and reply
        # Corruption applied nothing: the slave kept its previous copy.
        assert list(slave.db.store.items()) == before

    def test_propagation_still_works_after_the_barrage(self, prop_world):
        realm = prop_world["realm"]
        realm.add_user("survivor", "pw")
        result = realm.propagate()
        assert result.all_ok
        assert realm.slaves[0].db.exists(Principal("survivor", "", REALM))

    @given(st.binary(min_size=0, max_size=400))
    @settings(
        max_examples=50,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_kpropd_never_crashes_on_random_bytes(self, prop_world, payload):
        reply = prop_world["attacker"].rpc(
            prop_world["realm"].slaves[0].host.address, 754, payload
        )
        assert isinstance(reply, bytes) and reply

    def test_decoders_raise_typed_errors_only(self, prop_world):
        """Below the daemon: the message decoders themselves must raise
        DecodeError (or parse), never a bare struct/index error."""
        from repro.encode import DecodeError
        from repro.replication.messages import decode_prop_message

        for source in ("full_wire", "delta_wire"):
            for mutant in mutations(prop_world[source], seed=FUZZ_SEED + 1):
                try:
                    decode_prop_message(mutant)
                except DecodeError:
                    pass


class TestKdbmFuzz:
    """The admin port: mutated requests draw error replies (or typed
    errors), never corrupt the database, and the server keeps serving."""

    def test_kdbm_survives_mutated_requests(self, prop_world):
        import struct

        realm = prop_world["realm"]
        attacker = prop_world["attacker"]
        key_before = realm.db.principal_key(Principal("jis", "", REALM))
        for mutant in mutations(prop_world["kdbm_wire"], seed=FUZZ_SEED + 2):
            if mutant == prop_world["kdbm_wire"]:
                continue  # replaying the original intact is replay-cache fodder
            try:
                reply = attacker.rpc(realm.master_host.address, 751, mutant)
            except (struct.error, *UNTYPED) as exc:  # pragma: no cover
                pytest.fail(f"untyped {type(exc).__name__} leaked: {exc}")
            # An error envelope or an empty drop — both are typed
            # refusals; a crash would have surfaced above.
            assert isinstance(reply, bytes)
        assert realm.db.principal_key(Principal("jis", "", REALM)) == key_before

    def test_kdbm_request_decoder_is_typed(self, prop_world):
        from repro.encode import DecodeError
        from repro.kdbm.messages import KdbmRequest

        for mutant in mutations(prop_world["kdbm_wire"], seed=FUZZ_SEED + 3):
            try:
                KdbmRequest.from_bytes(mutant)
            except DecodeError:
                pass

    def test_admin_still_works_after_the_barrage(self, prop_world):
        realm = prop_world["realm"]
        from repro.kdbm.client import KdbmClient

        ws = realm.workstation()
        KdbmClient(ws.client, realm.master_host.address).change_password(
            Principal("jis", "", REALM), "jis-pw-2", "jis-pw-3"
        )
        from repro.crypto import string_to_key

        assert realm.db.principal_key(
            Principal("jis", "", REALM)
        ) == string_to_key("jis-pw-3")
