"""The paper's Section 8 open problems, demonstrated (not solved).

*"An open problem is the proxy problem.  How can an authenticated user
allow a server to acquire other network services on her/his behalf? ...
Another example of this problem is what we call authentication
forwarding. ... We do not presently have a solution to this problem."*

These tests show precisely *why* it is a problem in the 1988 design:
tickets are bound to the workstation's network address, so nothing a
user can hand to another machine works from there — which is both the
security property (stolen tickets die off-host, tested elsewhere) and
the usability hole (legitimate delegation is impossible).  V5's
forwardable/proxiable tickets were the eventual answer; per DESIGN.md
they are out of scope here.
"""

import pytest

from repro.apps.rlogin import RloginServer, rsh
from repro.core import (
    ErrorCode,
    KerberosClient,
    KerberosError,
    Principal,
    krb_mk_req,
    krb_rd_req,
)
from repro.netsim import Network
from repro.realm import Realm

REALM = "ATHENA.MIT.EDU"


@pytest.fixture
def world():
    net = Network()
    realm = Realm(net, REALM)
    realm.add_user("jis", "jis-pw")
    # A compute server and a fileserver-ish service, plus rlogin on priam.
    nfs_service, nfs_key = realm.add_service("nfs", "fileserver")
    rcmd_service, _ = realm.add_service("rcmd", "priam")
    priam = net.add_host("priam")
    rlogind = RloginServer(rcmd_service, realm.srvtab_for(rcmd_service)).attach(priam)
    rlogind.add_account("jis")
    return dict(
        net=net, realm=realm, nfs_service=nfs_service, nfs_key=nfs_key,
        rcmd_service=rcmd_service, priam=priam,
    )


class TestProxyProblem:
    """"the use of a service that will gain access to protected files
    directly from a fileserver" — a print server, say."""

    def test_handed_over_credentials_fail_from_the_proxy(self, world):
        net, realm = world["net"], world["realm"]
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        cred = ws.client.get_credential(world["nfs_service"])

        # The user hands their credential to a print server, asking it
        # to fetch a file on their behalf.  The print server builds the
        # best request it can...
        print_server = net.add_host("printserver")
        request = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=cred.session_key,
            client=Principal("jis", "", REALM),
            client_address=print_server.address,
            now=print_server.clock.now(),
        )
        # ...and the fileserver rejects it: the ticket names the user's
        # workstation, not the print server.
        with pytest.raises(KerberosError) as err:
            krb_rd_req(
                request, world["nfs_service"], world["nfs_key"],
                print_server.address, net.clock.now(),
            )
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_no_ticket_the_user_can_request_helps(self, world):
        """Even a fresh ticket requested *for* the proxy scenario is
        still issued to the requesting workstation's address — the KDC
        writes the address from the packet, not from any field the user
        controls."""
        net, realm = world["net"], world["realm"]
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")
        # Force a brand-new ticket; it is still bound to ws's address.
        ws.client.cache._creds.pop(str(world["nfs_service"]), None)
        cred = ws.client.get_credential(world["nfs_service"])
        from repro.core import unseal_ticket

        ticket = unseal_ticket(cred.ticket, world["nfs_key"])
        assert ticket.address == ws.host.address.as_int


class TestAuthenticationForwarding:
    """Paper: "If a user is logged into a workstation and logs in to a
    remote host, it would be nice if the user had access to the same
    services available locally, while running a program on the remote
    host"."""

    def test_remote_session_has_no_usable_credentials(self, world):
        net, realm = world["net"], world["realm"]
        ws = realm.workstation()
        ws.client.kinit("jis", "jis-pw")

        # jis rlogins to priam (works: that is an ordinary AP exchange).
        output = rsh(
            ws.client, world["rcmd_service"], world["priam"].address, "w"
        )
        assert "w" in output

        # A program now running ON priam wants jis's files.  Option 1:
        # use tickets copied from the workstation — dies on the address
        # check (the proxy problem again, from priam this time).
        cred = ws.client.get_credential(world["nfs_service"])
        request = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=cred.session_key,
            client=Principal("jis", "", REALM),
            client_address=world["priam"].address,
            now=net.clock.now(),
        )
        with pytest.raises(KerberosError) as err:
            krb_rd_req(
                request, world["nfs_service"], world["nfs_key"],
                world["priam"].address, net.clock.now(),
            )
        assert err.value.code == ErrorCode.RD_AP_BADD

    def test_the_workaround_requires_the_password_again(self, world):
        """Option 2 — the only thing that works in the 1988 design: type
        the password again on the remote host (fresh kinit from priam's
        address).  Which is exactly the paper's concern: "the user might
        not trust the remote host", and now it has their password."""
        net, realm = world["net"], world["realm"]
        priam_client = KerberosClient(
            world["priam"], REALM, [realm.master_host.address]
        )
        priam_client.kinit("jis", "jis-pw")   # password typed on priam!
        request, _, _ = priam_client.mk_req(world["nfs_service"])
        ctx = krb_rd_req(
            request, world["nfs_service"], world["nfs_key"],
            world["priam"].address, net.clock.now(),
        )
        assert ctx.client.name == "jis"
        # It works — at the price of trusting priam with the password,
        # the tradeoff the paper declines to make automatically.
