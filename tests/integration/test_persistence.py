"""Persistence and restart: the realm survives its machines rebooting.

The Kerberos machines keep their state in files — the database (ndbm in
the paper, our FileStore), the master-key stash, the ACL file, and each
server's srvtab.  A reboot reconstructs everything from disk, and
credentials issued before the restart keep working (the keys didn't
change, only the process).
"""

import pytest

from repro.core import (
    KerberosClient,
    KerberosServer,
    Principal,
    SrvTab,
    krb_rd_req,
    tgs_principal,
)
from repro.crypto import KeyGenerator
from repro.database import (
    AccessControlList,
    FileStore,
    KerberosDatabase,
    MasterKey,
)
from repro.database.admin_tools import ext_srvtab, kdb_init, register_service
from repro.netsim import Network

REALM = "ATHENA.MIT.EDU"


class TestColdStart:
    def test_full_realm_from_files(self, tmp_path):
        """Build a realm on disk, tear down every process, restart from
        the files alone, and verify an old ticket still authenticates."""
        db_path = str(tmp_path / "principal.db")
        stash_path = str(tmp_path / ".k")
        acl_path = str(tmp_path / "kerberos.acl")
        srvtab_path = str(tmp_path / "srvtab")

        # --- first boot: initialize everything onto disk --------------
        gen = KeyGenerator(seed=b"persist")
        db = kdb_init(REALM, "master-pw", gen, store=FileStore(db_path))
        db.master_key.stash(stash_path)
        db.add_principal(Principal("jis", "", REALM), password="jis-pw")
        service = Principal("rlogin", "priam", REALM)
        register_service(db, service, gen)
        with open(srvtab_path, "wb") as f:
            f.write(ext_srvtab(db, [service]))
        acl = AccessControlList([Principal("jis", "admin", REALM)])
        acl.save(acl_path)

        net = Network()
        kdc_host = net.add_host("kerberos")
        KerberosServer(db, gen.fork(b"kdc1")).attach(kdc_host)
        ws = net.add_host("ws")
        client = KerberosClient(ws, REALM, [kdc_host.address])
        client.kinit("jis", "jis-pw")
        pre_restart_cred = client.get_credential(service)

        # --- the machine reboots: all processes gone ------------------
        net.set_down("kerberos")
        kdc_host.unbind(750)

        # --- second boot: reconstruct purely from the files ------------
        master2 = MasterKey.load_stash(stash_path)
        db2 = KerberosDatabase(REALM, master2, store=FileStore(db_path))
        acl2 = AccessControlList.load(acl_path)
        srvtab2 = SrvTab.from_bytes(open(srvtab_path, "rb").read())
        net.set_up("kerberos")
        KerberosServer(db2, gen.fork(b"kdc2")).attach(kdc_host)

        assert db2.exists(Principal("jis", "", REALM))
        assert acl2.check(Principal("jis", "admin", REALM))

        # Old credentials still work: same service key on disk.
        from repro.core.applib import krb_mk_req

        request = krb_mk_req(
            ticket_blob=pre_restart_cred.ticket,
            session_key=pre_restart_cred.session_key,
            client=Principal("jis", "", REALM),
            client_address=ws.address,
            now=ws.clock.now(),
            kvno=pre_restart_cred.kvno,
        )
        ctx = krb_rd_req(request, service, srvtab2, ws.address, net.clock.now())
        assert ctx.client.name == "jis"

        # And new logins against the restarted KDC work too.
        client2 = KerberosClient(ws, REALM, [kdc_host.address])
        assert client2.kinit("jis", "jis-pw") is not None

    def test_wrong_stash_refuses_database(self, tmp_path):
        gen = KeyGenerator(seed=b"persist2")
        db_path = str(tmp_path / "principal.db")
        db = kdb_init(REALM, "master-pw", gen, store=FileStore(db_path))
        db.add_principal(Principal("jis", "", REALM), password="x")

        from repro.database import DatabaseError

        with pytest.raises(DatabaseError):
            KerberosDatabase(
                REALM,
                MasterKey.from_password("not-the-master"),
                store=FileStore(db_path),
            )

    def test_slave_dump_to_file_and_back(self, tmp_path):
        """Backups (kdb_util) round-trip through the filesystem."""
        from repro.database.admin_tools import kdb_util_dump, kdb_util_load

        gen = KeyGenerator(seed=b"persist3")
        db = kdb_init(REALM, "master-pw", gen)
        db.add_principal(Principal("jis", "", REALM), password="pw")
        backup = str(tmp_path / "backup.kdb")
        kdb_util_dump(db, backup, now=42.0)

        restored = KerberosDatabase(
            REALM, MasterKey.from_password("master-pw"),
            store=FileStore(str(tmp_path / "restored.db")),
        )
        count = kdb_util_load(restored, backup)
        assert count == len(db.store)
        assert restored.principal_key(
            Principal("jis", "", REALM)
        ) == db.principal_key(Principal("jis", "", REALM))
        # And the restore persisted to ITS file store.
        reopened = KerberosDatabase(
            REALM, MasterKey.from_password("master-pw"),
            store=FileStore(str(tmp_path / "restored.db")),
        )
        assert reopened.exists(Principal("jis", "", REALM))
