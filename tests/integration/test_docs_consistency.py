"""Documentation self-consistency: references in the docs must be real.

CLAIMS.md points at tests, DESIGN.md at bench targets, README at example
scripts — a rename anywhere must fail here rather than rot silently.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


class TestClaimsReferences:
    def test_every_test_reference_exists(self):
        text = (ROOT / "docs" / "CLAIMS.md").read_text()
        refs = set(
            re.findall(r"`((?:\w+/)+test_\w+\.py)(?:::(\w+(?:::\w+)?))?`", text)
        )
        assert len(refs) > 50  # the matrix is substantial
        problems = []
        for path, selector in sorted(refs):
            full = ROOT / "tests" / path
            if not full.exists():
                problems.append(f"missing test file: {path}")
                continue
            if selector:
                name = selector.split("::")[-1]
                if name not in full.read_text():
                    problems.append(f"{path}: no symbol {name}")
        assert not problems, problems


class TestDesignReferences:
    def test_every_bench_target_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"`benchmarks/(test_bench_\w+\.py)`", text))
        assert len(targets) >= 18
        missing = [t for t in targets if not (ROOT / "benchmarks" / t).exists()]
        assert not missing, missing

    def test_every_bench_file_is_in_design(self):
        text = (ROOT / "DESIGN.md").read_text()
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("test_bench_*.py")}
        documented = set(re.findall(r"`benchmarks/(test_bench_\w+\.py)`", text))
        undocumented = on_disk - documented
        assert not undocumented, undocumented

    def test_every_module_in_inventory_imports(self):
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        import importlib

        failures = []
        for name in sorted(modules):
            try:
                importlib.import_module(name)
                continue
            except ImportError:
                pass
            # Dotted references to a function/class: import the parent
            # and look the attribute up.
            parent, _, attr = name.rpartition(".")
            try:
                module = importlib.import_module(parent)
            except ImportError:
                failures.append(name)
                continue
            if not hasattr(module, attr):
                failures.append(name)
        assert not failures, failures


class TestReadmeReferences:
    def test_example_table_matches_disk(self):
        text = (ROOT / "README.md").read_text()
        documented = set(re.findall(r"`(\w+\.py)`", text))
        on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
        # Every example on disk beyond the quickstart table must at least
        # run (covered elsewhere); here: nothing documented is missing.
        missing = {d for d in documented if d.endswith(".py")} - on_disk
        assert not missing, missing


class TestExperimentsCoverage:
    def test_every_figure_has_a_section(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for exp in ["F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
                    "F10", "F11", "F12", "F13", "NFS", "S9", "X1",
                    "C1", "T1", "L1", "P1"]:
            assert f"## {exp} " in text or f"## {exp} —" in text, exp
