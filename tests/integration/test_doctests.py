"""Doctests embedded in API docstrings must stay true."""

import doctest

import pytest

import repro.crypto.des
import repro.crypto.keygen
import repro.encode.buffer


@pytest.mark.parametrize(
    "module",
    [repro.crypto.des, repro.crypto.keygen, repro.encode.buffer],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
