"""Property-based tests of whole-protocol invariants.

Hypothesis generates random users, passwords, services, lifetimes, and
skews; the invariants of Section 4 must hold for all of them.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    KerberosClient,
    KerberosError,
    KerberosServer,
    Principal,
    krb_rd_req,
    tgs_principal,
    unseal_ticket,
)
from repro.crypto import KeyGenerator, string_to_key
from repro.database.admin_tools import kdb_init, register_service
from repro.netsim import Network

REALM = "ATHENA.MIT.EDU"

usernames = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)
passwords = st.text(min_size=1, max_size=24).filter(lambda s: s.strip())
lifetimes = st.floats(min_value=60.0, max_value=24 * 3600.0)


def build_world(username, password):
    net = Network()
    gen = KeyGenerator(seed=b"props" + username.encode("utf-8", "replace"))
    db = kdb_init(REALM, "mpw", gen)
    db.add_principal(Principal(username, "", REALM), password=password)
    service = Principal("svc", "host", REALM)
    key = register_service(db, service, gen)
    kdc_host = net.add_host("kdc")
    KerberosServer(db, gen.fork(b"k")).attach(kdc_host)
    ws = net.add_host("ws")
    client = KerberosClient(ws, REALM, [kdc_host.address])
    return net, client, service, key, db


class TestProtocolInvariants:
    @given(usernames, passwords, lifetimes)
    @settings(max_examples=25, deadline=None)
    def test_login_and_service_for_any_user(self, username, password, life):
        """Any registered (user, password) can complete the full protocol."""
        net, client, service, key, db = build_world(username, password)
        client.kinit(username, password, life=life)
        request, cred, _ = client.mk_req(service)
        ctx = krb_rd_req(request, service, key,
                         client.host.address, net.clock.now())
        assert ctx.client.name == username
        # Lifetime never exceeds policy or the request.
        assert cred.life <= min(life, 8 * 3600.0) + 1e-9

    @given(usernames, passwords, passwords)
    @settings(max_examples=25, deadline=None)
    def test_wrong_password_always_fails(self, username, real_pw, wrong_pw):
        """No wrong password ever opens an AS reply (unless the derived
        DES keys collide, which string_to_key makes effectively
        impossible for distinct inputs — asserted here)."""
        if string_to_key(real_pw) == string_to_key(wrong_pw):
            return  # identical effective passwords
        net, client, service, key, db = build_world(username, real_pw)
        with pytest.raises(KerberosError):
            client.kinit(username, wrong_pw)

    @given(usernames, passwords, lifetimes)
    @settings(max_examples=20, deadline=None)
    def test_issued_tickets_internally_consistent(self, username, password, life):
        """Every issued ticket's sealed content agrees with the reply
        metadata: same session key, same client, issue time = KDC time."""
        net, client, service, key, db = build_world(username, password)
        client.kinit(username, password, life=life)
        cred = client.get_credential(service, life=life)
        ticket = unseal_ticket(cred.ticket, key)
        assert ticket.session_key == cred.session_key.key_bytes
        assert ticket.client.name == username
        assert ticket.timestamp == cred.issue_time
        assert ticket.life == cred.life
        assert ticket.address == client.host.address.as_int

    @given(usernames, passwords)
    @settings(max_examples=15, deadline=None)
    def test_session_keys_never_repeat(self, username, password):
        """Each exchange mints a fresh session key."""
        net, client, service, key, db = build_world(username, password)
        client.kinit(username, password)
        keys = {client.cache.tgt(REALM).session_key.key_bytes}
        for _ in range(5):
            client.cache._creds.pop(str(service), None)
            cred = client.get_credential(service)
            assert cred.session_key.key_bytes not in keys
            keys.add(cred.session_key.key_bytes)

    @given(usernames, passwords, st.floats(min_value=-240, max_value=240))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_small_skew_never_breaks_protocol(self, username, password, skew):
        """Drift inside the paper's several-minute assumption is always
        tolerated."""
        net = Network()
        gen = KeyGenerator(seed=b"skewprop")
        db = kdb_init(REALM, "mpw", gen)
        db.add_principal(Principal(username, "", REALM), password=password)
        service = Principal("svc", "host", REALM)
        key = register_service(db, service, gen)
        kdc_host = net.add_host("kdc")
        KerberosServer(db, gen.fork(b"k")).attach(kdc_host)
        ws = net.add_host("ws", clock_skew=skew)
        client = KerberosClient(ws, REALM, [kdc_host.address])

        client.kinit(username, password)
        request, _, _ = client.mk_req(service)
        ctx = krb_rd_req(request, service, key, ws.address, net.clock.now())
        assert ctx.client.name == username
