"""Remaining small code paths: trace of preauth, workload failures,
SQLite close, realm API odds and ends."""

import pytest

from repro.database.schema import ATTR_REQUIRE_PREAUTH
from repro.netsim import Network
from repro.principal import Principal
from repro.realm import Realm
from repro.trace import ProtocolTracer

REALM = "ATHENA.MIT.EDU"


class TestTracePreauth:
    def test_preauth_negotiation_visible_in_trace(self):
        net = Network()
        realm = Realm(net, REALM)
        realm.db.add_principal(
            Principal("careful", "", REALM),
            password="pw",
            attributes=ATTR_REQUIRE_PREAUTH,
        )
        tracer = ProtocolTracer(net)
        ws = realm.workstation()
        ws.client.kinit("careful", "pw")
        text = tracer.format()
        assert "AS-REQ " in text            # the refused plain request
        assert "AS-REQ*" in text            # the preauth retry
        assert "ERROR" in text              # the KDC_PREAUTH_REQUIRED nudge
        assert "preauth=[" in text          # blob described, not dumped


class TestWorkloadFailures:
    def test_session_traffic_counts_failures(self):
        from repro.workload import AthenaWorkload

        net = Network()
        realm = Realm(net, REALM)
        workload = AthenaWorkload(realm, n_users=3, n_services=2, seed=5)
        stations = workload.workstations(2)
        # Nobody logged in: every use fails, and is counted, not raised.
        stats = workload.session_traffic(stations, uses_per_session=3)
        assert stats.failures == 6
        assert stats.service_uses == 0


class TestSqliteClose:
    def test_operations_after_close_fail_loudly(self, tmp_path):
        import sqlite3

        from repro.database import SqliteStore

        store = SqliteStore(str(tmp_path / "x.db"))
        store.put("k", b"v")
        store.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.get("k")


class TestRealmOddsAndEnds:
    def test_service_key_lookup_unknown_raises(self):
        net = Network()
        realm = Realm(net, REALM)
        with pytest.raises(KeyError):
            realm.service_key(Principal("never", "added", REALM))

    def test_add_slave_after_bootstrap(self):
        net = Network()
        realm = Realm(net, REALM)
        realm.add_user("jis", "pw")
        site = realm.add_slave("late-slave")
        realm.propagate()
        assert site.db.exists(Principal("jis", "", REALM))
        # And it serves logins.
        net.set_down(realm.master_host.name)
        ws = realm.workstation()
        assert ws.client.kinit("jis", "pw") is not None
