"""Workload generation for deployment-scale experiments (paper Section 9).

The paper's deployment facts — 5,000 users, 650 workstations, 65
servers — become parameters here.  :class:`AthenaWorkload` populates a
realm at a chosen registered scale and drives seeded, repeatable
activity against it: login storms, Zipf-flavoured service traffic, and
whole working-day sessions.  The Section 9 benchmark and the scale tests
are thin wrappers around this module.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.errors import ErrorCode
from repro.core.locator import StaticLocator
from repro.core.messages import AsRequest, MessageType, decode_message, encode_message
from repro.netsim import HostDown
from repro.netsim.ports import KERBEROS_PORT
from repro.principal import Principal, tgs_principal
from repro.realm import Realm, Workstation


@dataclass
class WorkloadStats:
    """What a driven workload did, for the benchmark tables.

    Populated from the network's metrics registry (the single source of
    truth); the fields are a snapshot-delta over one driver run.
    """

    logins: int = 0
    service_uses: int = 0
    kdc_messages: int = 0
    failures: int = 0

    @property
    def kdc_requests_per_use(self) -> float:
        return self.kdc_messages / self.service_uses if self.service_uses else 0.0


@dataclass
class BurstResult:
    """Outcome of one open-loop :meth:`AthenaWorkload.login_burst`."""

    posted: int = 0
    completed: int = 0        # AS_REP came back
    overloaded: int = 0       # typed KDC_OVERLOADED error reply
    timed_out: int = 0        # lost or unanswered (plain Unreachable)
    host_down: int = 0        # destination KDC was crashed (HostDown)
    makespan: float = 0.0     # sim-seconds from first arrival to drain
    digest: str = ""          # order-sensitive run fingerprint

    @property
    def failed(self) -> int:
        """All non-completions other than typed overload shedding."""
        return self.timed_out + self.host_down

    @property
    def throughput(self) -> float:
        """Completed logins per simulated second of busy hour."""
        return self.completed / self.makespan if self.makespan else 0.0


class AthenaWorkload:
    """A population of users and services plus seeded activity drivers."""

    def __init__(
        self,
        realm: Realm,
        n_users: int,
        n_services: int,
        seed: int = 1988,
    ) -> None:
        self.realm = realm
        self.rng = random.Random(seed)
        self.users: List[Tuple[str, str]] = []
        self.services: List[Principal] = []
        for i in range(n_users):
            username = f"user{i:05d}"
            password = f"password-{i}"
            realm.add_user(username, password)
            self.users.append((username, password))
        for i in range(n_services):
            service, _ = realm.add_service("svc", f"server{i:02d}")
            self.services.append(service)
        if realm.slaves:
            realm.propagate()

    # -- populations -------------------------------------------------------

    def workstations(self, count: int, spread_kdcs: bool = True) -> List[Workstation]:
        """``count`` workstations, optionally spreading KDC preference
        round-robin across master and slaves (Figure 10's load story)."""
        addresses = self.realm.kdc_addresses()
        stations = []
        for i in range(count):
            ws = self.realm.workstation()
            if (
                spread_kdcs
                and self.realm.ring is None
                and len(addresses) > 1
            ):
                # Unsharded: rotate each station's preferred KDC via a
                # static locator.  A sharded realm already spreads load
                # by principal hash, so its ShardedLocator stays as-is.
                preferred = addresses[i % len(addresses)]
                ws.client.set_locator(
                    self.realm.name,
                    StaticLocator(
                        [preferred] + [a for a in addresses if a != preferred]
                    ),
                )
            stations.append(ws)
        return stations

    def random_user(self) -> Tuple[str, str]:
        return self.rng.choice(self.users)

    def pick_services(self, k: int) -> List[Principal]:
        """A session's working set: a few services, heavy-tailed (the
        first services registered are the popular ones, like Athena's
        central timesharing machines)."""
        chosen = []
        for _ in range(k):
            # Zipf-ish: index biased strongly toward 0.
            index = min(
                int(self.rng.paretovariate(1.2)) - 1, len(self.services) - 1
            )
            chosen.append(self.services[index])
        return chosen

    # -- registry plumbing -----------------------------------------------------

    def _counter(self, event: str):
        return self.realm.net.metrics.counter(
            "workload.events_total", {"event": event}
        )

    def _collect(self, baseline: dict) -> WorkloadStats:
        """Build the stats view from registry deltas over one run."""
        return WorkloadStats(
            logins=int(self._counter("login").value - baseline["login"]),
            service_uses=int(
                self._counter("service_use").value - baseline["service_use"]
            ),
            failures=int(
                self._counter("failure").value - baseline["failure"]
            ),
            kdc_messages=self.realm.net.stats["port:750"],
        )

    def _baseline(self) -> dict:
        self.realm.net.reset_stats()
        return {
            event: self._counter(event).value
            for event in ("login", "service_use", "failure")
        }

    # -- drivers --------------------------------------------------------------

    def login_storm(self, stations: List[Workstation]) -> WorkloadStats:
        """Everyone arrives at once — 9 AM in a cluster."""
        baseline = self._baseline()
        for ws in stations:
            username, password = self.random_user()
            ws.client.kdestroy()
            ws.client.kinit(username, password)
            self._counter("login").inc()
        return self._collect(baseline)

    def session_traffic(
        self,
        stations: List[Workstation],
        uses_per_session: int,
        working_set: int = 3,
    ) -> WorkloadStats:
        """Each logged-in station touches its working set repeatedly —
        the pattern that makes ticket caching pay."""
        baseline = self._baseline()
        for ws in stations:
            services = self.pick_services(working_set)
            for _ in range(uses_per_session):
                service = self.rng.choice(services)
                try:
                    ws.client.mk_req(service)
                    self._counter("service_use").inc()
                except Exception:
                    self._counter("failure").inc()
        return self._collect(baseline)

    def login_burst(
        self,
        stations: List[Workstation],
        window: float = 1.0,
        address=None,
    ) -> BurstResult:
        """Open-loop 9-AM storm against **one** KDC: every station's AS
        request is posted into a ``window``-second arrival burst via
        :meth:`~repro.netsim.network.Host.rpc_async`, then the event
        runtime drains.  Unlike :meth:`login_storm` (closed-loop: each
        login completes before the next begins), arrivals here outpace
        service — this is the driver that exposes queueing, worker-pool
        scaling, and admission-control shedding at the Section 9 scale.

        Returns a :class:`BurstResult`; its ``digest`` folds each
        request's outcome and completion instant into one hash, so two
        same-seed runs can be compared bit-for-bit.
        """
        net = self.realm.net
        start = net.clock.now()
        pendings: List[Tuple[int, object]] = []
        count = len(stations)
        for i, ws in enumerate(stations):
            username, _password = self.random_user()
            client_principal = Principal(username, "", self.realm.name)
            offset = (i / count) * window
            if address is not None:
                target = address
            elif self.realm.ring is not None:
                # Sharded realm: route each login to its owning shard's
                # master, as a ring-aware client would.
                sid = self.realm.ring.shard_for(client_principal.db_key())
                target = self.realm.shards[sid].master_host.address
            else:
                target = self.realm.master_host.address

            def post(
                ws=ws, client_principal=client_principal, target=target
            ) -> None:
                request = AsRequest(
                    client=client_principal,
                    service=tgs_principal(self.realm.name),
                    requested_life=3600.0,
                    timestamp=ws.host.clock.now(),
                )
                wire = encode_message(MessageType.AS_REQ, request)
                # Each login is its own trace root: the async post stamps
                # the datagram with this span's context, so the KDC's
                # queue-wait/handler spans and both transit legs join it.
                with net.tracer.span(
                    "workload.login",
                    user=client_principal.name,
                    host=ws.host.name,
                ):
                    pendings.append(
                        (
                            len(pendings),
                            ws.host.rpc_async(target, KERBEROS_PORT, wire),
                        )
                    )

            net.runtime.at(start + offset, post, label="workload.login")
        net.runtime.run_until_idle()

        result = BurstResult(posted=count, makespan=net.clock.now() - start)
        fingerprint = hashlib.sha256()
        for index, pending in pendings:
            # HostDown (a crashed KDC refused the datagram) is a
            # different postmortem than a lost packet or a reply that
            # never came — scenario SLOs charge them separately.
            outcome = (
                "host_down"
                if isinstance(pending.error, HostDown)
                else "timed_out"
            )
            if pending.error is None and pending.reply is not None:
                try:
                    mtype, message = decode_message(pending.reply)
                except Exception:
                    mtype, message = None, None
                if mtype == MessageType.AS_REP:
                    outcome = "completed"
                elif (
                    mtype == MessageType.ERROR
                    and message.code == ErrorCode.KDC_OVERLOADED
                ):
                    outcome = "overloaded"
            setattr(result, outcome, getattr(result, outcome) + 1)
            fingerprint.update(
                f"{index}:{outcome}:{pending.resolved_at!r};".encode()
            )
        result.digest = fingerprint.hexdigest()
        return result

    def busy_hour(
        self,
        n_stations: int,
        uses_per_session: int = 6,
    ) -> WorkloadStats:
        """login storm + session traffic, combined accounting."""
        stations = self.workstations(n_stations)
        baseline = self._baseline()
        for ws in stations:
            username, password = self.random_user()
            ws.client.kdestroy()
            ws.client.kinit(username, password)
            self._counter("login").inc()
            services = self.pick_services(3)
            for _ in range(uses_per_session):
                service = self.rng.choice(services)
                ws.client.mk_req(service)
                self._counter("service_use").inc()
        return self._collect(baseline)
