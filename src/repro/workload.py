"""Workload generation for deployment-scale experiments (paper Section 9).

The paper's deployment facts — 5,000 users, 650 workstations, 65
servers — become parameters here.  :class:`AthenaWorkload` populates a
realm at a chosen registered scale and drives seeded, repeatable
activity against it: login storms, Zipf-flavoured service traffic, and
whole working-day sessions.  The Section 9 benchmark and the scale tests
are thin wrappers around this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.principal import Principal
from repro.realm import Realm, Workstation


@dataclass
class WorkloadStats:
    """What a driven workload did, for the benchmark tables.

    Populated from the network's metrics registry (the single source of
    truth); the fields are a snapshot-delta over one driver run.
    """

    logins: int = 0
    service_uses: int = 0
    kdc_messages: int = 0
    failures: int = 0

    @property
    def kdc_requests_per_use(self) -> float:
        return self.kdc_messages / self.service_uses if self.service_uses else 0.0


class AthenaWorkload:
    """A population of users and services plus seeded activity drivers."""

    def __init__(
        self,
        realm: Realm,
        n_users: int,
        n_services: int,
        seed: int = 1988,
    ) -> None:
        self.realm = realm
        self.rng = random.Random(seed)
        self.users: List[Tuple[str, str]] = []
        self.services: List[Principal] = []
        for i in range(n_users):
            username = f"user{i:05d}"
            password = f"password-{i}"
            realm.add_user(username, password)
            self.users.append((username, password))
        for i in range(n_services):
            service, _ = realm.add_service("svc", f"server{i:02d}")
            self.services.append(service)
        if realm.slaves:
            realm.propagate()

    # -- populations -------------------------------------------------------

    def workstations(self, count: int, spread_kdcs: bool = True) -> List[Workstation]:
        """``count`` workstations, optionally spreading KDC preference
        round-robin across master and slaves (Figure 10's load story)."""
        addresses = self.realm.kdc_addresses()
        stations = []
        for i in range(count):
            ws = self.realm.workstation()
            if spread_kdcs and len(addresses) > 1:
                preferred = addresses[i % len(addresses)]
                ws.client._directory[self.realm.name] = [preferred] + [
                    a for a in addresses if a != preferred
                ]
            stations.append(ws)
        return stations

    def random_user(self) -> Tuple[str, str]:
        return self.rng.choice(self.users)

    def pick_services(self, k: int) -> List[Principal]:
        """A session's working set: a few services, heavy-tailed (the
        first services registered are the popular ones, like Athena's
        central timesharing machines)."""
        chosen = []
        for _ in range(k):
            # Zipf-ish: index biased strongly toward 0.
            index = min(
                int(self.rng.paretovariate(1.2)) - 1, len(self.services) - 1
            )
            chosen.append(self.services[index])
        return chosen

    # -- registry plumbing -----------------------------------------------------

    def _counter(self, event: str):
        return self.realm.net.metrics.counter(
            "workload.events_total", {"event": event}
        )

    def _collect(self, baseline: dict) -> WorkloadStats:
        """Build the stats view from registry deltas over one run."""
        return WorkloadStats(
            logins=int(self._counter("login").value - baseline["login"]),
            service_uses=int(
                self._counter("service_use").value - baseline["service_use"]
            ),
            failures=int(
                self._counter("failure").value - baseline["failure"]
            ),
            kdc_messages=self.realm.net.stats["port:750"],
        )

    def _baseline(self) -> dict:
        self.realm.net.reset_stats()
        return {
            event: self._counter(event).value
            for event in ("login", "service_use", "failure")
        }

    # -- drivers --------------------------------------------------------------

    def login_storm(self, stations: List[Workstation]) -> WorkloadStats:
        """Everyone arrives at once — 9 AM in a cluster."""
        baseline = self._baseline()
        for ws in stations:
            username, password = self.random_user()
            ws.client.kdestroy()
            ws.client.kinit(username, password)
            self._counter("login").inc()
        return self._collect(baseline)

    def session_traffic(
        self,
        stations: List[Workstation],
        uses_per_session: int,
        working_set: int = 3,
    ) -> WorkloadStats:
        """Each logged-in station touches its working set repeatedly —
        the pattern that makes ticket caching pay."""
        baseline = self._baseline()
        for ws in stations:
            services = self.pick_services(working_set)
            for _ in range(uses_per_session):
                service = self.rng.choice(services)
                try:
                    ws.client.mk_req(service)
                    self._counter("service_use").inc()
                except Exception:
                    self._counter("failure").inc()
        return self._collect(baseline)

    def busy_hour(
        self,
        n_stations: int,
        uses_per_session: int = 6,
    ) -> WorkloadStats:
        """login storm + session traffic, combined accounting."""
        stations = self.workstations(n_stations)
        baseline = self._baseline()
        for ws in stations:
            username, password = self.random_user()
            ws.client.kdestroy()
            ws.client.kinit(username, password)
            self._counter("login").inc()
            services = self.pick_services(3)
            for _ in range(uses_per_session):
                service = self.rng.choice(services)
                ws.client.mk_req(service)
                self._counter("service_use").inc()
        return self._collect(baseline)
