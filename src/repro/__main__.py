"""``python -m repro`` — a one-minute tour of the reproduction.

Runs the full Figure 9 protocol on a freshly built realm and prints each
step, then points at the examples and benchmarks for the rest.
"""

from repro.core import ReplayCache, krb_mk_rep, krb_rd_req
from repro.netsim import Network
from repro.realm import Realm


def main() -> None:
    print(__doc__)
    net = Network()
    realm = Realm(net, "ATHENA.MIT.EDU", n_slaves=1)
    realm.add_user("you", "your-password")
    service, _ = realm.add_service("rlogin", "priam")
    srvtab = realm.srvtab_for(service)
    print(f"Built realm {realm.name}: master + 1 slave, KDBM, kprop.")

    ws = realm.workstation()
    tgt = ws.client.kinit("you", "your-password")
    print(f"[1] AS exchange  : TGT issued, lifetime {tgt.life/3600:.0f} h "
          f"(password never left the workstation)")

    request, cred, sent = ws.client.mk_req(service, mutual=True)
    print(f"[2] TGS exchange : ticket for {cred.service}")

    context = krb_rd_req(request, service, srvtab, ws.host.address,
                         net.clock.now(), replay_cache=ReplayCache())
    ws.client.rd_rep(krb_mk_rep(context), sent, cred)
    print(f"[3] AP exchange  : server authenticated {context.client}, "
          f"and proved itself back (mutual)")

    print(f"\nNetwork traffic : {net.stats['messages']} datagrams, "
          f"{net.stats['bytes']} bytes — all key material sealed.")
    print("\nMore: examples/*.py walk the paper's scenarios;")
    print("      pytest benchmarks/ --benchmark-only -s regenerates every "
          "figure.")


if __name__ == "__main__":
    main()
