"""The workstation-integrity open problem (paper Section 8).

*"Another problem ... is how to guarantee the integrity of the software
running on a workstation. ... On public workstations, however, someone
might have come along and modified the log-in program to save the
user's password.  The only solution presently available in our
environment is to make it difficult for people to modify software
running on the public workstations.  A better solution would require
that the user's key never leave a system that the user knows can be
trusted ... if the user possessed a smartcard capable of doing the
encryptions required in the authentication protocol."*

:class:`TrojanedLoginSession` is that modified log-in program.  Nothing
in the protocol detects it — the point of implementing it is to
demonstrate, in tests, exactly which guarantee Kerberos does *not* make
(and why the paper lists it as open).  :class:`SmartcardLogin` sketches
the paper's proposed mitigation: the password-derived key lives on the
card, which performs the one decryption the login needs, so the trojan
sees neither password nor key.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.core.messages import AsRequest, KdcReplyBody, MessageType, encode_message, expect_reply
from repro.crypto import DesKey, string_to_key
from repro.netsim import Host
from repro.principal import Principal, tgs_principal
from repro.user.login import LoginSession


class TrojanedLoginSession(LoginSession):
    """A login program "modified ... to save the user's password".

    Behaves identically to the honest program — same prompts, same
    outcome — while recording every password typed into it.  The
    protocol cannot tell: the trojan IS the trusted endpoint.
    """

    def __init__(self, host: Host, client: KerberosClient) -> None:
        super().__init__(host, client)
        self.harvested: List[Tuple[str, str]] = []

    def login(self, username: str, password: str) -> Credential:
        self.harvested.append((username, password))  # the modification
        return super().login(username, password)


class Smartcard:
    """The user's key, sealed inside hardware the workstation never
    reads.  The card exposes exactly one operation: decrypt an AS reply
    body with the stored key."""

    def __init__(self, password: str) -> None:
        self._key: DesKey = string_to_key(password)
        del password

    def open_as_reply(self, reply) -> KdcReplyBody:
        """Perform 'the encryptions required in the authentication
        protocol' on behalf of the user."""
        return reply.open(self._key)


class SmartcardLogin:
    """The paper's sketched mitigation: the workstation drives the AS
    exchange but hands the sealed reply to the card; no password is ever
    typed into (or key revealed to) workstation software."""

    def __init__(self, host: Host, client: KerberosClient) -> None:
        self.host = host
        self.client = client

    def login(self, username: str, card: Smartcard) -> Credential:
        realm = self.client.realm
        principal = Principal(username, "", realm)
        now = self.host.clock.now()
        request = AsRequest(
            client=principal,
            service=tgs_principal(realm),
            requested_life=self.client.default_life,
            timestamp=now,
        )
        raw = self.client._ask_kdc(
            realm, lambda: encode_message(MessageType.AS_REQ, request)
        )
        reply = expect_reply(raw, MessageType.AS_REP)
        body = card.open_as_reply(reply)  # the only decryption, on-card
        cred = Credential(
            service=body.server,
            ticket=body.ticket,
            session_key=DesKey.from_bytes(body.session_key, allow_weak=True),
            issue_time=body.issue_time,
            life=body.life,
            kvno=body.kvno,
        )
        self.client.cache.store(cred)
        self.client.cache.owner = principal
        return cred
