"""A passive wiretap (paper Section 1's "someone watching the network").

The eavesdropper sees every datagram.  The protocol's claim is that this
gains an attacker nothing usable: passwords never travel, keys travel
only inside seals, and what does travel in the clear (names, realms,
sealed blobs) does not let the attacker impersonate anyone.

One honest caveat the module also demonstrates:
:meth:`Eavesdropper.offline_password_guess`.  An AS reply is encrypted
with a key derived *from the user's password*, so an eavesdropper can
test password guesses offline against a captured reply.  The 1988 paper
does not discuss this (preauthentication came later, in V5); the attack
is implemented here because a faithful reproduction should show the
design's real edges, not only its strengths.  Note it recovers only
*weak* passwords — it is a dictionary attack, not a break of DES.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import ErrorCode, KerberosError
from repro.core.messages import (
    AsRequest,
    KdcReply,
    MessageType,
    decode_message,
    encode_message,
    expect_reply,
)
from repro.crypto import string_to_key
from repro.netsim import Datagram, Network
from repro.principal import Principal, tgs_principal


class Eavesdropper:
    """Records all traffic; offers analysis helpers."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.captured: List[Datagram] = []
        self._tap = self.captured.append
        net.add_tap(self._tap)

    def detach(self) -> None:
        self.net.remove_tap(self._tap)

    # -- passive analysis ---------------------------------------------------

    def saw_bytes(self, needle: bytes) -> bool:
        """Did this byte string ever appear on the wire in the clear?"""
        return any(needle in d.payload for d in self.captured)

    def payloads_to_port(self, port: int) -> List[bytes]:
        return [d.payload for d in self.captured if d.dst_port == port]

    def harvest_kdc_replies(self) -> List[KdcReply]:
        """Collect every AS/TGS reply seen (sealed blobs, to the
        attacker)."""
        replies = []
        for datagram in self.captured:
            try:
                mtype, message = decode_message(datagram.payload)
            except KerberosError:
                continue
            if mtype in (MessageType.AS_REP, MessageType.TGS_REP):
                replies.append(message)
        return replies

    def total_bytes(self) -> int:
        return sum(len(d.payload) for d in self.captured)

    # -- the offline guessing edge ----------------------------------------------

    def offline_password_guess(
        self, reply: KdcReply, candidates: List[str]
    ) -> Optional[str]:
        """Try candidate passwords against a captured AS reply.

        A guess is correct exactly when the derived key opens the sealed
        body.  No message to any server is needed — which is why weak
        passwords were (and are) dangerous even under Kerberos.
        """
        for candidate in candidates:
            try:
                reply.open(string_to_key(candidate))
                return candidate
            except KerberosError:
                continue
        return None


def active_as_probe(
    attacker_host,
    kdc_address,
    victim: Principal,
    realm: str,
) -> Optional[KdcReply]:
    """The *active* variant of the offline-guessing attack: instead of
    waiting to sniff a victim's login, just ASK the KDC for one.

    A plain 1988 AS request needs no proof of anything, so the KDC mails
    anyone a reply sealed in the victim's password-derived key — perfect
    offline-guessing material, on demand, for every user in the realm.
    Preauthentication (the post-paper extension in
    :class:`repro.core.messages.PreauthAsRequest`) is the counter: the
    KDC then answers only requesters who already know the key.

    Returns the harvested reply, or None if the KDC refused
    (KDC_PREAUTH_REQUIRED).
    """
    request = AsRequest(
        client=victim,
        service=tgs_principal(realm),
        requested_life=3600.0,
        timestamp=attacker_host.clock.now(),
    )
    raw = attacker_host.rpc(
        kdc_address, 750, encode_message(MessageType.AS_REQ, request)
    )
    try:
        return expect_reply(raw, MessageType.AS_REP)
    except KerberosError as exc:
        if exc.code == ErrorCode.KDC_PREAUTH_REQUIRED:
            return None
        raise
