"""Attacker harnesses for the paper's threat model.

Section 1: *"Someone watching the network should not be able to obtain
the information necessary to impersonate another user."*  Section 2:
*"Replay occurs when a message is stolen off the network and resent
later."*  Section 1 again: *"someone elsewhere on the network may be
masquerading as the given server."*  Section 8: stolen tickets "can be
used" until they expire — the acknowledged residual risk.

Each module arms one of those attackers against the simulated network so
tests and benchmarks can verify which attacks the protocol defeats — and
honestly demonstrate the ones the 1988 design accepts (short-lived
stolen-ticket use from the same workstation, offline password guessing
against an AS reply).
"""

from repro.threat.eavesdropper import Eavesdropper, active_as_probe
from repro.threat.replayer import Replayer
from repro.threat.masquerade import MasqueradingServer
from repro.threat.stolen import steal_credentials, use_stolen_credential
from repro.threat.trojan import Smartcard, SmartcardLogin, TrojanedLoginSession

__all__ = [
    "Eavesdropper",
    "active_as_probe",
    "MasqueradingServer",
    "Replayer",
    "Smartcard",
    "SmartcardLogin",
    "TrojanedLoginSession",
    "steal_credentials",
    "use_stolen_credential",
]
