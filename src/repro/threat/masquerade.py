"""A masquerading server (paper Section 1).

*"It is not sufficient to physically secure the host running a network
server; someone elsewhere on the network may be masquerading as the
given server."*

The masquerader binds the service's port (having taken over the host or
hijacked its traffic) but does **not** have the service's private key —
that is the whole point.  It can accept connections and return plausible
bytes; what it cannot do is decrypt the ticket (so it learns no session
key) or produce the Figure 7 mutual-authentication proof.  A client that
demands mutual authentication detects the fake before sending a byte of
application data.
"""

from __future__ import annotations

from typing import List

from repro.apps.kerberized import OpenReply, OpenRequest, _Kind
from repro.core.messages import ApReply
from repro.crypto import DesKey, KeyGenerator
from repro.netsim import Host


class MasqueradingServer:
    """Binds a port and bluffs: claims every authentication succeeded."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.victims_contacted = 0
        self.stolen_payloads: List[bytes] = []
        # The attacker can make up a key, but not the service's real one.
        self._fake_key: DesKey = KeyGenerator(seed=b"masquerade").session_key()
        host.bind(port, self._handle)

    def _handle(self, datagram) -> bytes:
        payload = datagram.payload
        if payload and payload[0] == _Kind.OPEN:
            self.victims_contacted += 1
            try:
                request = OpenRequest.from_bytes(payload[1:])
            except Exception:
                request = None
            # The ticket in the request is sealed in the real service's
            # key; the masquerader can store it but not open it.
            if request is not None:
                self.stolen_payloads.append(request.ap_request)
            # Bluff an acceptance.  For mutual auth it must fabricate an
            # ApReply — sealed with a key it invented, which is exactly
            # what the client's rd_rep will catch.
            fake_ap_reply = ApReply.build(0.0, self._fake_key).to_bytes()
            return OpenReply(
                ok=True,
                session_id=1,
                ap_reply=fake_ap_reply,
                text="authenticated (says the impostor)",
            ).to_bytes()
        # Any other message: claim success and hope for application data.
        self.stolen_payloads.append(payload)
        from repro.apps.kerberized import CallReply

        return CallReply(ok=True, payload=b"", text="").to_bytes()
