"""Stolen-credential scenarios (paper Section 8).

*"If the life of a ticket is long, then if a ticket and its associated
session key are stolen or misplaced, they can be used for a longer
period of time.  Such information can be stolen if a user forgets to log
out of a public workstation.  Alternatively, if a user has been
authenticated on a system that allows multiple users, another user with
access to root might be able to find the information needed to use
stolen tickets."*

Two cases fall out of the protocol:

* stolen and used **from another machine** — defeated by the address
  check (the ticket names the victim's workstation);
* stolen and used **from the victim's own workstation** (the root-thief
  or the forgot-to-logout case) — succeeds until the ticket expires.
  This is the residual risk the lifetime tradeoff (exp L1) quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.applib import krb_mk_req
from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.core.messages import ApRequest
from repro.netsim import Host
from repro.principal import Principal


@dataclass
class StolenCredential:
    """What a thief copies out of a victim's ticket file."""

    victim: Principal
    credential: Credential


def steal_credentials(victim_client: KerberosClient) -> List[StolenCredential]:
    """Copy everything in the victim's credential cache — what a root
    attacker on a shared machine, or a passerby at an unattended
    workstation, obtains."""
    return [
        StolenCredential(victim=victim_client.principal, credential=cred)
        for cred in victim_client.cache.list()
    ]


def use_stolen_credential(
    stolen: StolenCredential,
    from_host: Host,
    now: float = None,
) -> ApRequest:
    """Build the best request a thief can: genuine ticket, genuine session
    key, fresh authenticator — sent from ``from_host``.

    Note the thief *must* put some address in the authenticator; whatever
    they choose, the server compares the ticket's address, the
    authenticator's address, and the packet's source.  Only requests
    genuinely sent from the victim's workstation line all three up.
    """
    return krb_mk_req(
        ticket_blob=stolen.credential.ticket,
        session_key=stolen.credential.session_key,
        client=stolen.victim,
        client_address=from_host.address,
        now=now if now is not None else from_host.clock.now(),
        kvno=stolen.credential.kvno,
    )
