"""A replay attacker (paper Section 2).

*"Replay occurs when a message is stolen off the network and resent
later."*  The replayer records datagrams and re-injects byte-identical
copies — with the original (forged) source address, since the wire does
not authenticate sources.  Section 4.3's defenses are what it runs into:
the timestamp window, and the server's cache of recently seen
authenticators.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netsim import Datagram, Network


class Replayer:
    """Records traffic matching a filter; replays it on demand."""

    def __init__(
        self,
        net: Network,
        match: Optional[Callable[[Datagram], bool]] = None,
    ) -> None:
        self.net = net
        self.match = match if match is not None else (lambda d: True)
        self.captured: List[Datagram] = []
        self._tap = self._on_datagram
        net.add_tap(self._tap)

    def _on_datagram(self, datagram: Datagram) -> None:
        if self.match(datagram):
            self.captured.append(datagram)

    def detach(self) -> None:
        self.net.remove_tap(self._tap)

    def replay(self, index: int = -1) -> Optional[bytes]:
        """Re-inject a captured datagram verbatim — same payload, same
        forged source address.  Returns the victim server's reply bytes
        (the attacker can read them; whether they are *useful* is another
        matter, since replies are sealed in keys the attacker lacks)."""
        if not self.captured:
            raise ValueError("nothing captured to replay")
        original = self.captured[index]
        # Byte-identical on the wire — but the attacker cannot forge the
        # sim-side trace context, so the replay arrives context-less and
        # shows up as an orphan (empty trace_id) in the audit log.
        forged = Datagram(
            src=original.src,
            src_port=original.src_port,
            dst=original.dst,
            dst_port=original.dst_port,
            payload=original.payload,
        )
        return self.net.inject(forged)

    def replay_from(self, index: int, source_address) -> Optional[bytes]:
        """Replay with a rewritten source address (attacking from the
        attacker's own machine instead of forging the victim's)."""
        from repro.netsim import IPAddress

        original = self.captured[index]
        forged = Datagram(
            src=IPAddress(source_address),
            src_port=original.src_port,
            dst=original.dst,
            dst_port=original.dst_port,
            payload=original.payload,
        )
        return self.net.inject(forged)
