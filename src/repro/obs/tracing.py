"""Span-based structured tracing over the simulated clock.

A *span* is one timed operation (an AS exchange, a KDC handler run, a
propagation round); spans nest, and every span belongs to a *trace*
identified by a trace ID (``req-%06d``, historically the request ID —
one scheme for both wire records and spans).  The tracer keeps a single
stack of open spans for the synchronous call structure, plus two
mechanisms that let a trace cross a simulated wire hop:

* a :class:`TraceContext` — ``(trace_id, parent span_id)`` — captured
  from the innermost open span and carried on a
  :class:`~repro.netsim.network.Datagram` as out-of-band simulation
  metadata (never wire bytes: golden vectors are unaffected);
* :meth:`Tracer.adopt` / :meth:`Tracer.span_under`, which parent a
  server-side handler span to the *propagated* context instead of
  whatever span happens to be open on the local stack — so a queued KDC
  answering client A's request during client B's pump still attaches the
  handler span to A's trace;
* :meth:`Tracer.open_span` / :meth:`Tracer.close_span` for spans that
  live *outside* the stack entirely (a datagram in flight, a request
  sitting in a work queue), with explicit start/end times.

Trace IDs are drawn from a deterministic counter (never a random or
wall-clock source), so traces are reproducible run-to-run under the
seeded :class:`repro.netsim.clock.SimClock`.

Set ``tracer.enabled = False`` to make every span a throwaway: nothing
is recorded and the stack is untouched, which is the baseline the
tracing-overhead benchmark compares against.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Recorded-span ceiling: beyond this the tracer stops *recording* (spans
#: still time correctly) so a runaway storm cannot grow memory unbounded.
MAX_RECORDED_SPANS = 200_000


class TracingError(Exception):
    """Span misuse: unbalanced start/end."""


class TraceContext:
    """The part of a trace that crosses a wire hop: ``(trace_id,
    span_id)`` of the sender's innermost span.  Out-of-band simulation
    metadata — an attacker can neither read nor forge it (forged or
    replayed datagrams travel context-less)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, span_id={self.span_id})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


class Span:
    """One timed operation; part of a trace identified by request_id."""

    __slots__ = (
        "name", "span_id", "parent_id", "request_id",
        "start", "end", "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        request_id: str,
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def trace_id(self) -> str:
        """The trace this span belongs to (same scheme as request_id)."""
        return self.request_id

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def context(self) -> TraceContext:
        """This span as a propagation context for a wire hop."""
        return TraceContext(self.request_id, self.span_id)

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"rid={self.request_id}, {state})"
        )


class _Anchor:
    """A stack sentinel standing in for a *remote* parent span (pushed by
    :meth:`Tracer.adopt`).  Quacks enough like a span for parent lookup."""

    __slots__ = ("request_id", "span_id")

    def __init__(self, request_id: str, span_id: Optional[int]) -> None:
        self.request_id = request_id
        self.span_id = span_id


class Tracer:
    """Records spans against a clock exposing ``now() -> float``.

    The clock is duck-typed so the module stays dependency-free; in the
    simulation it is the network's :class:`SimClock`.  When a
    :class:`repro.obs.MetricsRegistry` is attached (``tracer.metrics``),
    recorded spans count into ``trace.spans_total{name}`` and overflow
    into ``trace.spans_dropped_total``.
    """

    def __init__(self, clock, max_spans: int = MAX_RECORDED_SPANS) -> None:
        self.clock = clock
        self.enabled = True
        self.metrics = None
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self._stack: List[object] = []  # Spans and _Anchors
        self._span_ids = itertools.count(1)
        self._request_ids = itertools.count(1)

    # -- internal helpers ----------------------------------------------------

    def _record(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
            if self.metrics is not None:
                self.metrics.counter(
                    "trace.spans_total", {"name": span.name}
                ).inc()
        elif self.metrics is not None:
            self.metrics.counter("trace.spans_dropped_total").inc()

    def _fresh_trace_id(self) -> str:
        return f"req-{next(self._request_ids):06d}"

    def _detached(self, name: str, attrs: Dict[str, object]) -> Span:
        """A throwaway span (tracing disabled): times correctly via the
        clock, never recorded, never on the stack.  ``span_id == 0``
        marks it so ``end_span`` knows to skip the stack check."""
        return Span(
            name=name, span_id=0, parent_id=None, request_id="",
            start=self.clock.now(), attrs=dict(attrs),
        )

    # -- span lifecycle ------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> Span:
        """Open a span; it becomes a child of the currently open span (or
        adopted remote context), or the root of a fresh trace if none is
        open."""
        if not self.enabled:
            return self._detached(name, attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            request_id = parent.request_id
            parent_id: Optional[int] = parent.span_id
        else:
            request_id = self._fresh_trace_id()
            parent_id = None
        span = Span(
            name=name,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            request_id=request_id,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self._record(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span``, which must be the innermost open span."""
        if span.span_id == 0:  # detached (tracing was disabled at start)
            span.end = self.clock.now()
            return span
        if not self._stack or self._stack[-1] is not span:
            raise TracingError(
                f"cannot end {span!r}: it is not the innermost open span"
            )
        self._stack.pop()
        span.end = self.clock.now()
        return span

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """``with tracer.span("client.as_exchange", client=...) as span:``

        On an exception the span still ends, with an ``error`` attribute
        recording the exception type and message.
        """
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
            raise
        finally:
            self.end_span(span)

    # -- cross-hop propagation ----------------------------------------------

    def context(self) -> Optional[TraceContext]:
        """The innermost open span (or adopted anchor) as a propagation
        context, or None when nothing is open."""
        if not self._stack:
            return None
        top = self._stack[-1]
        return TraceContext(top.request_id, top.span_id)

    def propagation_context(self) -> Optional[TraceContext]:
        """What the network stamps onto an outbound datagram: the current
        context, or None — un-instrumented traffic stays orphaned, which
        is itself a signal (forged packets can never carry a context)."""
        if not self.enabled:
            return None
        return self.context()

    def new_context(self) -> TraceContext:
        """A fresh root context (no parent span), drawn from the same
        trace-ID counter — for senders that want a trace per message
        without holding a span open (open-loop load generators)."""
        return TraceContext(self._fresh_trace_id(), None)

    @contextmanager
    def adopt(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Parent spans opened inside the block to ``context`` (a remote
        sender's span) instead of the local stack — the server side of a
        wire hop.  With ``context=None`` the block starts a *fresh*
        trace: an un-traced arrival must not glue itself onto whatever
        unrelated span is open on the pumping caller's stack."""
        if not self.enabled:
            yield
            return
        if context is None:
            context = self.new_context()
        anchor = _Anchor(context.trace_id, context.span_id)
        self._stack.append(anchor)
        try:
            yield
        finally:
            if not self._stack or self._stack[-1] is not anchor:
                raise TracingError("adopt(): stack unbalanced at exit")
            self._stack.pop()

    @contextmanager
    def span_under(
        self, context: Optional[TraceContext], name: str, **attrs: object
    ) -> Iterator[Span]:
        """A server-side handler span parented to the datagram's
        propagated context: ``with tracer.span_under(dgram.trace,
        "kdc.as", ...)``.  Spans nested inside still stack normally."""
        with self.adopt(context):
            with self.span(name, **attrs) as span:
                yield span

    # -- non-stack spans (in-flight legs, queue residency) --------------------

    def open_span(
        self,
        name: str,
        context: Optional[TraceContext] = None,
        start: Optional[float] = None,
        **attrs: object,
    ) -> Span:
        """Open a span *outside* the stack: a datagram in flight or a
        request waiting in a queue overlaps arbitrary other work, so it
        cannot ride the synchronous stack.  Parented to ``context``
        (fresh root trace when None); close with :meth:`close_span`."""
        if not self.enabled:
            return self._detached(name, attrs)
        if context is None:
            context = self.new_context()
        span = Span(
            name=name,
            span_id=next(self._span_ids),
            parent_id=context.span_id,
            request_id=context.trace_id,
            start=self.clock.now() if start is None else start,
            attrs=dict(attrs),
        )
        self._record(span)
        return span

    def close_span(self, span: Span, end: Optional[float] = None) -> Span:
        """Close a span opened with :meth:`open_span` (no stack check)."""
        span.end = self.clock.now() if end is None else end
        return span

    # -- queries ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        for frame in reversed(self._stack):
            if isinstance(frame, Span):
                return frame
        return None

    @property
    def current_request_id(self) -> Optional[str]:
        """The trace ID of the innermost open span (or adopted context),
        if any."""
        return self._stack[-1].request_id if self._stack else None

    def by_request(self, request_id: str) -> List[Span]:
        """Every span of one trace, in recording order."""
        return [s for s in self.spans if s.request_id == request_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def request_ids(self) -> List[str]:
        """Distinct trace IDs, in first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.request_id not in seen:
                seen.append(span.request_id)
        return seen

    #: The propagated-context vocabulary alias: one scheme, two names.
    trace_ids = request_ids

    def hosts(self, request_id: Optional[str] = None) -> List[str]:
        """Distinct ``host`` attribute values across recorded spans (one
        trace, or all) — how many machines a trace actually touched."""
        spans = (
            self.by_request(request_id) if request_id is not None
            else self.spans
        )
        seen: List[str] = []
        for span in spans:
            host = span.attrs.get("host")
            if isinstance(host, str) and host not in seen:
                seen.append(host)
        return seen

    def clear(self) -> None:
        """Forget recorded spans.  Open spans stay open (the stack is the
        live call structure and must stay balanced)."""
        self.spans = [s for s in self._stack if isinstance(s, Span)]
