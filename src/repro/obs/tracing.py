"""Span-based structured tracing over the simulated clock.

A *span* is one timed operation (an AS exchange, a KDC handler run, a
propagation round); spans nest, and every span belongs to a *trace*
identified by a request ID.  Because the simulation is synchronous, the
tracer keeps a single stack of open spans: whatever is open when a new
span starts becomes its parent, which threads one request ID through a
full AS→TGS→AP flow — including the KDC's server-side handler spans,
which run inside the client's RPC on the same stack.

Request IDs are drawn from a deterministic counter (never a random or
wall-clock source), so traces are reproducible run-to-run under the
seeded :class:`repro.netsim.clock.SimClock`.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class TracingError(Exception):
    """Span misuse: unbalanced start/end."""


class Span:
    """One timed operation; part of a trace identified by request_id."""

    __slots__ = (
        "name", "span_id", "parent_id", "request_id",
        "start", "end", "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        request_id: str,
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"rid={self.request_id}, {state})"
        )


class Tracer:
    """Records spans against a clock exposing ``now() -> float``.

    The clock is duck-typed so the module stays dependency-free; in the
    simulation it is the network's :class:`SimClock`.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._span_ids = itertools.count(1)
        self._request_ids = itertools.count(1)

    # -- span lifecycle ------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> Span:
        """Open a span; it becomes a child of the currently open span, or
        the root of a fresh trace (new request ID) if none is open."""
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            request_id = parent.request_id
            parent_id: Optional[int] = parent.span_id
        else:
            request_id = f"req-{next(self._request_ids):06d}"
            parent_id = None
        span = Span(
            name=name,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            request_id=request_id,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span``, which must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            raise TracingError(
                f"cannot end {span!r}: it is not the innermost open span"
            )
        self._stack.pop()
        span.end = self.clock.now()
        return span

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """``with tracer.span("client.as_exchange", client=...) as span:``

        On an exception the span still ends, with an ``error`` attribute
        recording the exception type and message.
        """
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
            raise
        finally:
            self.end_span(span)

    # -- queries ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def current_request_id(self) -> Optional[str]:
        """The request ID of the innermost open span, if any — what a
        network tap records against each datagram for correlation."""
        return self._stack[-1].request_id if self._stack else None

    def by_request(self, request_id: str) -> List[Span]:
        """Every span of one trace, in start order."""
        return [s for s in self.spans if s.request_id == request_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def request_ids(self) -> List[str]:
        """Distinct request IDs, in first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.request_id not in seen:
                seen.append(span.request_id)
        return seen

    def clear(self) -> None:
        """Forget recorded spans.  Open spans stay open (the stack is the
        live call structure and must stay balanced)."""
        self.spans = list(self._stack)
