"""The flight recorder: periodic gauge samples in a bounded ring.

Counters and histograms accumulate; gauges — queue depths, replay-cache
sizes, busy workers — are *instantaneous* and vanish unless somebody
looks at the right moment.  The flight recorder is that somebody: it
samples every registry gauge at a fixed simulated-time cadence into a
bounded ring buffer, so after an incident (an overload collapse, a
propagation stall) the last N ticks of system state are still there to
read — an aircraft flight recorder for the realm.

Sampling rides the :class:`~repro.netsim.clock.SimClock` callback queue
that the :class:`~repro.runtime.EventScheduler` advances: the tick fires
whenever scheduler-driven time crosses a sample boundary.  Deliberately
*not* a self-rescheduling scheduler event — that would keep the
scheduler's queue permanently non-empty and ``run_until_idle()`` would
never return.  No wall clock, no randomness: two same-seed runs record
identical rings.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Default cadence (simulated seconds) and ring capacity: at one sample
#: per second, ~4 busy-hour minutes of state survive.
DEFAULT_INTERVAL = 1.0
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Samples registry gauges on the event-driven clock into a ring.

    ``prefixes`` restricts sampling to gauge names starting with any of
    the given strings (None = every gauge).  Each sample is ``(time,
    {series_key: value})`` where the series key is
    ``name{label=value,...}`` — stable across runs because the registry
    sorts instruments deterministically.
    """

    def __init__(
        self,
        registry,
        scheduler,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        prefixes: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.registry = registry
        self.clock = scheduler.clock
        self.interval = float(interval)
        self.capacity = capacity
        self.prefixes = tuple(prefixes) if prefixes is not None else None
        self.samples: Deque[Tuple[float, Dict[str, float]]] = deque(
            maxlen=capacity
        )
        self.taken = 0
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Take one sample now, then one per ``interval`` as simulated
        time advances.  Idempotent."""
        if self._running:
            return self
        self._running = True
        self.sample()
        self._schedule_next()
        return self

    def stop(self) -> None:
        """Stop sampling; the already-scheduled tick becomes a no-op.
        The recorded ring stays readable."""
        self._running = False

    def _schedule_next(self) -> None:
        self.clock.call_at(self.clock.now() + self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample()
        self._schedule_next()

    # -- sampling ------------------------------------------------------------

    def _wanted(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return any(name.startswith(p) for p in self.prefixes)

    def sample(self) -> Dict[str, float]:
        """Take one sample immediately (also called by the tick)."""
        values: Dict[str, float] = {}
        for gauge in self.registry.gauges():
            if not self._wanted(gauge.name):
                continue
            values[series_key(gauge.name, gauge.labels)] = gauge.value
        self.samples.append((self.clock.now(), values))
        self.taken += 1
        self.registry.counter("obs.samples_total").inc()
        return values

    # -- queries -------------------------------------------------------------

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        """The ring pivoted to per-series time series: ``{series_key:
        [(time, value), ...]}``.  A series appears from the first sample
        in which its gauge existed."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for when, values in self.samples:
            for key, value in values.items():
                out.setdefault(key, []).append((when, value))
        return out

    def to_dicts(self) -> List[dict]:
        """Plain-data form for JSON artifacts."""
        return [
            {"time": when, "values": dict(sorted(values.items()))}
            for when, values in self.samples
        ]

    def __len__(self) -> int:
        return len(self.samples)


def series_key(name: str, labels) -> str:
    """``name{k=v,...}`` — the flight recorder's stable series identity.
    ``labels`` is the instrument's sorted label tuple."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL",
    "FlightRecorder",
    "series_key",
]
