"""repro.obs — realm-wide metrics, tracing, audit, and flight recording.

The observability layer for the reproduction, four planes deep:

* a dependency-free metrics registry (:class:`MetricsRegistry` —
  counters, gauges, histograms keyed by name + label tuples);
* a span tracer (:class:`Tracer`) whose :class:`TraceContext` propagates
  across simulated wire hops as out-of-band datagram metadata, so one
  Figure 9 login yields a single cross-host trace tree with net-transit,
  queue-wait, and service breakdown;
* an append-only security-event log (:class:`AuditLog` — auth
  success/failure, preauth failure, replay detected, ACL denial,
  tampered propagation, overload shed);
* a flight recorder (:class:`FlightRecorder`) sampling registry gauges
  into a bounded ring on the event-driven clock.

Exporters render Prometheus-style text, ``BENCH_*.json`` snapshot
artifacts, indented span trees, Chrome trace-event JSON
(Perfetto-loadable), and per-exchange-type percentile digests;
``python -m repro.obs.report`` merges all planes into one realm report.

Every :class:`repro.netsim.network.Network` owns one registry, tracer,
and audit log (``net.metrics`` / ``net.tracer`` / ``net.audit``); the
instrumented layers — netsim, the KDC, the replay and credential
caches, kprop/kpropd, the KDBM, the NFS server — all record into them.
See ``docs/OBSERVABILITY.md`` for the metric, span, and audit schema.

Smoke test: ``python -m repro.obs.selfcheck``.
"""

from repro.obs.audit import (
    AUDIT_KINDS,
    AuditError,
    AuditEvent,
    AuditLog,
)
from repro.obs.export import (
    chrome_trace_events,
    format_digests,
    format_span_tree,
    render_chrome_trace,
    render_prometheus,
    span_digests,
    write_chrome_trace,
    write_json_snapshot,
)
from repro.obs.flight import FlightRecorder, series_key
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    labels_key,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    TracingError,
)

#: Simulated-seconds latency buckets for client exchanges and KDC work
#: (one network hop is milliseconds; a propagation round can take longer).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)

#: Ticket-lifetime buckets in seconds: 5 min up to the paper's 8-hour
#: maximum ("currently 8 hours") and a generous tail.
LIFETIME_BUCKETS = (
    300.0, 1800.0, 3600.0, 7200.0, 14400.0, 21600.0, 28800.0, 86400.0,
)

__all__ = [
    "AUDIT_KINDS",
    "AuditError",
    "AuditEvent",
    "AuditLog",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LIFETIME_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "TracingError",
    "chrome_trace_events",
    "format_digests",
    "format_span_tree",
    "labels_key",
    "render_chrome_trace",
    "render_prometheus",
    "series_key",
    "span_digests",
    "write_chrome_trace",
    "write_json_snapshot",
]
