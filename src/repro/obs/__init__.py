"""repro.obs — realm-wide metrics and structured tracing.

The observability layer for the reproduction: a dependency-free metrics
registry (:class:`MetricsRegistry` — counters, gauges, histograms keyed
by name + label tuples) and a span tracer (:class:`Tracer`) that threads
one request ID through a full AS→TGS→AP exchange on the simulated
clock.  Exporters render Prometheus-style text, ``BENCH_*.json``
snapshot artifacts, and indented span trees correlated with
:class:`repro.trace.ProtocolTracer` output.

Every :class:`repro.netsim.network.Network` owns one registry and one
tracer (``net.metrics`` / ``net.tracer``); the instrumented layers —
netsim, the KDC, the replay and credential caches, kprop/kpropd, the
NFS server — all record into them.  See ``docs/OBSERVABILITY.md`` for
the metric and span schema.

Smoke test: ``python -m repro.obs.selfcheck``.
"""

from repro.obs.export import (
    format_span_tree,
    render_prometheus,
    write_json_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    labels_key,
)
from repro.obs.tracing import Span, Tracer, TracingError

#: Simulated-seconds latency buckets for client exchanges and KDC work
#: (one network hop is milliseconds; a propagation round can take longer).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)

#: Ticket-lifetime buckets in seconds: 5 min up to the paper's 8-hour
#: maximum ("currently 8 hours") and a generous tail.
LIFETIME_BUCKETS = (
    300.0, 1800.0, 3600.0, 7200.0, 14400.0, 21600.0, 28800.0, 86400.0,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LIFETIME_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "TracingError",
    "format_span_tree",
    "labels_key",
    "render_prometheus",
    "write_json_snapshot",
]
