"""Smoke test for the observability layer.

Run:  python -m repro.obs.selfcheck

Exercises the registry, tracer, and exporters standalone, then drives a
full AS→TGS→AP flow through an instrumented realm and checks that the
expected metric families and a complete span tree come out the other
side.  Exits non-zero (with a message) on any failure — cheap enough
for CI.
"""

from __future__ import annotations

import sys

from repro.obs.export import format_span_tree, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class _CountingClock:
    """A tick-per-read stand-in for SimClock, keeping this check
    independent of the rest of the package."""

    def __init__(self) -> None:
        self._t = 0.0

    def now(self) -> float:
        self._t += 0.001
        return self._t


def check_standalone() -> None:
    registry = MetricsRegistry()
    registry.counter("demo.requests_total", {"kind": "as"}).inc(3)
    registry.gauge("demo.cache_size").set(7)
    hist = registry.histogram("demo.latency_seconds", (0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        hist.observe(v)
    assert registry.total("demo.requests_total") == 3
    assert hist.count == 4 and hist.cumulative_buckets() == [
        (0.01, 1), (0.1, 2), (1.0, 3),
    ]

    text = render_prometheus(registry)
    assert 'demo_requests_total{kind="as"} 3' in text
    assert 'demo_latency_seconds_bucket{le="+Inf"} 4' in text

    tracer = Tracer(_CountingClock())
    with tracer.span("root") as root:
        with tracer.span("child", step=1):
            pass
    assert root.finished and len(tracer.by_request(root.request_id)) == 2
    tree = format_span_tree(tracer)
    assert "root" in tree and "child" in tree


def check_end_to_end() -> None:
    from repro.netsim import Network
    from repro.realm import Realm

    net = Network(latency=0.001)
    realm = Realm(net, "SELFCHECK.REALM")
    realm.add_user("probe", "probe-pw")
    service, key = realm.add_service("svc", "box")
    ws = realm.workstation()

    with net.tracer.span("selfcheck.flow"):
        ws.client.kinit("probe", "probe-pw")
        ws.client.mk_req(service)

    rid = net.tracer.spans[0].request_id
    names = {s.name for s in net.tracer.by_request(rid)}
    for expected in (
        "selfcheck.flow", "client.as_exchange", "kdc.as",
        "client.tgs_exchange", "kdc.tgs", "client.ap_request",
    ):
        assert expected in names, f"missing span {expected}: {names}"

    m = net.metrics
    # One AS and one TGS request to the KDC port; replies travel back to
    # the client's ephemeral port.
    assert m.total("net.datagrams_total", port="750") == 2
    assert m.total("net.datagrams_total") == 4
    assert m.total("kdc.requests_total", kind="as") == 1
    assert m.total("kdc.requests_total", kind="tgs") == 1
    assert m.total("kdc.outcomes_total", code="OK") == 2
    assert m.total("replay.checks_total", result="fresh") >= 1
    hist = m.get("client.exchange_seconds", {"type": "as"})
    assert hist is not None and hist.count == 1


def main(argv=None) -> int:
    checks = [
        ("registry/tracer/exporters", check_standalone),
        ("instrumented AS→TGS→AP flow", check_end_to_end),
    ]
    for label, check in checks:
        try:
            check()
        except Exception as exc:  # the whole point is a loud failure
            print(f"selfcheck FAILED at {label}: {exc}", file=sys.stderr)
            return 1
        print(f"selfcheck ok: {label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
