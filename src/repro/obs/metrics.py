"""A dependency-free metrics registry: counters, gauges, histograms.

The paper's quantitative claims are operational — KDC load at Athena
scale (Section 9), per-transaction authentication cost (the NFS
appendix), hourly slave propagation (Figure 13) — so the reproduction
keeps every one of them as an inspectable time series instead of ad-hoc
attributes scattered across components.

Instruments are keyed by ``(name, labels)`` where labels are a small
``str -> str`` mapping; asking for the same name with the same labels
(in any order) returns the same instrument.  Nothing in this module
reads the wall clock or any other ambient state: snapshots take the
current simulated time as an argument, which keeps them deterministic
under the seeded :class:`repro.netsim.clock.SimClock`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Labels as stored: a sorted tuple of (key, value) string pairs.
LabelsKey = Tuple[Tuple[str, str], ...]

#: Safety valve against unbounded label values (e.g. accidentally using
#: a per-user principal as a label at 5,000-user scale).
MAX_SERIES_PER_NAME = 1024


class MetricsError(Exception):
    """Misuse of the registry: kind clashes, cardinality blow-ups."""


def labels_key(labels: Optional[Mapping[str, object]]) -> LabelsKey:
    """Normalize a labels mapping to its canonical storage key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Common shape of every metric: a name plus a label set.

    Instruments are allocated per label set but *touched* per event —
    every datagram, request, and cache probe — so the hierarchy uses
    ``__slots__`` (``__weakref__`` kept: the key-schedule cache holds
    weak references to registries it mirrors into).
    """

    __slots__ = ("name", "labels", "__weakref__")

    kind = "instrument"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def zero(self) -> None:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing count (datagrams, requests, hits)."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def zero(self) -> None:
        self.value = 0.0


class Gauge(Instrument):
    """A value that goes up and down (cache sizes, pending callbacks)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def zero(self) -> None:
        self.value = 0.0


class Histogram(Instrument):
    """A distribution over fixed, ascending bucket boundaries.

    A boundary ``b`` counts observations with ``value <= b`` (Prometheus
    ``le`` semantics); observations above the last boundary land in the
    implicit ``+Inf`` bucket, which exists only as ``count``.
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelsKey, boundaries: Sequence[float]
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise MetricsError(f"histogram {name} needs at least one boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(
                f"histogram {name} boundaries must be strictly ascending: "
                f"{bounds}"
            )
        self.boundaries = bounds
        #: Non-cumulative per-bucket counts; index i holds observations in
        #: (boundaries[i-1], boundaries[i]].  Cumulative counts are derived
        #: at export time.
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        # Above every boundary: only the implicit +Inf bucket (count).

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """[(le, cumulative_count), ...] excluding the +Inf bucket."""
        out = []
        running = 0
        for bound, n in zip(self.boundaries, self.bucket_counts):
            running += n
            out.append((bound, running))
        return out

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the bucket boundaries.

        Returns the smallest boundary whose cumulative count covers the
        rank — i.e. an upper bound on the true quantile, as precise as
        the bucket layout.  An empty histogram estimates 0.0; a rank
        that falls in the implicit ``+Inf`` bucket returns ``inf`` (the
        layout cannot bound it).
        """
        if not 0.0 < q <= 1.0:
            raise MetricsError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        running = 0
        for bound, n in zip(self.boundaries, self.bucket_counts):
            running += n
            if running >= rank:
                return bound
        return math.inf

    def zero(self) -> None:
        self.bucket_counts = [0] * len(self.boundaries)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """All instruments of one simulated world, by name + label tuple."""

    def __init__(self, max_series_per_name: int = MAX_SERIES_PER_NAME) -> None:
        self._instruments: Dict[Tuple[str, LabelsKey], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._histogram_bounds: Dict[str, Tuple[float, ...]] = {}
        self.max_series_per_name = max_series_per_name
        self._series_per_name: Dict[str, int] = {}

    # -- instrument factories ------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float],
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        bounds = tuple(float(b) for b in boundaries)
        known = self._histogram_bounds.get(name)
        if known is not None and known != bounds:
            raise MetricsError(
                f"histogram {name} re-registered with different boundaries "
                f"({known} vs {bounds})"
            )
        instrument = self._get_or_create(
            Histogram, name, labels, boundaries=bounds
        )
        self._histogram_bounds[name] = bounds
        return instrument

    def _get_or_create(self, cls, name, labels, **kwargs):
        key = (name, labels_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricsError(
                    f"{name} already registered as a {existing.kind}, "
                    f"not a {cls.kind}"
                )
            return existing
        registered_kind = self._kinds.get(name)
        if registered_kind is not None and registered_kind != cls.kind:
            raise MetricsError(
                f"{name} already registered as a {registered_kind}, "
                f"not a {cls.kind}"
            )
        n = self._series_per_name.get(name, 0)
        if n >= self.max_series_per_name:
            raise MetricsError(
                f"{name} exceeds {self.max_series_per_name} label sets — "
                "a label value is probably unbounded (per-user? per-ticket?)"
            )
        instrument = cls(name, key[1], **kwargs)
        self._instruments[key] = instrument
        self._kinds[name] = cls.kind
        self._series_per_name[name] = n + 1
        return instrument

    # -- queries ----------------------------------------------------------------

    def instruments(self, name: Optional[str] = None) -> List[Instrument]:
        """All instruments (of one name, if given), deterministically sorted."""
        out = [
            inst
            for (n, _), inst in self._instruments.items()
            if name is None or n == name
        ]
        out.sort(key=lambda i: (i.name, i.labels))
        return out

    def gauges(self) -> List[Gauge]:
        """Every gauge, deterministically sorted — what the flight
        recorder samples each tick."""
        out = [
            inst for inst in self._instruments.values()
            if isinstance(inst, Gauge)
        ]
        out.sort(key=lambda i: (i.name, i.labels))
        return out

    def get(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Optional[Instrument]:
        return self._instruments.get((name, labels_key(labels)))

    def total(self, name: str, **label_filter: object) -> float:
        """Sum the values of every counter/gauge under ``name`` whose
        labels are a superset of ``label_filter``."""
        wanted = {(str(k), str(v)) for k, v in label_filter.items()}
        total = 0.0
        for inst in self.instruments(name):
            if isinstance(inst, Histogram):
                raise MetricsError(f"total() is for counters/gauges, {name} is a histogram")
            if wanted <= set(inst.labels):
                total += inst.value
        return total

    # -- lifecycle ---------------------------------------------------------------

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero instruments (all, or those whose name has ``prefix``).

        Instruments stay registered, so a snapshot taken after a reset
        still reports the full schema — with zeros.
        """
        for (name, _), inst in self._instruments.items():
            if prefix is None or name.startswith(prefix):
                inst.zero()

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> dict:
        """A plain-dict view of every instrument, deterministically ordered.

        ``now`` is the *simulated* clock reading to stamp the snapshot
        with; this function never consults the wall clock.
        """
        counters, gauges, histograms = [], [], []
        for inst in self.instruments():
            entry = {"name": inst.name, "labels": inst.labels_dict}
            if isinstance(inst, Counter):
                entry["value"] = inst.value
                counters.append(entry)
            elif isinstance(inst, Gauge):
                entry["value"] = inst.value
                gauges.append(entry)
            elif isinstance(inst, Histogram):
                entry["buckets"] = [
                    [le, n] for le, n in inst.cumulative_buckets()
                ]
                entry["sum"] = inst.sum
                entry["count"] = inst.count
                histograms.append(entry)
        return {
            "version": 1,
            "clock": now,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
