"""One merged realm report: latency digests, traces, audit log, flight ring.

Run:  python -m repro.obs.report

The four observability planes each have their own exporter; operators
want one page.  :func:`render_report` merges them — per-span-name
percentile digests, the recorded trace trees, the security audit log,
and the flight recorder's gauge ring — into a single deterministic text
report.  The module's ``main`` drives a small demo realm through a
login, a service use, a failed authentication, and a caught replay, then
prints the report it produced.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.obs.export import format_digests, format_span_tree, span_digests


def render_report(
    metrics=None,
    tracer=None,
    audit=None,
    flight=None,
    max_traces: int = 10,
) -> str:
    """Merge whichever planes are supplied into one text report.

    Deterministic for a given run: section order is fixed, traces render
    in trace-ID order, flight series sort by key.
    """
    sections: List[str] = []

    if tracer is not None:
        digests = span_digests(tracer)
        if digests:
            sections.append("== span latency digests ==")
            sections.append(format_digests(digests))
        rids = tracer.request_ids()
        shown = rids[:max_traces]
        if shown:
            header = f"== traces ({len(shown)} of {len(rids)}) =="
            sections.append(header)
            for rid in shown:
                sections.append(format_span_tree(tracer, request_id=rid))

    if audit is not None and len(audit):
        sections.append(f"== audit log ({len(audit)} events) ==")
        sections.append(audit.format())

    if flight is not None and len(flight):
        sections.append(
            f"== flight recorder ({len(flight)} samples, "
            f"interval {flight.interval:g}s) =="
        )
        for key, points in sorted(flight.series().items()):
            first, last = points[0], points[-1]
            peak = max(value for _, value in points)
            sections.append(
                f"    {key}: last={last[1]:g} peak={peak:g} "
                f"({len(points)} points since t={first[0]:.3f})"
            )

    if metrics is not None:
        counters = [
            inst
            for inst in metrics.instruments()
            if type(inst).__name__ == "Counter" and inst.value
        ]
        sections.append(f"== metrics ({len(counters)} live counter series) ==")

    return "\n".join(sections) + "\n"


def _demo() -> str:
    """Drive a small realm through the interesting paths and report."""
    from repro.core.errors import KerberosError
    from repro.netsim import Network
    from repro.obs.flight import FlightRecorder
    from repro.realm import Realm
    from repro.threat.replayer import Replayer

    net = Network(latency=0.001)
    realm = Realm(net, "REPORT.REALM")
    realm.add_user("jis", "jis-pw")
    service, _key = realm.add_service("rlogin", "priam")

    flight = FlightRecorder(net.metrics, net.runtime, interval=0.002).start()
    replayer = Replayer(net, match=lambda d: d.dst_port == 750)

    ws = realm.workstation()
    with net.tracer.span("user.session", user="jis"):
        ws.client.kinit("jis", "jis-pw")
        ws.client.mk_req(service)

    # A failed authentication (unknown principal) and a caught replay.
    intruder = realm.workstation()
    try:
        intruder.client.kinit("mallory", "guess")
    except KerberosError:
        pass
    replayer.replay(1)  # the captured TGS-REQ, byte-identical

    flight.stop()
    return render_report(
        metrics=net.metrics,
        tracer=net.tracer,
        audit=net.audit,
        flight=flight,
    )


def main(argv: Optional[List[str]] = None) -> int:
    sys.stdout.write(_demo())
    return 0


if __name__ == "__main__":
    sys.exit(main())
