"""The security audit plane: structured, append-only event records.

The paper's operational story (Section 5.2: "All requests to the
administration server, whether successful or not, are logged") and the
auditable-authentication line of work (e.g. Time-Assisted Authentication,
arXiv:1702.04055) both treat security *events* — not just counters — as
a first-class observability plane: who failed to authenticate, where a
replay was caught, which propagation transfer arrived tampered.

:class:`AuditLog` is that plane for the whole realm: one append-only
list of :class:`AuditEvent` records, stamped on the simulated clock and
tagged with the propagated trace ID so an event can be joined back to
the exact exchange that raised it.  The event vocabulary is closed
(:data:`AUDIT_KINDS`) to keep the record stream — and the
``audit.events_total{kind}`` series — analyzable.

All emission goes through :meth:`AuditLog.emit`; constructing an
:class:`AuditEvent` anywhere else under ``src/repro`` is rejected by an
AST lint (``tests/obs/test_lint_audit.py``), the same way the
no-wallclock lint protects determinism.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

#: The closed event vocabulary.  Every kind maps to a victim-side
#: detection point:
#:
#: ``auth_success`` / ``auth_failure`` — KDC exchanges and Kerberized
#:   application servers accepting or rejecting a credential;
#: ``preauth_failure``  — a preauthentication proof that did not verify
#:   (a failed password-guessing probe, Section 9 discussion);
#: ``replay_detected``  — the Section 4.3 replay cache caught a reused
#:   authenticator;
#: ``acl_denial``       — the KDBM refused an administrative operation;
#: ``tampered_propagation`` — kpropd rejected a transfer whose checksum
#:   did not verify;
#: ``overload_shed``    — admission control refused a request (queue
#:   full);
#: ``master_promoted``  — the realm supervisor (or an administrator)
#:   promoted a slave to master after sustained master death;
#: ``slave_rejoined``   — a demoted former master came back up and was
#:   readmitted to the propagation set as a slave;
#: ``shard_rebalanced`` — a hash range of the principal space moved to
#:   a different shard (ring epoch flipped) — a security event because
#:   the set of hosts authorized to answer for those principals changed.
AUDIT_KINDS = (
    "auth_success",
    "auth_failure",
    "preauth_failure",
    "replay_detected",
    "acl_denial",
    "tampered_propagation",
    "overload_shed",
    "master_promoted",
    "slave_rejoined",
    "shard_rebalanced",
)

#: Recorded-event ceiling; beyond it the log drops (and counts) rather
#: than growing without bound under a flood.
MAX_RECORDED_EVENTS = 100_000


class AuditError(Exception):
    """Audit misuse: unknown event kind."""


@dataclass(frozen=True)
class AuditEvent:
    """One security event.  ``trace_id`` is the propagated trace ID of
    the exchange that raised it ("" when the traffic carried no context
    — which is exactly what forged or replayed packets look like)."""

    seq: int
    time: float
    kind: str
    host: str
    principal: str
    trace_id: str
    detail: str

    def format(self) -> str:
        rid = f"  rid={self.trace_id}" if self.trace_id else ""
        who = f" principal={self.principal}" if self.principal else ""
        return (
            f"{self.time:>10.3f}  {self.kind:<20} host={self.host}"
            f"{who}{rid}"
            + (f"  {self.detail}" if self.detail else "")
        )


class AuditLog:
    """The realm-wide append-only security-event log.

    One per :class:`~repro.netsim.network.Network` (``net.audit``);
    every detection point — KDC, replay caches, kpropd, the KDBM,
    Kerberized servers — emits into it.  Events are stamped on the
    network's simulated clock, so two same-seed runs produce identical
    logs.
    """

    def __init__(
        self, clock, metrics=None, max_events: int = MAX_RECORDED_EVENTS
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.max_events = max_events
        self._events: List[AuditEvent] = []
        self._seq = itertools.count(1)

    def emit(
        self,
        kind: str,
        host: str = "",
        principal: str = "",
        trace=None,
        detail: str = "",
    ) -> AuditEvent:
        """Record one event.  ``trace`` may be a
        :class:`~repro.obs.tracing.TraceContext`, a trace-ID string, or
        None."""
        if kind not in AUDIT_KINDS:
            raise AuditError(
                f"unknown audit kind {kind!r} (known: {', '.join(AUDIT_KINDS)})"
            )
        trace_id = getattr(trace, "trace_id", trace) or ""
        event = AuditEvent(
            seq=next(self._seq),
            time=self.clock.now(),
            kind=kind,
            host=host,
            principal=principal,
            trace_id=str(trace_id),
            detail=detail,
        )
        if len(self._events) < self.max_events:
            self._events.append(event)
            if self.metrics is not None:
                self.metrics.counter(
                    "audit.events_total", {"kind": kind}
                ).inc()
        elif self.metrics is not None:
            self.metrics.counter("audit.events_dropped_total").inc()
        return event

    # -- queries ------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[AuditEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def for_trace(self, trace_id: str) -> List[AuditEvent]:
        """Events raised by one traced exchange."""
        return [e for e in self._events if e.trace_id == trace_id]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.events(kind))

    def format(self) -> str:
        return "\n".join(e.format() for e in self._events)

    def to_dicts(self) -> List[dict]:
        """Plain-data form for JSON artifacts (stable field order)."""
        return [
            {
                "seq": e.seq,
                "time": e.time,
                "kind": e.kind,
                "host": e.host,
                "principal": e.principal,
                "trace_id": e.trace_id,
                "detail": e.detail,
            }
            for e in self._events
        ]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


__all__ = [
    "AUDIT_KINDS",
    "AuditError",
    "AuditEvent",
    "AuditLog",
    "MAX_RECORDED_EVENTS",
]
