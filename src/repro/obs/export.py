"""Exporters: Prometheus-style text, JSON snapshots, span trees.

Everything here renders from plain data (a registry snapshot dict, a
list of spans), so the output is deterministic whenever the inputs are —
which they are, under the seeded simulated clock.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


# -- Prometheus text format ---------------------------------------------------

def _prom_name(name: str) -> str:
    """Dotted registry names become underscore Prometheus names."""
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The classic exposition format: ``# TYPE`` headers, one sample per
    line, histograms expanded to ``_bucket``/``_sum``/``_count``."""
    snap = registry.snapshot()
    lines: List[str] = []
    typed = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {_prom_name(name)} {kind}")
            typed.add(name)

    for entry in snap["counters"]:
        header(entry["name"], "counter")
        lines.append(
            f"{_prom_name(entry['name'])}{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["gauges"]:
        header(entry["name"], "gauge")
        lines.append(
            f"{_prom_name(entry['name'])}{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["histograms"]:
        name = entry["name"]
        header(name, "histogram")
        base = _prom_name(name)
        for le, count in entry["buckets"]:
            lines.append(
                f"{base}_bucket"
                f"{_prom_labels(entry['labels'], {'le': _format_value(le)})} "
                f"{count}"
            )
        lines.append(
            f"{base}_bucket{_prom_labels(entry['labels'], {'le': '+Inf'})} "
            f"{entry['count']}"
        )
        lines.append(
            f"{base}_sum{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['sum'])}"
        )
        lines.append(
            f"{base}_count{_prom_labels(entry['labels'])} {entry['count']}"
        )
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """Integers render without a trailing .0 so counters read naturally."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


# -- JSON snapshots (the BENCH_*.json artifact format) -------------------------

def write_json_snapshot(
    registry: MetricsRegistry,
    path,
    now: float,
    extra: Optional[dict] = None,
) -> dict:
    """Write the registry snapshot as a ``BENCH_*.json``-compatible
    artifact: sorted keys, stamped with the *simulated* clock only.

    Returns the dict that was written.  ``extra`` lets a benchmark attach
    its own summary numbers alongside the metric series.
    """
    snap = registry.snapshot(now=now)
    if extra:
        snap["bench"] = extra
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snap


# -- span formatting -----------------------------------------------------------

def format_span_tree(
    tracer: Tracer, request_id: Optional[str] = None
) -> str:
    """An indented, one-line-per-span rendering of recorded traces.

    Each line carries the request ID, so output can be correlated with
    :class:`repro.trace.ProtocolTracer` lines (which tag datagrams with
    the request ID active when they crossed the wire).
    """
    spans = (
        tracer.by_request(request_id)
        if request_id is not None
        else list(tracer.spans)
    )
    by_parent: dict = {}
    ids = {s.span_id for s in spans}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            by_parent.setdefault(span.parent_id, []).append(span)

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items())
        )
        end = f"{span.end:.3f}" if span.finished else "open"
        lines.append(
            f"{span.request_id}  {indent}{span.name} "
            f"[{span.start:.3f} -> {end}, {span.duration * 1000:.3f}ms]"
            + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
