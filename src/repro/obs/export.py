"""Exporters: Prometheus-style text, JSON snapshots, span trees.

Everything here renders from plain data (a registry snapshot dict, a
list of spans), so the output is deterministic whenever the inputs are —
which they are, under the seeded simulated clock.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


# -- Prometheus text format ---------------------------------------------------

def _prom_name(name: str) -> str:
    """Dotted registry names become underscore Prometheus names."""
    return name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: object) -> str:
    """Prometheus exposition-format escaping: backslash, double quote,
    and newline must be escaped inside label values, in that order
    (escaping the escape character first keeps the result unambiguous)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The classic exposition format: ``# TYPE`` headers, one sample per
    line, histograms expanded to ``_bucket``/``_sum``/``_count``.

    Output is deterministic: the snapshot sorts series by (name,
    labels), each histogram series renders its buckets in ascending
    ``le`` order followed by ``+Inf``, ``_sum``, ``_count`` — the spec
    order — and label values are escaped per the exposition format."""
    snap = registry.snapshot()
    lines: List[str] = []
    typed = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {_prom_name(name)} {kind}")
            typed.add(name)

    for entry in snap["counters"]:
        header(entry["name"], "counter")
        lines.append(
            f"{_prom_name(entry['name'])}{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["gauges"]:
        header(entry["name"], "gauge")
        lines.append(
            f"{_prom_name(entry['name'])}{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["histograms"]:
        name = entry["name"]
        header(name, "histogram")
        base = _prom_name(name)
        for le, count in entry["buckets"]:
            lines.append(
                f"{base}_bucket"
                f"{_prom_labels(entry['labels'], {'le': _format_value(le)})} "
                f"{count}"
            )
        lines.append(
            f"{base}_bucket{_prom_labels(entry['labels'], {'le': '+Inf'})} "
            f"{entry['count']}"
        )
        lines.append(
            f"{base}_sum{_prom_labels(entry['labels'])} "
            f"{_format_value(entry['sum'])}"
        )
        lines.append(
            f"{base}_count{_prom_labels(entry['labels'])} {entry['count']}"
        )
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """Integers render without a trailing .0 so counters read naturally."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


# -- JSON snapshots (the BENCH_*.json artifact format) -------------------------

def write_json_snapshot(
    registry: MetricsRegistry,
    path,
    now: float,
    extra: Optional[dict] = None,
) -> dict:
    """Write the registry snapshot as a ``BENCH_*.json``-compatible
    artifact: sorted keys, stamped with the *simulated* clock only.

    Returns the dict that was written.  ``extra`` lets a benchmark attach
    its own summary numbers alongside the metric series.
    """
    snap = registry.snapshot(now=now)
    if extra:
        snap["bench"] = extra
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snap


# -- span formatting -----------------------------------------------------------

def format_span_tree(
    tracer: Tracer, request_id: Optional[str] = None
) -> str:
    """An indented, one-line-per-span rendering of recorded traces.

    Each line carries the request ID, so output can be correlated with
    :class:`repro.trace.ProtocolTracer` lines (which tag datagrams with
    the request ID active when they crossed the wire).
    """
    spans = (
        tracer.by_request(request_id)
        if request_id is not None
        else list(tracer.spans)
    )
    by_parent: dict = {}
    ids = {s.span_id for s in spans}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            by_parent.setdefault(span.parent_id, []).append(span)

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items())
        )
        end = f"{span.end:.3f}" if span.finished else "open"
        lines.append(
            f"{span.request_id}  {indent}{span.name} "
            f"[{span.start:.3f} -> {end}, {span.duration * 1000:.3f}ms]"
            + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


# -- Chrome trace-event JSON (Perfetto / chrome://tracing) ---------------------

def chrome_trace_events(tracer: Tracer) -> dict:
    """Recorded spans as the Chrome trace-event format.

    Complete (``ph: "X"``) events with microsecond timestamps; each
    simulated host becomes a process (``pid``), each trace a thread
    (``tid``), so Perfetto lays a cross-host exchange out as lanes per
    machine.  Spans without a ``host`` attribute land on a synthetic
    ``realm`` process.  Everything is derived from recorded spans and
    deterministic counters, so same seed → byte-identical export.
    """
    finished = [s for s in tracer.spans if s.finished]
    hosts: List[str] = []
    for span in finished:
        host = str(span.attrs.get("host", "realm"))
        if host not in hosts:
            hosts.append(host)
    pid_of = {host: i + 1 for i, host in enumerate(sorted(hosts))}
    tid_of = {rid: i + 1 for i, rid in enumerate(tracer.request_ids())}

    events: List[dict] = []
    for host in sorted(hosts):
        events.append({
            "args": {"name": host},
            "name": "process_name",
            "ph": "M",
            "pid": pid_of[host],
            "tid": 0,
        })
    for span in finished:
        host = str(span.attrs.get("host", "realm"))
        args = {
            k: v for k, v in sorted(span.attrs.items()) if k != "host"
        }
        args["trace_id"] = span.request_id
        events.append({
            "args": args,
            "cat": span.name.split(".", 1)[0],
            "dur": round(span.duration * 1e6, 3),
            "name": span.name,
            "ph": "X",
            "pid": pid_of[host],
            "tid": tid_of.get(span.request_id, 0),
            "ts": round(span.start * 1e6, 3),
        })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def render_chrome_trace(tracer: Tracer) -> str:
    """:func:`chrome_trace_events` serialized with stable key order."""
    return json.dumps(
        chrome_trace_events(tracer), indent=2, sort_keys=True
    ) + "\n"


def write_chrome_trace(tracer: Tracer, path) -> str:
    text = render_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


# -- per-exchange-type percentile digests --------------------------------------

def _nearest_rank(sorted_values: List[float], q: float) -> float:
    """The classic nearest-rank percentile (no interpolation): exact,
    deterministic, and meaningful even for tiny samples."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def span_digests(
    tracer: Tracer, quantiles=(0.5, 0.95, 0.99)
) -> dict:
    """Per-span-name duration digests: ``{name: {count, sum, p50, p95,
    p99}}`` over finished spans — the per-exchange-type latency summary
    Section 9's load numbers call for."""
    durations: dict = {}
    for span in tracer.spans:
        if span.finished:
            durations.setdefault(span.name, []).append(span.duration)
    out: dict = {}
    for name in sorted(durations):
        values = sorted(durations[name])
        entry = {"count": len(values), "sum": sum(values)}
        for q in quantiles:
            entry[f"p{int(q * 100)}"] = _nearest_rank(values, q)
        out[name] = entry
    return out


def format_digests(digests: dict) -> str:
    """A fixed-width table of :func:`span_digests` output."""
    if not digests:
        return "(no finished spans)"
    header = (
        f"{'span':<24} {'count':>6} {'p50(ms)':>9} "
        f"{'p95(ms)':>9} {'p99(ms)':>9}"
    )
    lines = [header]
    for name, d in digests.items():
        lines.append(
            f"{name:<24} {d['count']:>6} {d['p50'] * 1000:>9.3f} "
            f"{d['p95'] * 1000:>9.3f} {d['p99'] * 1000:>9.3f}"
        )
    return "\n".join(lines)
