"""Binary wire encoding for Kerberos protocol messages.

The 1988 Kerberos implementation shipped raw C structs over UDP.  This
package provides the equivalent substrate for the reproduction: a small,
deterministic, length-prefixed binary codec with explicit integer widths
and network (big-endian) byte order.  Every protocol message, ticket, and
database dump in the repository is serialized through :class:`Encoder`
and parsed through :class:`Decoder` so that "bytes on the wire" is a real,
inspectable artifact rather than an in-process Python object.

Design points:

* big-endian fixed-width integers (the 4.3BSD convention the paper's
  implementation used on VAX/RT hardware after byte-order fixes);
* byte strings carry a 32-bit length prefix, so messages are
  self-delimiting and concatenable;
* decoding is strict: short reads, trailing garbage, and out-of-range
  values raise :class:`DecodeError` instead of being silently accepted.
"""

from repro.encode.buffer import (
    DecodeError,
    Decoder,
    EncodeError,
    Encoder,
)
from repro.encode.batch import BatchReader, BatchWriter, pack_frames
from repro.encode.structfmt import WireStruct, field

__all__ = [
    "BatchReader",
    "BatchWriter",
    "Decoder",
    "DecodeError",
    "Encoder",
    "EncodeError",
    "WireStruct",
    "field",
    "pack_frames",
]
