"""Declarative wire structs built on :mod:`repro.encode.buffer`.

Protocol messages in this repository are flat, fixed-field-order records
(that is what the 1988 implementation's C structs were).  Rather than hand
writing an ``encode``/``decode`` pair per message, a message class declares
its fields once::

    class Authenticator(WireStruct):
        FIELDS = (
            field("client", "string"),
            field("address", "u32"),
            field("timestamp", "f64"),
        )

and inherits byte-exact ``to_bytes`` / ``from_bytes``, equality, and repr.
Supported field kinds:

==========  ==========================================
kind        Python type
==========  ==========================================
``u8`` ..   int (width-checked)
``i32`` ..  int (signed)
``f64``     float
``bool``    bool
``bytes``   bytes (length-prefixed)
``string``  str (UTF-8, length-prefixed)
a class     nested :class:`WireStruct` subclass
``list:K``  list of scalar kind ``K`` (u32 count prefix)
(list, K)   list of any kind ``K`` — including a
            :class:`WireStruct` subclass (u32 count prefix)
==========  ==========================================
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.encode.buffer import DecodeError, Decoder, EncodeError, Encoder


class field(NamedTuple):
    """One field declaration: a name plus a wire kind."""

    name: str
    kind: Any


_SCALAR_ENCODERS = {
    "u8": Encoder.u8,
    "u16": Encoder.u16,
    "u32": Encoder.u32,
    "u64": Encoder.u64,
    "i32": Encoder.i32,
    "i64": Encoder.i64,
    "f64": Encoder.f64,
    "bool": Encoder.boolean,
    "bytes": Encoder.bytes_,
    "string": Encoder.string,
}

_SCALAR_DECODERS = {
    "u8": Decoder.u8,
    "u16": Decoder.u16,
    "u32": Decoder.u32,
    "u64": Decoder.u64,
    "i32": Decoder.i32,
    "i64": Decoder.i64,
    "f64": Decoder.f64,
    "bool": Decoder.boolean,
    "bytes": Decoder.bytes_,
    "string": Decoder.string,
}


_SCALAR_SIZES = {
    "u8": 1,
    "u16": 2,
    "u32": 4,
    "u64": 8,
    "i32": 4,
    "i64": 8,
    "f64": 8,
    "bool": 1,
}


def _value_size(kind: Any, value: Any) -> int:
    """Encoded byte count of one value — the arithmetic twin of
    :func:`_encode_value`, used by the batch encoder to size one output
    buffer before writing anything."""
    if isinstance(kind, tuple) and len(kind) == 2 and kind[0] == "list":
        return 4 + sum(_value_size(kind[1], item) for item in value)
    if isinstance(kind, str):
        if kind.startswith("list:"):
            inner = kind[len("list:"):]
            return 4 + sum(_value_size(inner, item) for item in value)
        if kind == "bytes":
            return 4 + len(value)
        if kind == "string":
            return 4 + len(value.encode("utf-8"))
        try:
            return _SCALAR_SIZES[kind]
        except KeyError:
            raise EncodeError(f"unknown wire kind {kind!r}") from None
    if isinstance(kind, type) and issubclass(kind, WireStruct):
        return value.wire_size()
    raise EncodeError(f"unsupported wire kind {kind!r}")


def _encode_value(enc: Encoder, kind: Any, value: Any) -> None:
    if isinstance(kind, tuple) and len(kind) == 2 and kind[0] == "list":
        if not isinstance(value, (list, tuple)):
            raise EncodeError(f"expected list, got {type(value).__name__}")
        enc.u32(len(value))
        for item in value:
            _encode_value(enc, kind[1], item)
        return
    if isinstance(kind, str):
        if kind.startswith("list:"):
            inner = kind[len("list:"):]
            if not isinstance(value, (list, tuple)):
                raise EncodeError(f"expected list, got {type(value).__name__}")
            enc.u32(len(value))
            for item in value:
                _encode_value(enc, inner, item)
            return
        try:
            writer = _SCALAR_ENCODERS[kind]
        except KeyError:
            raise EncodeError(f"unknown wire kind {kind!r}") from None
        writer(enc, value)
        return
    if isinstance(kind, type) and issubclass(kind, WireStruct):
        if not isinstance(value, kind):
            raise EncodeError(
                f"expected {kind.__name__}, got {type(value).__name__}"
            )
        value.encode_into(enc)
        return
    raise EncodeError(f"unsupported wire kind {kind!r}")


def _decode_value(dec: Decoder, kind: Any) -> Any:
    if isinstance(kind, tuple) and len(kind) == 2 and kind[0] == "list":
        count = dec.u32()
        if count > dec.remaining():
            raise DecodeError(f"list count {count} exceeds remaining bytes")
        return [_decode_value(dec, kind[1]) for _ in range(count)]
    if isinstance(kind, str):
        if kind.startswith("list:"):
            inner = kind[len("list:"):]
            count = dec.u32()
            if count > dec.remaining():
                raise DecodeError(f"list count {count} exceeds remaining bytes")
            return [_decode_value(dec, inner) for _ in range(count)]
        try:
            reader = _SCALAR_DECODERS[kind]
        except KeyError:
            raise DecodeError(f"unknown wire kind {kind!r}") from None
        return reader(dec)
    if isinstance(kind, type) and issubclass(kind, WireStruct):
        return kind.decode_from(dec)
    raise DecodeError(f"unsupported wire kind {kind!r}")


class WireStruct:
    """Base class for declaratively-defined wire records."""

    FIELDS: tuple = ()

    def __init__(self, **kwargs: Any) -> None:
        declared = {f.name for f in self.FIELDS}
        missing = declared - kwargs.keys()
        if missing:
            raise TypeError(
                f"{type(self).__name__} missing fields: {sorted(missing)}"
            )
        extra = kwargs.keys() - declared
        if extra:
            raise TypeError(
                f"{type(self).__name__} got unknown fields: {sorted(extra)}"
            )
        for name, value in kwargs.items():
            setattr(self, name, value)

    # -- serialization ----------------------------------------------------

    def encode_into(self, enc: Encoder) -> None:
        for f in self.FIELDS:
            _encode_value(enc, f.kind, getattr(self, f.name))

    @classmethod
    def decode_from(cls, dec: Decoder) -> "WireStruct":
        values = {f.name: _decode_value(dec, f.kind) for f in cls.FIELDS}
        return cls(**values)

    def wire_size(self) -> int:
        """Exact ``len(self.to_bytes())`` without encoding anything.

        The batch encoder sums these to allocate one output buffer for a
        whole batch of replies, then writes each in place.
        """
        return sum(
            _value_size(f.kind, getattr(self, f.name)) for f in self.FIELDS
        )

    def to_bytes(self) -> bytes:
        enc = Encoder()
        self.encode_into(enc)
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "WireStruct":
        dec = Decoder(data)
        obj = cls.decode_from(dec)
        dec.expect_eof()
        return obj

    # -- value semantics ----------------------------------------------------

    def _astuple(self) -> tuple:
        return tuple(getattr(self, f.name) for f in self.FIELDS)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        values = []
        for v in self._astuple():
            values.append(tuple(v) if isinstance(v, list) else v)
        return hash((type(self).__name__, tuple(values)))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in self.FIELDS
        )
        return f"{type(self).__name__}({parts})"

    def replace(self, **changes: Any) -> "WireStruct":
        """Return a copy with the given fields replaced."""
        values = {f.name: getattr(self, f.name) for f in self.FIELDS}
        values.update(changes)
        return type(self)(**values)
