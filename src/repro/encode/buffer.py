"""Low-level binary encoder/decoder primitives.

All multi-byte integers are big-endian ("network byte order").  Variable
length payloads are length-prefixed.  The codec is intentionally free of
any Kerberos knowledge; higher layers (``repro.core.messages``,
``repro.database``) define the field order of each message.
"""

from __future__ import annotations

import io
import struct as _struct


class EncodeError(ValueError):
    """Raised when a value cannot be represented on the wire."""


class DecodeError(ValueError):
    """Raised when bytes on the wire do not parse as the expected shape."""


_U8 = _struct.Struct(">B")
_U16 = _struct.Struct(">H")
_U32 = _struct.Struct(">I")
_U64 = _struct.Struct(">Q")
_I32 = _struct.Struct(">i")
_I64 = _struct.Struct(">q")
_F64 = _struct.Struct(">d")

# Sanity bound on length prefixes.  Nothing in this system legitimately
# serializes a single field larger than 64 MiB; a bigger prefix is either
# corruption or an attack, and refusing it early keeps the decoder from
# attempting enormous allocations.
MAX_FIELD_LENGTH = 64 * 1024 * 1024


class Encoder:
    """Accumulates primitive values into a byte string.

    Example::

        enc = Encoder()
        enc.u8(4)
        enc.string("rlogin.priam@ATHENA.MIT.EDU")
        wire = enc.getvalue()
    """

    def __init__(self) -> None:
        self._buf = io.BytesIO()

    # -- integers ---------------------------------------------------------

    def u8(self, value: int) -> "Encoder":
        self._pack(_U8, value, 0, 0xFF)
        return self

    def u16(self, value: int) -> "Encoder":
        self._pack(_U16, value, 0, 0xFFFF)
        return self

    def u32(self, value: int) -> "Encoder":
        self._pack(_U32, value, 0, 0xFFFFFFFF)
        return self

    def u64(self, value: int) -> "Encoder":
        self._pack(_U64, value, 0, 0xFFFFFFFFFFFFFFFF)
        return self

    def i32(self, value: int) -> "Encoder":
        self._pack(_I32, value, -(2**31), 2**31 - 1)
        return self

    def i64(self, value: int) -> "Encoder":
        self._pack(_I64, value, -(2**63), 2**63 - 1)
        return self

    def f64(self, value: float) -> "Encoder":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise EncodeError(f"expected float, got {type(value).__name__}")
        self._buf.write(_F64.pack(float(value)))
        return self

    def boolean(self, value: bool) -> "Encoder":
        if not isinstance(value, bool):
            raise EncodeError(f"expected bool, got {type(value).__name__}")
        return self.u8(1 if value else 0)

    # -- byte strings -----------------------------------------------------

    def raw(self, data: bytes) -> "Encoder":
        """Append bytes with no length prefix (caller manages framing)."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise EncodeError(f"expected bytes, got {type(data).__name__}")
        self._buf.write(bytes(data))
        return self

    def bytes_(self, data: bytes) -> "Encoder":
        """Append a 32-bit length prefix followed by the bytes."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise EncodeError(f"expected bytes, got {type(data).__name__}")
        data = bytes(data)
        if len(data) > MAX_FIELD_LENGTH:
            raise EncodeError(f"field of {len(data)} bytes exceeds maximum")
        self.u32(len(data))
        self._buf.write(data)
        return self

    def string(self, text: str) -> "Encoder":
        """Append a UTF-8 string with a 32-bit length prefix."""
        if not isinstance(text, str):
            raise EncodeError(f"expected str, got {type(text).__name__}")
        return self.bytes_(text.encode("utf-8"))

    # -- composites -------------------------------------------------------

    def list_of(self, items, write_item) -> "Encoder":
        """Append a u32 count, then each item via ``write_item(enc, item)``."""
        items = list(items)
        self.u32(len(items))
        for item in items:
            write_item(self, item)
        return self

    def getvalue(self) -> bytes:
        return self._buf.getvalue()

    def __len__(self) -> int:
        return self._buf.getbuffer().nbytes

    # -- internals --------------------------------------------------------

    def _pack(self, fmt: _struct.Struct, value: int, lo: int, hi: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise EncodeError(f"expected int, got {type(value).__name__}")
        if not lo <= value <= hi:
            raise EncodeError(f"value {value} out of range [{lo}, {hi}]")
        self._buf.write(fmt.pack(value))


class Decoder:
    """Strict reader over a byte string produced by :class:`Encoder`.

    Accepts ``bytes`` or a ``memoryview`` — a view is read in place
    (scalars via ``unpack_from``, byte fields materialized individually),
    so the batch plane can slice many datagrams out of one contiguous
    buffer without a per-message copy.
    """

    def __init__(self, data: bytes) -> None:
        if isinstance(data, memoryview):
            self._data = data
        elif isinstance(data, (bytes, bytearray)):
            self._data = bytes(data)
        else:
            raise DecodeError(f"expected bytes, got {type(data).__name__}")
        self._pos = 0

    # -- integers ---------------------------------------------------------

    def u8(self) -> int:
        return self._unpack(_U8)

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def i32(self) -> int:
        return self._unpack(_I32)

    def i64(self) -> int:
        return self._unpack(_I64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def boolean(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise DecodeError(f"invalid boolean byte {value!r}")
        return bool(value)

    # -- byte strings -----------------------------------------------------

    def raw(self, n: int) -> bytes:
        """Read exactly ``n`` bytes with no length prefix."""
        if n < 0:
            raise DecodeError(f"negative read length {n}")
        return self._take(n)

    def bytes_(self) -> bytes:
        length = self.u32()
        if length > MAX_FIELD_LENGTH:
            raise DecodeError(f"length prefix {length} exceeds maximum")
        return self._take(length)

    def string(self) -> str:
        data = self.bytes_()
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 string: {exc}") from exc

    # -- composites -------------------------------------------------------

    def list_of(self, read_item) -> list:
        """Read a u32 count, then each item via ``read_item(dec)``."""
        count = self.u32()
        # A count can't exceed remaining bytes (every item is >= 1 byte on
        # the wire); reject absurd counts before looping.
        if count > self.remaining():
            raise DecodeError(f"list count {count} exceeds remaining bytes")
        return [read_item(self) for _ in range(count)]

    # -- cursor -----------------------------------------------------------

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def eof(self) -> bool:
        return self._pos >= len(self._data)

    def expect_eof(self) -> None:
        """Raise unless every byte has been consumed (no trailing garbage)."""
        if not self.eof():
            raise DecodeError(f"{self.remaining()} trailing bytes after message")

    def rest(self) -> bytes:
        """Consume and return all remaining bytes."""
        return self._take(self.remaining())

    # -- internals --------------------------------------------------------

    def _take(self, n: int) -> bytes:
        pos = self._pos
        if pos + n > len(self._data):
            raise DecodeError(
                f"short read: wanted {n} bytes, {self.remaining()} remain"
            )
        out = self._data[pos : pos + n]
        self._pos = pos + n
        return out if type(out) is bytes else bytes(out)

    def _unpack(self, fmt: _struct.Struct):
        pos = self._pos
        if pos + fmt.size > len(self._data):
            raise DecodeError(
                f"short read: wanted {fmt.size} bytes, "
                f"{self.remaining()} remain"
            )
        self._pos = pos + fmt.size
        return fmt.unpack_from(self._data, pos)[0]
