"""Batch framing: many datagrams in one contiguous buffer.

The KDC's request plane works on whole WorkQueue batches (PR 4), but the
codec used to hand it one ``bytes`` object per datagram — a copy and an
allocation per message before a single field was parsed.  This module
makes the *buffer* the unit of I/O:

* :class:`BatchReader` slices length-prefixed frames out of one
  contiguous buffer as ``memoryview``\\ s — zero copies per message
  (:class:`~repro.encode.buffer.Decoder` reads views in place);
* :class:`BatchWriter` sizes one output buffer from
  :meth:`~repro.encode.structfmt.WireStruct.wire_size` sums and encodes
  every reply into it in place, returning per-reply views.

Frame format (everything big-endian, like the rest of the codec)::

    | u32 payload length | payload bytes | u32 length | payload | ...

A truncated final frame — a length prefix cut short, or a payload
shorter than its prefix promised — raises :class:`DecodeError` naming
the frame index, so a damaged tail is a typed per-batch error rather
than a garbage message handed to the KDC.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.encode.buffer import (
    _U8,
    _U32,
    DecodeError,
    Encoder,
    MAX_FIELD_LENGTH,
)
from repro.encode.structfmt import WireStruct

#: Bytes of framing per payload (the u32 length prefix).
FRAME_HEADER = 4


def pack_frames(payloads) -> bytes:
    """Concatenate payloads into one :class:`BatchReader`-readable buffer."""
    parts = []
    for payload in payloads:
        parts.append(len(payload).to_bytes(FRAME_HEADER, "big"))
        parts.append(payload)  # join() reads views/bytearrays in place
    return b"".join(parts)


class BatchReader:
    """Zero-copy iterator over length-prefixed frames in one buffer.

    Yields one ``memoryview`` per frame; nothing is copied until a
    decoder materializes individual fields.  Iteration is strict: a
    buffer whose final frame is truncated raises :class:`DecodeError`
    (after yielding every complete frame before it).
    """

    def __init__(self, buffer) -> None:
        if not isinstance(buffer, (bytes, bytearray, memoryview)):
            raise DecodeError(
                f"expected a buffer, got {type(buffer).__name__}"
            )
        self._view = memoryview(buffer)

    def __iter__(self):
        view = self._view
        total = len(view)
        pos = 0
        index = 0
        while pos < total:
            if pos + FRAME_HEADER > total:
                raise DecodeError(
                    f"truncated frame {index}: {total - pos} bytes left "
                    f"of a {FRAME_HEADER}-byte length prefix"
                )
            length = _U32.unpack_from(view, pos)[0]
            if length > MAX_FIELD_LENGTH:
                raise DecodeError(
                    f"frame {index} length {length} exceeds maximum"
                )
            pos += FRAME_HEADER
            if pos + length > total:
                raise DecodeError(
                    f"truncated frame {index}: prefix promises {length} "
                    f"bytes, {total - pos} remain"
                )
            yield view[pos : pos + length]
            pos += length
            index += 1

    def frames(self) -> List[memoryview]:
        """All frames as a list (same strictness as iteration)."""
        return list(self)


class _ViewWriter:
    """A ``write()`` sink over a preallocated buffer region — lets the
    ordinary :class:`Encoder` methods emit straight into the batch
    buffer instead of a per-message BytesIO."""

    __slots__ = ("_view", "pos")

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self.pos = 0

    def write(self, data) -> None:
        end = self.pos + len(data)
        self._view[self.pos : end] = data
        self.pos = end


class _InplaceEncoder(Encoder):
    """An :class:`Encoder` that writes into a caller-provided view."""

    def __init__(self, view: memoryview) -> None:
        self._buf = _ViewWriter(view)


class BatchWriter:
    """Encode many typed replies into one exactly-sized buffer.

    Replies are staged as ``(message type, WireStruct)`` pairs; on
    :meth:`finish` the writer sums ``wire_size()`` over the batch,
    allocates a single buffer, and encodes every reply in place.  Each
    returned view's bytes equal
    :func:`repro.core.messages.encode_message` for that reply.
    """

    def __init__(self) -> None:
        self._items: List[Tuple[int, WireStruct]] = []

    def add(self, mtype: int, msg: WireStruct) -> None:
        self._items.append((int(mtype), msg))

    def __len__(self) -> int:
        return len(self._items)

    def finish(self) -> List[memoryview]:
        """Encode every staged reply; returns one payload view each
        (the u8 message type byte included, framing excluded)."""
        sizes = [1 + msg.wire_size() for _mtype, msg in self._items]
        buffer = bytearray(sum(sizes))
        view = memoryview(buffer)
        out: List[memoryview] = []
        pos = 0
        for (mtype, msg), size in zip(self._items, sizes):
            region = view[pos : pos + size]
            enc = _InplaceEncoder(region)
            enc._buf.write(_U8.pack(mtype))
            msg.encode_into(enc)
            if enc._buf.pos != size:
                raise RuntimeError(
                    f"wire_size() promised {size} bytes, "
                    f"encoder wrote {enc._buf.pos}"
                )
            out.append(region)
            pos += size
        return out
