"""Simulated open-network substrate.

The paper's threat model is an *open network*: "Users have complete
control of their workstations ... someone elsewhere on the network may be
masquerading as the given server", and "Someone watching the network
should not be able to obtain the information necessary to impersonate
another user."

This package is the stand-in for Project Athena's physical network.  It
provides exactly the facilities the protocols (and their attackers) see:

* :class:`SimClock` / :class:`HostClock` — simulated time with per-host
  skew, so ticket lifetimes, the "several minutes" synchronization
  assumption, and replay windows are all exercised deterministically;
* :class:`IPAddress` — the client network addresses carried inside
  tickets and authenticators;
* :class:`Network` / :class:`Host` — datagram delivery between named
  hosts with well-known ports, host-down failures, per-message taps
  (eavesdroppers) and interceptors (active attackers), and traffic
  statistics for the benchmarks.

Nothing here knows about Kerberos; the package is reusable by any
protocol built on datagrams.
"""

from repro.netsim.address import IPAddress
from repro.netsim.clock import HostClock, SimClock
from repro.netsim.faults import (
    Duplicate,
    FaultError,
    FaultPlane,
    FaultRule,
    Jitter,
    Loss,
    Match,
    Partition,
    Reorder,
)
from repro.netsim.network import (
    Datagram,
    DeferredReply,
    Host,
    HostDown,
    Network,
    NetworkError,
    NoSuchService,
    PendingRpc,
    Unreachable,
)
from repro.netsim.ports import (
    KDBM_PORT,
    KERBEROS_PORT,
    KLOGIN_PORT,
    KPROP_PORT,
    KSHELL_PORT,
    MOUNTD_PORT,
    NFS_PORT,
    POP_PORT,
    REGISTER_PORT,
    RSHD_PORT,
    ZEPHYR_PORT,
    HESIOD_PORT,
    SMS_PORT,
    port_name,
)

__all__ = [
    "Datagram",
    "DeferredReply",
    "Duplicate",
    "FaultError",
    "FaultPlane",
    "FaultRule",
    "Host",
    "HostClock",
    "HostDown",
    "IPAddress",
    "Jitter",
    "Loss",
    "Match",
    "Network",
    "NetworkError",
    "NoSuchService",
    "Partition",
    "PendingRpc",
    "Reorder",
    "SimClock",
    "Unreachable",
    "KDBM_PORT",
    "KERBEROS_PORT",
    "KLOGIN_PORT",
    "KPROP_PORT",
    "KSHELL_PORT",
    "MOUNTD_PORT",
    "NFS_PORT",
    "POP_PORT",
    "REGISTER_PORT",
    "RSHD_PORT",
    "ZEPHYR_PORT",
    "HESIOD_PORT",
    "SMS_PORT",
    "port_name",
]
