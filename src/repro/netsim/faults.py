"""Composable fault injection for the simulated network.

Section 9 of the paper keeps a realm available through failures — slave
Kerberos machines answer ticket requests while the master is down — but
proving that requires a network that can actually *fail* in all the ways
UDP fails.  This module is that failure plane: a list of
:class:`FaultRule` objects consulted for every datagram in transit,
driven by the network's seeded RNG and the simulated clock so every
chaos run is reproducible bit-for-bit.

Rule kinds:

* :class:`Loss` — drop matching datagrams with a probability;
* :class:`Duplicate` — deliver a matching request to its handler twice
  (the classic duplicated-UDP-datagram the replay cache must absorb);
* :class:`Reorder` — hold a matching request back and deliver it *after*
  a later one (to the client the held request looks lost; the late
  delivery is what a stale, out-of-order datagram looks like to the
  server);
* :class:`Jitter` — add a random extra per-hop latency;
* :class:`Partition` — deterministically drop everything crossing
  between two host groups (the "master machine is down as far as you
  can tell" scenario of Figures 10/11).

Every injected fault increments ``faults.injected_total{kind=...}`` in
the network's metrics registry; the delivery-side effects additionally
show up as ``net.drops_total``, ``net.duplicates_total`` and
``net.reordered_total`` (see :mod:`repro.netsim.network`).

Host crash/restart lives on :class:`repro.netsim.network.Network`
(:meth:`~repro.netsim.network.Network.crash_host`) because it is a host
state change, not a per-datagram effect — but it records through the
same ``faults.injected_total`` series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.netsim.address import IPAddress


class FaultError(Exception):
    """Misconfigured fault rule (bad rate, empty partition group)."""


def _check_rate(rate: float, what: str) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"{what} rate {rate} outside [0, 1]")
    return rate


@dataclass(frozen=True)
class Match:
    """Which datagrams a rule applies to; ``None`` criteria match any.

    ``port`` is the destination port (targets requests to a service);
    ``src_port`` targets the reply leg (a KDC reply has ``src_port``
    750).  ``src``/``dst`` are host addresses.
    """

    src: Optional[IPAddress] = None
    dst: Optional[IPAddress] = None
    port: Optional[int] = None
    src_port: Optional[int] = None

    @classmethod
    def build(
        cls,
        src=None,
        dst=None,
        port: Optional[int] = None,
        src_port: Optional[int] = None,
    ) -> "Match":
        return cls(
            src=IPAddress(src) if src is not None else None,
            dst=IPAddress(dst) if dst is not None else None,
            port=int(port) if port is not None else None,
            src_port=int(src_port) if src_port is not None else None,
        )

    def matches(self, datagram) -> bool:
        if self.src is not None and datagram.src != self.src:
            return False
        if self.dst is not None and datagram.dst != self.dst:
            return False
        if self.port is not None and datagram.dst_port != self.port:
            return False
        if self.src_port is not None and datagram.src_port != self.src_port:
            return False
        return True


class FaultRule:
    """Base class: a match plus an enabled flag (rules can be paused)."""

    kind = "fault"

    def __init__(self, match: Optional[Match] = None) -> None:
        self.match = match if match is not None else Match()
        self.enabled = True

    def applies(self, datagram) -> bool:
        return self.enabled and self.match.matches(datagram)

    def __repr__(self) -> str:
        state = "" if self.enabled else ", disabled"
        return f"{type(self).__name__}({self.match}{state})"


class Loss(FaultRule):
    """Drop matching datagrams with probability ``rate``."""

    kind = "loss"

    def __init__(self, rate: float, match: Optional[Match] = None) -> None:
        super().__init__(match)
        self.rate = _check_rate(rate, "loss")


class Duplicate(FaultRule):
    """Deliver a matching request to its handler twice with probability
    ``rate``.  Only requests headed to a bound service are duplicated —
    a duplicated RPC reply is invisible (the client took the first copy),
    so duplicating it would only burn random draws."""

    kind = "duplicate"

    def __init__(self, rate: float, match: Optional[Match] = None) -> None:
        super().__init__(match)
        self.rate = _check_rate(rate, "duplicate")


class Reorder(FaultRule):
    """Hold a matching request back (probability ``rate``) and release it
    after the *next* matching request delivers — a one-slot reorder
    buffer.  The sender of the held request sees silence, exactly like a
    loss; the late delivery exercises the server's replay/staleness
    handling.  A held datagram with no successor is never delivered."""

    kind = "reorder"

    def __init__(self, rate: float, match: Optional[Match] = None) -> None:
        super().__init__(match)
        self.rate = _check_rate(rate, "reorder")
        self.held = None  # type: Optional[object]


class Jitter(FaultRule):
    """Add uniform extra latency in ``[low, high]`` simulated seconds to
    every matching hop."""

    kind = "jitter"

    def __init__(
        self, low: float, high: float, match: Optional[Match] = None
    ) -> None:
        super().__init__(match)
        low, high = float(low), float(high)
        if low < 0 or high < low:
            raise FaultError(f"jitter bounds [{low}, {high}] invalid")
        self.low = low
        self.high = high


class Partition(FaultRule):
    """Deterministically drop every datagram crossing between two
    address groups.  With ``group_b=None`` the rule cuts ``group_a``
    off from everyone else (the usual "master unreachable" drill)."""

    kind = "partition"

    def __init__(
        self,
        group_a: Iterable,
        group_b: Optional[Iterable] = None,
    ) -> None:
        super().__init__(Match())
        self.group_a: FrozenSet[IPAddress] = frozenset(
            IPAddress(a) for a in group_a
        )
        if not self.group_a:
            raise FaultError("partition group_a is empty")
        self.group_b: Optional[FrozenSet[IPAddress]] = (
            frozenset(IPAddress(b) for b in group_b)
            if group_b is not None
            else None
        )
        if self.group_b is not None and (self.group_a & self.group_b):
            raise FaultError(
                f"partition groups overlap: {self.group_a & self.group_b}"
            )

    def separates(self, datagram) -> bool:
        src_in_a = datagram.src in self.group_a
        dst_in_a = datagram.dst in self.group_a
        if self.group_b is None:
            return src_in_a != dst_in_a
        src_in_b = datagram.src in self.group_b
        dst_in_b = datagram.dst in self.group_b
        return (src_in_a and dst_in_b) or (src_in_b and dst_in_a)


class Verdict:
    """What the fault plane decided for one datagram in transit."""

    __slots__ = ("drop_reason", "duplicate", "hold", "extra_delay", "release")

    def __init__(self) -> None:
        self.drop_reason: Optional[str] = None
        self.duplicate = False
        self.hold = False
        self.extra_delay = 0.0
        #: Previously held datagrams to deliver (late) after this one.
        self.release: List[object] = []


class FaultPlane:
    """The ordered rule list one :class:`Network` consults per hop.

    Rules are evaluated in insertion order; random draws happen only for
    rules whose match applies, so adding a port-scoped rule never
    perturbs the RNG stream of traffic on other ports.
    """

    def __init__(self, rng, metrics) -> None:
        self._rng = rng
        self.metrics = metrics
        self._rules: List[FaultRule] = []

    # -- rule management ----------------------------------------------------

    def add(self, rule: FaultRule) -> FaultRule:
        self._rules.append(rule)
        return rule

    def insert(self, index: int, rule: FaultRule) -> FaultRule:
        self._rules.insert(index, rule)
        return rule

    def remove(self, rule: FaultRule) -> None:
        self._rules.remove(rule)

    def clear(self) -> None:
        self._rules.clear()

    def rules(self, kind: Optional[str] = None) -> List[FaultRule]:
        return [r for r in self._rules if kind is None or r.kind == kind]

    def __len__(self) -> int:
        return len(self._rules)

    # -- the per-hop decision ------------------------------------------------

    def _record(self, kind: str) -> None:
        self.metrics.counter("faults.injected_total", {"kind": kind}).inc()

    def inspect(self, datagram, to_service: bool = True) -> Verdict:
        """Decide this hop's fate.  ``to_service`` is True for datagrams
        headed to a bound handler (requests); duplicate/reorder rules
        only act on those — a dropped or delayed *reply* is modelled by
        loss/jitter rules matching ``src_port``."""
        verdict = Verdict()
        for rule in self._rules:
            if not rule.applies(datagram):
                continue
            if isinstance(rule, Partition):
                if rule.separates(datagram):
                    verdict.drop_reason = "partition"
                    self._record("partition")
                    return verdict
            elif isinstance(rule, Loss):
                if rule.rate and self._rng.random() < rule.rate:
                    verdict.drop_reason = "loss"
                    self._record("loss")
                    return verdict
            elif isinstance(rule, Duplicate):
                if (
                    to_service
                    and not verdict.duplicate
                    and rule.rate
                    and self._rng.random() < rule.rate
                ):
                    verdict.duplicate = True
                    self._record("duplicate")
            elif isinstance(rule, Reorder):
                if not to_service:
                    continue
                if rule.held is not None:
                    verdict.release.append(rule.held)
                    rule.held = None
                elif (
                    not verdict.hold
                    and rule.rate
                    and self._rng.random() < rule.rate
                ):
                    verdict.hold = True
                    rule.held = datagram
                    self._record("reorder")
            elif isinstance(rule, Jitter):
                if rule.high > 0:
                    verdict.extra_delay += rule.low + self._rng.random() * (
                        rule.high - rule.low
                    )
                    self._record("jitter")
        return verdict


__all__ = [
    "Duplicate",
    "FaultError",
    "FaultPlane",
    "FaultRule",
    "Jitter",
    "Loss",
    "Match",
    "Partition",
    "Reorder",
    "Verdict",
]
