"""Simulated time.

The paper's protocols are time-based: tickets carry "a time stamp, a
lifetime"; servers assume "clocks are synchronized to within several
minutes"; the master database "is dumped every hour".  Reproducing those
behaviours deterministically requires simulated time that tests can
advance at will, and *per-host skew* so the several-minute assumption can
itself be violated on demand.

Time is modelled as seconds (float) since an arbitrary epoch 0.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

#: Ticket lifetimes in the paper are quoted in hours ("currently 8 hours").
HOUR = 3600.0
MINUTE = 60.0


class SimClock:
    """The realm's reference clock.

    Supports scheduled callbacks so periodic activities — the hourly
    database dump of Figure 13 — run automatically as tests advance time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._schedule: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any callbacks that come due."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds} (backwards)")
        target = self._now + seconds
        while self._schedule and self._schedule[0][0] <= target:
            when, _, callback = heapq.heappop(self._schedule)
            # Fire at the scheduled instant, not at the end of the jump,
            # so a callback that reschedules itself keeps its cadence.
            self._now = max(self._now, when)
            callback()
        # A callback may itself have pumped the event runtime (nested
        # RPC), moving time past the original target — never go back.
        self._now = max(self._now, target)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire when the clock reaches ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when}, now is {self._now}")
        heapq.heappush(self._schedule, (when, next(self._counter), callback))

    def call_every(self, interval: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire every ``interval`` seconds."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def fire() -> None:
            callback()
            self.call_at(self._now + interval, fire)

        self.call_at(self._now + interval, fire)

    def pending_callbacks(self) -> int:
        return len(self._schedule)


class HostClock:
    """A host's view of time: the realm clock plus a fixed skew.

    Paper, Section 4.3: "It is assumed that clocks are synchronized to
    within several minutes."  Workstations whose skew exceeds the
    server's acceptance window get their requests treated as replays.
    """

    def __init__(self, reference: SimClock, skew: float = 0.0) -> None:
        self._reference = reference
        self.skew = float(skew)

    def now(self) -> float:
        return self._reference.now() + self.skew

    @property
    def reference(self) -> SimClock:
        return self._reference

    def __repr__(self) -> str:
        return f"HostClock(skew={self.skew:+.1f}s)"
