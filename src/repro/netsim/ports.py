"""Well-known ports for the simulated Athena services.

The numbers follow the historical /etc/services assignments of the era so
that traffic traces read naturally.
"""

#: The authentication server (AS + TGS), "kerberos" in /etc/services.
KERBEROS_PORT = 750
#: The administration (KDBM) server, "kerberos_master".
KDBM_PORT = 751
#: Database propagation (kprop -> kpropd), "krb_prop".
KPROP_PORT = 754
#: Kerberized rlogin ("klogin").
KLOGIN_PORT = 543
#: Kerberized rsh ("kshell").
KSHELL_PORT = 544
#: Post Office Protocol.
POP_PORT = 109
#: Zephyr notification service.
ZEPHYR_PORT = 2102
#: Sun NFS.
NFS_PORT = 2049
#: NFS mount daemon (historically dynamic via portmap; fixed here).
MOUNTD_PORT = 635
#: Hesiod nameserver.
HESIOD_PORT = 251
#: Service Management System.
SMS_PORT = 260
