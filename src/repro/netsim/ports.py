"""Well-known ports for the simulated Athena services.

The numbers follow the historical /etc/services assignments of the era so
that traffic traces read naturally.
"""

#: The authentication server (AS + TGS), "kerberos" in /etc/services.
KERBEROS_PORT = 750
#: The administration (KDBM) server, "kerberos_master".
KDBM_PORT = 751
#: Database propagation (kprop -> kpropd), "krb_prop".
KPROP_PORT = 754
#: Kerberized rlogin ("klogin").
KLOGIN_PORT = 543
#: Kerberized rsh ("kshell").
KSHELL_PORT = 544
#: Post Office Protocol.
POP_PORT = 109
#: Zephyr notification service.
ZEPHYR_PORT = 2102
#: Sun NFS.
NFS_PORT = 2049
#: NFS mount daemon (historically dynamic via portmap; fixed here).
MOUNTD_PORT = 635
#: Hesiod nameserver.
HESIOD_PORT = 251
#: Service Management System.
SMS_PORT = 260
#: Legacy (pre-Kerberos) rsh daemon, "shell" in /etc/services.
RSHD_PORT = 514
#: The sign-up service (paper Section 7.1's register program).
REGISTER_PORT = 261
#: Shard range-move receiver (rebalancing transfers between shard
#: masters ride the delta-kprop wire format on their own port).
SHARD_PORT = 755

#: Service names by port, for human-readable traces.
PORT_NAMES = {
    KERBEROS_PORT: "kerberos",
    KDBM_PORT: "kdbm",
    KPROP_PORT: "kprop",
    KLOGIN_PORT: "klogin",
    KSHELL_PORT: "kshell",
    POP_PORT: "pop",
    ZEPHYR_PORT: "zephyr",
    NFS_PORT: "nfs",
    MOUNTD_PORT: "mountd",
    HESIOD_PORT: "hesiod",
    SMS_PORT: "sms",
    RSHD_PORT: "rshd",
    REGISTER_PORT: "register",
    SHARD_PORT: "krb_shard",
}


def port_name(port: int) -> str:
    """The /etc/services-style name for ``port`` (the number if unknown)."""
    return PORT_NAMES.get(port, str(port))
