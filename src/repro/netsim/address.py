"""Network addresses.

Tickets and authenticators both carry "the Internet address of the
client" (Figures 3 and 4); servers compare it against "the IP address
from which the request was received".  Addresses are therefore a wire
type: a 32-bit value with the familiar dotted-quad text form.
"""

from __future__ import annotations


class IPAddress:
    """An IPv4-style address, hashable and wire-encodable as a u32."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        if isinstance(value, IPAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"address {value} out of 32-bit range")
            self._value = value
        elif isinstance(value, str):
            self._value = self._parse(value)
        else:
            raise TypeError(f"cannot make an address from {type(value).__name__}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"malformed address {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet {octet} out of range in {text!r}")
            value = (value << 8) | octet
        return value

    @property
    def as_int(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self._value == other._value
        if isinstance(other, (int, str)):
            try:
                return self._value == IPAddress(other)._value
            except (TypeError, ValueError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)
