"""Datagram network between simulated hosts.

The model matches what the 1988 implementation assumed of UDP/IP:

* unreliable, unauthenticated datagrams — anybody can read them (taps),
  modify or drop them (interceptors), or forge the source address
  (:meth:`Network.inject`), which is precisely the attacker the paper
  designs against;
* synchronous request/response on top (:meth:`Host.rpc`), standing in
  for the send-and-wait UDP exchanges of the real clients;
* hosts can be down (master failure in Figures 10/11), and each hop can
  cost simulated latency.

Traffic statistics are kept per destination port so the benchmarks can
report message counts per service, e.g. KDC load at Athena scale.  They
live in the network's :class:`repro.obs.MetricsRegistry` (``net.metrics``,
the single source of truth for every instrumented layer); the legacy
``net.stats["port:750"]``-style mapping is a read-only view over it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.address import IPAddress
from repro.netsim.clock import HostClock, SimClock
from repro.netsim.faults import FaultPlane, Loss, Partition, Verdict
from repro.obs import MetricsRegistry, Tracer


class NetworkError(Exception):
    """Base class for simulated network failures."""


class Unreachable(NetworkError):
    """The destination host is down, unknown, or the packet was lost."""


class NoSuchService(NetworkError):
    """The destination host is up but nothing listens on the port."""


@dataclass(frozen=True)
class Datagram:
    """One packet on the wire.  Attackers see exactly this.

    ``__slots__`` is declared manually (not via ``dataclass(slots=True)``,
    which needs 3.10+): datagrams are the highest-volume allocation in
    any simulation, and the fields have no defaults so the manual form
    is safe.
    """

    __slots__ = ("src", "src_port", "dst", "dst_port", "payload")

    src: IPAddress
    src_port: int
    dst: IPAddress
    dst_port: int
    payload: bytes

    def reply_with(self, payload: bytes) -> "Datagram":
        """Build the response datagram travelling the reverse path."""
        return Datagram(
            src=self.dst,
            src_port=self.dst_port,
            dst=self.src,
            dst_port=self.src_port,
            payload=payload,
        )


#: A bound service: takes the request datagram, returns reply bytes or None.
Handler = Callable[[Datagram], Optional[bytes]]
#: A passive tap: sees a copy of every datagram.
Tap = Callable[[Datagram], None]
#: An active interceptor: may rewrite or drop (return None) any datagram.
Interceptor = Callable[[Datagram], Optional[Datagram]]

#: Ephemeral source port used for client sides of RPCs.
EPHEMERAL_PORT = 0


class Host:
    """A machine on the network: an address, a clock, and bound services."""

    def __init__(
        self,
        network: "Network",
        name: str,
        address: IPAddress,
        clock: HostClock,
    ) -> None:
        self.network = network
        self.name = name
        self.address = address
        self.clock = clock
        self.up = True
        self._services: Dict[int, Handler] = {}

    def bind(self, port: int, handler: Handler) -> None:
        """Start a service on ``port``.  One handler per port."""
        if port in self._services:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._services[port] = handler

    def rebind(self, port: int, handler: Handler) -> Optional[Handler]:
        """Replace whatever listens on ``port`` (service restart, e.g. the
        Figure 10/11 failover drills).  Returns the displaced handler, or
        None if the port was free."""
        previous = self._services.get(port)
        self._services[port] = handler
        return previous

    def unbind(self, port: int) -> bool:
        """Stop the service on ``port``; True if a handler was removed."""
        return self._services.pop(port, None) is not None

    def handler_for(self, port: int) -> Optional[Handler]:
        return self._services.get(port)

    def rpc(self, dst, port: int, payload: bytes) -> bytes:
        """Send a request from this host and wait for the reply."""
        return self.network.rpc(self, dst, port, payload)

    def send(self, dst, port: int, payload: bytes) -> None:
        """Fire-and-forget datagram (no reply expected)."""
        self.network.send(self, dst, port, payload)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Host({self.name!r}, {self.address}, {state})"


class NetworkStats:
    """Counter-style view over the registry's ``net.*`` series.

    Preserves the original mapping API (``stats["messages"]``,
    ``stats["bytes"]``, ``stats["port:750"]``) while the registry stays
    the single source of truth.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    def __getitem__(self, key: str) -> int:
        if key == "messages":
            return int(self._metrics.total("net.datagrams_total"))
        if key == "bytes":
            return int(self._metrics.total("net.bytes_total"))
        if key.startswith("port:"):
            return int(
                self._metrics.total("net.datagrams_total", port=key[5:])
            )
        return 0

    get = __getitem__

    def clear(self) -> None:
        self._metrics.reset(prefix="net.")


class Network:
    """The wire connecting every host, plus its attackers and its stats."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate {loss_rate} outside [0, 1)")
        self.clock = clock if clock is not None else SimClock()
        self.latency = float(latency)
        self._rng = random.Random(seed)
        self._hosts_by_name: Dict[str, Host] = {}
        self._hosts_by_addr: Dict[IPAddress, Host] = {}
        self._taps: List[Tap] = []
        self._interceptors: List[Interceptor] = []
        self._next_octet = 1
        #: The realm-wide observability pair: every instrumented layer
        #: (KDC, caches, propagation, NFS ...) records here.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock)
        self.stats = NetworkStats(self.metrics)
        #: The fault-injection plane (loss, duplication, reordering,
        #: jitter, partitions), sharing the network's seeded RNG so
        #: chaos runs are reproducible.
        self.faults = FaultPlane(self._rng, self.metrics)
        # Back-compat: the historical realm-wide loss knob is now one
        # Loss rule kept at the front of the plane.
        self._loss_shim: Optional[Loss] = None
        if loss_rate:
            self._loss_shim = self.faults.add(Loss(loss_rate))

    @property
    def loss_rate(self) -> float:
        """Realm-wide loss probability (compatibility shim over a
        :class:`~repro.netsim.faults.Loss` rule on every link)."""
        return self._loss_shim.rate if self._loss_shim is not None else 0.0

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        rate = float(rate)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss_rate {rate} outside [0, 1)")
        if self._loss_shim is not None:
            self.faults.remove(self._loss_shim)
            self._loss_shim = None
        if rate:
            self._loss_shim = self.faults.insert(0, Loss(rate))

    # -- topology -----------------------------------------------------------

    def add_host(
        self,
        name: str,
        address: Optional[str] = None,
        clock_skew: float = 0.0,
    ) -> Host:
        """Register a machine.  Addresses default to 18.72.0.x (MITnet)."""
        if name in self._hosts_by_name:
            raise ValueError(f"host name {name!r} already in use")
        if address is None:
            # Skip over any addresses claimed explicitly.
            while True:
                addr = IPAddress(
                    f"18.72.{self._next_octet // 256}.{self._next_octet % 256}"
                )
                self._next_octet += 1
                if addr not in self._hosts_by_addr:
                    break
        else:
            addr = IPAddress(address)
            if addr in self._hosts_by_addr:
                raise ValueError(f"address {addr} already in use")
        host = Host(self, name, addr, HostClock(self.clock, clock_skew))
        self._hosts_by_name[name] = host
        self._hosts_by_addr[addr] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise KeyError(f"no host named {name!r}") from None

    def host_by_address(self, address) -> Host:
        addr = IPAddress(address)
        try:
            return self._hosts_by_addr[addr]
        except KeyError:
            raise KeyError(f"no host at {addr}") from None

    def hosts(self) -> List[Host]:
        return list(self._hosts_by_name.values())

    def set_down(self, name: str) -> None:
        """Take a machine off the network (paper: 'the master machine is down')."""
        self.host(name).up = False

    def set_up(self, name: str) -> None:
        self.host(name).up = True

    # -- fault-plane conveniences ---------------------------------------------

    def _resolve_addr(self, host_or_address) -> IPAddress:
        """A host name, Host, or address → its IPAddress."""
        if isinstance(host_or_address, Host):
            return host_or_address.address
        if isinstance(host_or_address, str) and host_or_address in self._hosts_by_name:
            return self._hosts_by_name[host_or_address].address
        return IPAddress(host_or_address)

    def partition(self, group_a, group_b=None) -> Partition:
        """Cut ``group_a`` (host names or addresses) off from ``group_b``
        — or, with ``group_b=None``, from every other host.  Returns the
        installed rule; pass it to :meth:`heal` (or call ``heal()`` with
        no argument to lift every partition)."""
        a = [self._resolve_addr(h) for h in group_a]
        b = (
            [self._resolve_addr(h) for h in group_b]
            if group_b is not None
            else None
        )
        return self.faults.add(Partition(a, b))

    def heal(self, rule: Optional[Partition] = None) -> None:
        """Lift one partition, or all of them."""
        if rule is not None:
            self.faults.remove(rule)
            return
        for installed in self.faults.rules("partition"):
            self.faults.remove(installed)

    def crash_host(self, name: str, downtime: Optional[float] = None) -> None:
        """Crash a machine (it drops off the network, losing in-flight
        requests).  With ``downtime`` given, a restart is scheduled on
        the simulated clock — the Figure 10/11 master-reboot drill."""
        self.set_down(name)
        self.metrics.counter("faults.injected_total", {"kind": "crash"}).inc()
        if downtime is not None:
            if downtime <= 0:
                raise ValueError(f"downtime must be positive, got {downtime}")
            self.clock.call_at(
                self.clock.now() + downtime, lambda: self.restart_host(name)
            )

    def restart_host(self, name: str) -> None:
        """Bring a crashed machine back (its bound services survive —
        daemons restart from init)."""
        self.set_up(name)
        self.metrics.counter("faults.injected_total", {"kind": "restart"}).inc()

    # -- attackers ------------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Attach a passive eavesdropper; it sees every datagram."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Attach an active attacker that may rewrite or drop datagrams."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    # -- delivery -------------------------------------------------------------

    def rpc(self, src: Host, dst, port: int, payload: bytes) -> bytes:
        """Synchronous request/response between two hosts."""
        if not src.up:
            raise Unreachable(f"source host {src.name} is down")
        request = Datagram(
            src=src.address,
            src_port=EPHEMERAL_PORT,
            dst=IPAddress(dst),
            dst_port=port,
            payload=bytes(payload),
        )
        reply_payload = self._deliver(request)
        if reply_payload is None:
            raise Unreachable(
                f"no reply from {request.dst}:{port} (request timed out)"
            )
        reply = request.reply_with(reply_payload)
        final = self._transit(reply)
        if final is None:
            raise Unreachable(f"reply from {request.dst}:{port} was lost")
        return final[0].payload

    def send(self, src: Host, dst, port: int, payload: bytes) -> None:
        """One-way datagram; silently lost on failure, like UDP."""
        if not src.up:
            raise Unreachable(f"source host {src.name} is down")
        datagram = Datagram(
            src=src.address,
            src_port=EPHEMERAL_PORT,
            dst=IPAddress(dst),
            dst_port=port,
            payload=bytes(payload),
        )
        try:
            self._deliver(datagram)
        except NetworkError:
            pass

    def inject(self, datagram: Datagram) -> Optional[bytes]:
        """Deliver a hand-crafted datagram — source address forgery.

        This is the primitive behind the NFS appendix's observation that
        "this information could be forged": an attacker does not need a
        registered host to put packets on the wire.
        """
        return self._deliver(datagram)

    # -- internals --------------------------------------------------------------

    def _transit(
        self, datagram: Datagram, to_service: bool = False
    ) -> Optional[Tuple[Datagram, Verdict]]:
        """One hop across the wire: latency, faults, taps, interceptors.

        Returns the (possibly rewritten) datagram plus the fault plane's
        verdict, or None if the hop dropped or held the packet."""
        if self.latency:
            self.clock.advance(self.latency)
        verdict = self.faults.inspect(datagram, to_service=to_service)
        if verdict.drop_reason is not None:
            self.metrics.counter(
                "net.drops_total", {"reason": verdict.drop_reason}
            ).inc()
            return None
        for tap in self._taps:
            tap(datagram)
        for interceptor in self._interceptors:
            result = interceptor(datagram)
            if result is None:
                self.metrics.counter(
                    "net.drops_total", {"reason": "intercepted"}
                ).inc()
                return None
            datagram = result
        port = {"port": datagram.dst_port}
        self.metrics.counter("net.datagrams_total", port).inc()
        self.metrics.counter("net.bytes_total", port).inc(
            len(datagram.payload)
        )
        if verdict.extra_delay:
            self.clock.advance(verdict.extra_delay)
        if verdict.hold:
            # Parked in a reorder rule; it will arrive late (after a
            # successor) or never — to the sender, silence either way.
            return None
        return datagram, verdict

    def _handle_at_destination(self, datagram: Datagram) -> Optional[bytes]:
        """Hand a datagram that survived transit to its bound service."""
        host = self._hosts_by_addr.get(datagram.dst)
        if host is None or not host.up:
            raise Unreachable(f"host {datagram.dst} is unreachable")
        handler = host.handler_for(datagram.dst_port)
        if handler is None:
            raise NoSuchService(
                f"{host.name} ({datagram.dst}) has no service on port "
                f"{datagram.dst_port}"
            )
        return handler(datagram)

    def _deliver(self, datagram: Datagram) -> Optional[bytes]:
        result = self._transit(datagram, to_service=True)
        if result is None:
            return None
        datagram, verdict = result
        reply = self._handle_at_destination(datagram)
        if verdict.duplicate:
            # The wire delivered a second copy; the handler runs again
            # and its reply goes nowhere (the caller keeps the first).
            self.metrics.counter(
                "net.duplicates_total", {"port": datagram.dst_port}
            ).inc()
            try:
                self._handle_at_destination(datagram)
            except NetworkError:
                pass
        for held in verdict.release:
            # A reordered predecessor finally arrives — long after its
            # sender stopped listening, so its reply is discarded too.
            self.metrics.counter(
                "net.reordered_total", {"port": held.dst_port}
            ).inc()
            try:
                self._handle_at_destination(held)
            except NetworkError:
                pass
        return reply

    def reset_stats(self) -> None:
        """Zero the ``net.*`` traffic series (other metric families keep
        counting; they were never part of the traffic stats)."""
        self.stats.clear()
